"""EXP-T7 — Theorem 7: MINCONTEXT in O(|D|⁴·|Q|²) time, O(|D|²·|Q|²) space.

Two sweeps on a full-XPath workload (position predicates + count —
outside both special fragments, so MINCONTEXT's generic machinery runs):

* |D| sweep at fixed |Q|: fitted log-log slope of MINCONTEXT's time must
  stay at or below ~4 (the theorem's degree) and beat the top-down E↓
  baseline's slope on the same instances; peak live table cells must fit
  the O(|D|²) budget (slope ≤ ~2) while E↓'s grows faster.
* |Q| sweep at fixed |D|: time slope ≤ ~2 in query size.
"""

from harness import ExperimentReport, loglog_slope, measure_counters, time_query

from repro.engine import XPathEngine
from repro.workloads.documents import balanced_tree, deep_chain
from repro.workloads.queries import position_heavy_query

Q_SWEEP = (1, 2, 3, 4, 5)


def bench_document_size_sweep(benchmark):
    benchmark.pedantic(_run_d_sweep, rounds=1, iterations=1)


def _run_d_sweep():
    # The paper's own running-example query e at scale: two descendant
    # steps give Θ(|D|²) previous/current context-node pairs, which E↓
    # materializes as table rows while MINCONTEXT only loops over them.
    query = "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"
    report = ExperimentReport(
        "EXP-T7a", "Theorem 7 — time/space vs |D| (query e on deep chains)"
    )
    sizes, min_times, top_times, min_cells, top_cells = [], [], [], [], []
    rows = []
    for length in (10, 20, 40, 80):
        document = deep_chain(length)
        engine = XPathEngine(document)
        size = len(document.nodes)
        mc_time = time_query(engine, query, "mincontext", repeat=2)
        td_time = time_query(engine, query, "topdown", repeat=2)
        mc_stats = measure_counters(engine, query, "mincontext")
        td_stats = measure_counters(engine, query, "topdown")
        sizes.append(size)
        min_times.append(mc_time)
        top_times.append(td_time)
        min_cells.append(max(1, mc_stats.peak_table_cells))
        top_cells.append(max(1, td_stats.peak_table_cells))
        rows.append(
            [
                size,
                f"{mc_time * 1000:.2f}",
                f"{td_time * 1000:.2f}",
                mc_stats.peak_table_cells,
                td_stats.peak_table_cells,
            ]
        )
    report.table(
        ["|D|", "minctx ms", "topdown ms", "minctx peak cells", "topdown peak cells"],
        rows,
    )
    min_time_slope = loglog_slope(sizes, min_times)
    top_time_slope = loglog_slope(sizes, top_times)
    min_cell_slope = loglog_slope(sizes, min_cells)
    top_cell_slope = loglog_slope(sizes, top_cells)
    report.note("")
    report.note(f"time slope:  MINCONTEXT {min_time_slope:.2f}  vs  E↓ {top_time_slope:.2f}"
                "  (theorem caps: 4 vs 5)")
    report.note(f"space slope: MINCONTEXT {min_cell_slope:.2f}  vs  E↓ {top_cell_slope:.2f}"
                "  (theorem caps: 2 vs 4)")
    report.finish()
    assert min_time_slope < 4.5, "MINCONTEXT time exceeded the Theorem 7 degree"
    assert min_cell_slope < 2.3, "MINCONTEXT space exceeded the Theorem 7 degree"
    assert top_cell_slope > min_cell_slope + 0.3, "E↓ should need asymptotically more space"
    assert top_cells[-1] > 4 * min_cells[-1], "E↓ should need far more live cells"


def bench_query_size_sweep(benchmark):
    benchmark.pedantic(_run_q_sweep, rounds=1, iterations=1)


def _run_q_sweep():
    document = balanced_tree(depth=4, fanout=3)
    engine = XPathEngine(document)
    report = ExperimentReport("EXP-T7b", "Theorem 7 — time vs |Q| (fixed |D|)")
    lengths, times = [], []
    rows = []
    for levels in Q_SWEEP:
        query = position_heavy_query(levels)
        elapsed = time_query(engine, query, "mincontext", repeat=2)
        lengths.append(len(query))
        times.append(elapsed)
        rows.append([levels, len(query), f"{elapsed * 1000:.2f}"])
    report.table(["levels", "|Q| chars", "minctx ms"], rows)
    slope = loglog_slope(lengths, times)
    report.note("")
    report.note(f"time slope vs |Q|: {slope:.2f} (theorem cap: 2)")
    report.finish()
    assert slope < 2.5


def bench_mincontext_representative(benchmark):
    document = balanced_tree(depth=4, fanout=3)
    engine = XPathEngine(document)
    query = engine.compile(position_heavy_query(2))
    benchmark(lambda: engine.evaluate(query, algorithm="mincontext"))


def bench_topdown_representative(benchmark):
    document = balanced_tree(depth=4, fanout=3)
    engine = XPathEngine(document)
    query = engine.compile(position_heavy_query(2))
    benchmark(lambda: engine.evaluate(query, algorithm="topdown"))
