"""EXP-SHARD — sharded batch execution: N workers vs one, exact stats merge.

The service layer's scaling step (ROADMAP: "sharding documents across
workers"): :class:`ShardedExecutor` partitions a batch's documents into
shards and evaluates them in parallel worker processes, each with its own
:class:`QueryService`. The mixed workload pairs the paper's query
families (Core chains, the Wadler line family, position-heavy full
XPath, the running-example query) with documents of deliberately uneven
shape and size (catalogs, balanced trees, a line, a star, a chain), so
``size-balanced`` sharding has real skew to correct.

Three gates, two of them machine-independent:

* **value gate** — sharded results (thread and process backends) are
  identical to the sequential ``evaluate_many`` path, node-sets rebound
  to the parent's documents;
* **stats gate** — the merged batch ``CacheStats`` (hits + misses +
  evictions, plan and result caches) exactly equal the sums of the
  per-shard counters;
* **speedup gate** — ``WORKERS``-process throughput >= 1.5x the
  single-worker throughput. Parallel wall-clock speedup requires
  parallel hardware, so this gate is enforced only when the host grants
  >= 2 usable CPUs; on a 1-CPU host it is reported as SKIPPED (the run
  still prints the measured — there, necessarily <= 1x — ratio, because
  hiding it would misreport the machine).

The script exits nonzero if any enforced gate fails. Run with::

    PYTHONPATH=src python benchmarks/bench_sharded_batch.py
"""

from __future__ import annotations

import os
import statistics
import sys
import time

from harness import ExperimentReport

from repro.service import QueryService, ShardedExecutor
from repro.workloads.documents import (
    balanced_tree,
    book_catalog,
    deep_chain,
    numbered_line,
    wide_tree,
)
from repro.workloads.queries import (
    core_family,
    position_heavy_query,
    running_example_query,
    wadler_family,
)

WORKERS = 4
PASSES = 5
WARMUP_PASSES = 1
SPEEDUP_GATE = 1.5


def mixed_workload():
    """The mixed workload: uneven document shapes x paper query families."""
    # Heavier documents improve the parallel payoff: evaluation cost is
    # polynomial in |D| while the process backend's serialize + rebuild
    # overhead is linear, so size buys signal.
    documents = [
        book_catalog(books=45, chapters_per_book=4),
        book_catalog(books=25),
        balanced_tree(depth=5, fanout=3),
        numbered_line(170),
        wide_tree(220),
        deep_chain(70),
        book_catalog(books=15),
        balanced_tree(depth=4, fanout=4),
    ]
    queries = [
        core_family(4),
        core_family(8),
        wadler_family(2),
        position_heavy_query(2),
        running_example_query(),
        "//book[price > 20]/title",
        "count(//*)",
        "//b/c[. > 20]",
    ]
    return queries, documents


def _median_pass_seconds(run_pass) -> float:
    for _ in range(WARMUP_PASSES):
        run_pass()
    times = []
    for _ in range(PASSES):
        started = time.perf_counter()
        run_pass()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def _stats_merge_exact(batch) -> bool:
    """True iff the merged counters equal the per-shard sums, exactly."""
    for stats_name in ("plan_stats", "result_stats"):
        merged = getattr(batch, stats_name)
        for counter in ("hits", "misses", "evictions"):
            total = sum(shard[stats_name][counter] for shard in batch.shards)
            if merged[counter] != total:
                return False
    return True


def main() -> int:
    queries, documents = mixed_workload()
    evaluations = len(queries) * len(documents)
    usable_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )

    sequential = QueryService().evaluate_many(queries, documents)
    process_executor = ShardedExecutor(
        workers=WORKERS, backend="process", shard_by="size-balanced"
    )
    thread_executor = ShardedExecutor(
        workers=WORKERS, backend="thread", shard_by="size-balanced"
    )
    process_batch = process_executor.execute(queries, documents)
    thread_batch = thread_executor.execute(queries, documents)

    value_gate = (
        process_batch.values == sequential.values
        and thread_batch.values == sequential.values
    )
    stats_gate = _stats_merge_exact(process_batch) and _stats_merge_exact(thread_batch)

    single = _median_pass_seconds(
        lambda: QueryService().evaluate_many(queries, documents)
    )
    multi = _median_pass_seconds(
        lambda: process_executor.execute(queries, documents)
    )
    threaded = _median_pass_seconds(
        lambda: thread_executor.execute(queries, documents)
    )
    speedup = single / multi
    speedup_enforced = usable_cpus >= 2
    speedup_ok = speedup >= SPEEDUP_GATE

    report = ExperimentReport(
        "EXP-SHARD", "sharded batch execution (N workers vs one, stats merge)"
    )
    report.note(
        f"workload: {len(queries)} paper-family queries x {len(documents)} "
        f"mixed-shape documents = {evaluations} evaluations/pass; "
        f"median of {PASSES} passes; host grants {usable_cpus} usable CPU(s)"
    )
    report.table(
        ["configuration", "median pass (ms)", "throughput (eval/s)", "vs 1 worker"],
        [
            ["1 worker (sequential)", single * 1e3, evaluations / single, 1.0],
            [
                f"{WORKERS} workers (process, size-balanced)",
                multi * 1e3,
                evaluations / multi,
                speedup,
            ],
            [
                f"{WORKERS} workers (thread, GIL-bound; context)",
                threaded * 1e3,
                evaluations / threaded,
                single / threaded,
            ],
        ],
    )
    report.note()
    merged = process_batch.plan_stats
    shard_sums = {
        counter: sum(s["plan_stats"][counter] for s in process_batch.shards)
        for counter in ("hits", "misses", "evictions")
    }
    report.note(
        f"shards: {process_batch.workers}; merged plan cache "
        f"hits={merged['hits']} misses={merged['misses']} "
        f"evictions={merged['evictions']} vs per-shard sums {shard_sums}"
    )
    report.note(
        "value gate:   sharded values identical to sequential (both backends) — "
        + ("PASS" if value_gate else "FAIL")
    )
    report.note(
        "stats gate:   merged CacheStats == sum of per-shard counters — "
        + ("PASS" if stats_gate else "FAIL")
    )
    if speedup_enforced:
        report.note(
            f"speedup gate: {WORKERS}-worker over 1-worker throughput = "
            f"{speedup:.2f}x (need >= {SPEEDUP_GATE}x) — "
            + ("PASS" if speedup_ok else "FAIL")
        )
    else:
        report.note(
            f"speedup gate: SKIPPED — 1 usable CPU cannot exhibit parallel "
            f"speedup (measured {speedup:.2f}x, gate needs >= {SPEEDUP_GATE}x "
            "on >= 2 CPUs)"
        )
    report.finish()
    if not value_gate or not stats_gate:
        return 1
    if speedup_enforced and not speedup_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
