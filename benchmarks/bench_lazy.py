"""EXP-LAZY — column-native lazy documents vs eager snapshot decode.

The PR 8 payoff claim: ``decode_snapshot(blob, lazy=True)`` returns a
queryable :class:`~repro.xml.columns.ColumnDocument` without building a
single boxed ``Node`` — the Core XPath pre-plane sweeps then materialize
only O(output) node objects — so the cold-start path (decode + first
query) gets cheaper and lighter than the eager decode that boxes every
node up front, without changing a single result byte.

Four gates, two of them machine-independent:

* **identity gate** — for every workload query × document × dispatch
  mode (``scan`` and ``auto``), a lazily decoded document returns
  byte-identical values to an eagerly decoded one (node sets compared by
  pre-order position, scalars by value). Always enforced: the lazy path
  must only ever remove work.
* **materialization gate** — under ``auto`` dispatch on fresh lazy
  documents, the full workload materializes O(output) nodes (at most the
  summed result sizes plus one context node per query) and the selective
  sub-workload at most ``MATERIALIZE_BOUND`` of |dom| — *counter-
  verified*: the summed per-document ``materialized_count()`` must equal
  the global ``nodes_materialized`` delta exactly, and
  ``lazy_documents`` must move by exactly one per lazy decode. Always
  enforced.
* **cold-start gate** — best-of-N seconds for (lazy decode + first
  query) vs (eager decode + first query), summed over the workload
  documents. Lazy must be ≥ COLD_START_GATE× faster. Host-gated like
  EXP-SHARD: enforced on ≥ 2-CPU hosts, reported otherwise.
* **peak-memory note** — ``tracemalloc`` high-water mark of decode +
  first query, lazy vs eager, on the largest workload document.
  Reported (summarize.py prints it), not gated: absolute bytes shift
  with the interpreter version.

The script exits nonzero if any enforced gate fails. Run with::

    PYTHONPATH=src python benchmarks/bench_lazy.py
"""

from __future__ import annotations

import os
import sys
import time

from bench_axes import WORKLOAD_QUERIES, workload_documents
from harness import ExperimentReport, measure_peak_memory

from repro import stats
from repro.axes.axes import kernel_mode_forced
from repro.engine import XPathEngine
from repro.xml.snapshot import decode_snapshot, encode_snapshot

REPEAT = 5
COLD_START_GATE = 2.0
#: Fraction of |dom| the selective sub-workload may materialize.
MATERIALIZE_BOUND = 0.10

#: The workload queries whose outputs are genuinely small — the ≤ 10%
#: bound runs over these; the full workload instead carries the
#: O(output) bound (some of its queries select hundreds of nodes, which
#: the lazy document must box, output-sensitively).
SELECTIVE_QUERIES = tuple(
    (query, algorithm)
    for query, algorithm in WORKLOAD_QUERIES
    if query
    in (
        "/descendant::price",
        "/descendant::ref",
        "/descendant::author[not(following::ref)]",
        "/descendant::heading/following::ref",
    )
)


def _canon(value):
    """Document-independent canonical form: node sets become pre-order
    position tuples, scalars stay themselves."""
    if isinstance(value, list):
        return tuple(node.pre for node in value)
    return value


def _first_query():
    return WORKLOAD_QUERIES[0]


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------


def run_identity_gate(blobs) -> tuple[bool, int]:
    """lazy == eager on every query cell, under scan and auto dispatch."""
    cells = 0
    ok = True
    for blob in blobs:
        eager = decode_snapshot(blob)
        lazy = decode_snapshot(blob, lazy=True)
        eager_engine = XPathEngine(eager)
        lazy_engine = XPathEngine(lazy)
        for query, algorithm in WORKLOAD_QUERIES:
            for mode in ("scan", "auto"):
                with kernel_mode_forced(mode):
                    expected = _canon(
                        eager_engine.evaluate(
                            eager_engine.compile(query), algorithm=algorithm
                        )
                    )
                    got = _canon(
                        lazy_engine.evaluate(
                            lazy_engine.compile(query), algorithm=algorithm
                        )
                    )
                if expected != got:
                    ok = False
                cells += 1
    return ok, cells


def run_materialization_gate(blobs) -> tuple[bool, dict]:
    """Fresh lazy decodes under auto dispatch, two bounds: the *full*
    workload materializes O(output) nodes (at most the summed output
    sizes plus one context node per query), and the *selective*
    sub-workload stays under ``MATERIALIZE_BOUND`` of |dom| — both
    counter-verified: the summed per-document ``materialized_count()``
    must equal the global ``nodes_materialized`` delta exactly (no node
    boxed twice, none uncounted), and ``lazy_documents`` must move by
    exactly one per decode."""
    before = stats.axis_kernel_stats.snapshot()
    documents = [decode_snapshot(blob, lazy=True) for blob in blobs]
    selective_documents = [decode_snapshot(blob, lazy=True) for blob in blobs]
    after_decode = stats.axis_kernel_stats.snapshot()
    per_document = []
    per_selective = []
    with kernel_mode_forced("auto"):
        for document in documents:
            engine = XPathEngine(document)
            outputs = 0
            for query, algorithm in WORKLOAD_QUERIES:
                value = engine.evaluate(engine.compile(query), algorithm=algorithm)
                if isinstance(value, list):
                    outputs += len(value)
            per_document.append((len(document), document.materialized_count(), outputs))
        for document in selective_documents:
            engine = XPathEngine(document)
            for query, algorithm in SELECTIVE_QUERIES:
                engine.evaluate(engine.compile(query), algorithm=algorithm)
            per_selective.append((len(document), document.materialized_count()))
    after = stats.axis_kernel_stats.snapshot()
    decode_materialized = (
        after_decode["nodes_materialized"] - before["nodes_materialized"]
    )
    global_delta = after["nodes_materialized"] - before["nodes_materialized"]
    lazy_delta = after_decode["lazy_documents"] - before["lazy_documents"]
    local_sum = sum(count for _, count, _ in per_document) + sum(
        count for _, count in per_selective
    )
    detail = {
        "per_document": per_document,
        "per_selective": per_selective,
        "decode_materialized": decode_materialized,
        "global_delta": global_delta,
        "local_sum": local_sum,
        "lazy_documents": lazy_delta,
    }
    ok = (
        decode_materialized == 0  # decoding alone boxes nothing
        and lazy_delta == 2 * len(blobs)
        and global_delta == local_sum  # counters exact
        # O(output): at most the outputs plus one context node per query.
        and all(
            count <= outputs + len(WORKLOAD_QUERIES) + 1
            for _, count, outputs in per_document
        )
        and all(
            count <= MATERIALIZE_BOUND * total for total, count in per_selective
        )
    )
    return ok, detail


def run_cold_start_gate(blobs):
    """Best-of-N seconds to answer the first query from a cold blob:
    lazy decode vs eager decode, same query both sides."""
    first_query, first_algorithm = _first_query()
    eager_total = 0.0
    lazy_total = 0.0
    for blob in blobs:
        best_eager = best_lazy = float("inf")
        for _ in range(REPEAT):
            started = time.perf_counter()
            document = decode_snapshot(blob)
            engine = XPathEngine(document)
            engine.evaluate(engine.compile(first_query), algorithm=first_algorithm)
            best_eager = min(best_eager, time.perf_counter() - started)

            started = time.perf_counter()
            document = decode_snapshot(blob, lazy=True)
            engine = XPathEngine(document)
            engine.evaluate(engine.compile(first_query), algorithm=first_algorithm)
            best_lazy = min(best_lazy, time.perf_counter() - started)
        eager_total += best_eager
        lazy_total += best_lazy
    return eager_total, lazy_total


def run_peak_memory(blob):
    """tracemalloc high-water mark of decode + first query, both paths."""
    first_query, first_algorithm = _first_query()

    def cold(lazy):
        def run():
            document = decode_snapshot(blob, lazy=lazy)
            engine = XPathEngine(document)
            return engine.evaluate(
                engine.compile(first_query), algorithm=first_algorithm
            )
        return run

    _, eager_peak = measure_peak_memory(cold(False))
    _, lazy_peak = measure_peak_memory(cold(True))
    return eager_peak, lazy_peak


def main() -> int:
    usable_cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    documents = workload_documents()
    blobs = [encode_snapshot(document) for document in documents]
    sizes = [len(document) for document in documents]
    del documents  # everything below starts from the blobs, cold

    identity_ok, identity_cells = run_identity_gate(blobs)
    materialize_ok, materialize_detail = run_materialization_gate(blobs)
    eager_seconds, lazy_seconds = run_cold_start_gate(blobs)
    cold_ratio = eager_seconds / lazy_seconds if lazy_seconds else float("inf")
    largest = max(range(len(blobs)), key=lambda i: sizes[i])
    eager_peak, lazy_peak = run_peak_memory(blobs[largest])
    memory_ratio = eager_peak / lazy_peak if lazy_peak else float("inf")
    hosted = usable_cpus >= 2
    cold_ok = cold_ratio >= COLD_START_GATE

    report = ExperimentReport(
        "EXP-LAZY", "column-native lazy documents vs eager snapshot decode"
    )
    report.note(
        f"workload: {len(WORKLOAD_QUERIES)} selective queries x "
        f"{len(blobs)} documents (|dom| = {', '.join(map(str, sizes))}; "
        f"snapshots total {sum(len(blob) for blob in blobs)} bytes); "
        f"best of {REPEAT}; host grants {usable_cpus} usable CPU(s)"
    )
    report.table(
        ["cold-start path", "summed best (ms)", "speedup"],
        [
            ["eager decode (box every node) + first query", eager_seconds * 1e3, 1.0],
            ["lazy decode (columns only) + first query", lazy_seconds * 1e3, cold_ratio],
        ],
    )
    report.table(
        ["workload", "|dom|", "nodes materialized", "fraction", "sum outputs"],
        [
            ["full", total, count, count / total if total else 0.0, outputs]
            for total, count, outputs in materialize_detail["per_document"]
        ]
        + [
            ["selective", total, count, count / total if total else 0.0, ""]
            for total, count in materialize_detail["per_selective"]
        ],
    )
    report.note()
    report.note(
        f"counters: {materialize_detail['lazy_documents']} lazy documents, "
        f"{materialize_detail['decode_materialized']} nodes materialized by "
        f"decode alone; workload materialized "
        f"{materialize_detail['global_delta']} globally vs "
        f"{materialize_detail['local_sum']} summed per-document"
    )
    report.note(
        f"peak memory (decode + first query, |dom| = {sizes[largest]}): "
        f"eager {eager_peak} B, lazy {lazy_peak} B — "
        f"{memory_ratio:.2f}x lighter lazily"
    )
    report.note(
        f"identity gate:        lazy == eager on every query cell "
        f"({identity_cells} cells) — " + ("PASS" if identity_ok else "FAIL")
    )
    report.note(
        "materialization gate: full workload O(output), selective "
        f"<= {MATERIALIZE_BOUND:.0%} of |dom|, counters exact — "
        + ("PASS" if materialize_ok else "FAIL")
    )
    if hosted:
        report.note(
            f"cold-start gate:      lazy over eager = {cold_ratio:.2f}x "
            f"(need >= {COLD_START_GATE}x) — " + ("PASS" if cold_ok else "FAIL")
        )
    else:
        report.note(
            f"cold-start gate:      SKIPPED — 1-CPU host (measured "
            f"{cold_ratio:.2f}x, gate needs >= {COLD_START_GATE}x on >= 2-CPU "
            "hosts)"
        )
    report.finish()
    if not identity_ok or not materialize_ok:
        return 1
    if hosted and not cold_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
