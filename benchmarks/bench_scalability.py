"""EXP-A2 (ablation/scale) — the full engine on large documents.

Production-credibility check rather than a paper experiment: the auto-
dispatched engine (fragment classification + OPTMINCONTEXT/Core XPath +
rewrites) on catalogs up to tens of thousands of nodes, mixed query set.
Confirms nothing degrades super-linearly for the fragments that promise
linear/quadratic behaviour at realistic sizes.
"""

from harness import ExperimentReport, loglog_slope, time_query

from repro.engine import XPathEngine
from repro.workloads.documents import book_catalog

QUERIES = {
    "core": "//book/chapter[heading]",
    "wadler": "//chapter[position() = last()]",
    "value": "//book[price > 50]/title",
    "full": "//book[count(chapter) > 2]/title",
}


def bench_scalability_sweep(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


def _run():
    report = ExperimentReport("EXP-A2", "auto-dispatched engine at scale (book catalogs)")
    sizes = []
    times: dict[str, list[float]] = {name: [] for name in QUERIES}
    rows = []
    for books in (50, 150, 450, 1350):
        document = book_catalog(books=books)
        engine = XPathEngine(document, optimize=True)
        size = len(document.nodes)
        sizes.append(size)
        row = [books, size]
        for name, query in QUERIES.items():
            elapsed = time_query(engine, query, "auto", repeat=2)
            times[name].append(elapsed)
            row.append(f"{elapsed * 1000:.1f}")
        rows.append(row)
    report.table(
        ["books", "|D|"] + [f"{name} ms" for name in QUERIES],
        rows,
    )
    report.note("")
    for name in QUERIES:
        slope = loglog_slope(sizes, times[name])
        report.note(f"{name:>7}: time degree {slope:.2f}")
        assert slope < 2.6, name
    report.finish()


def bench_large_catalog_core_query(benchmark):
    engine = XPathEngine(book_catalog(books=400), optimize=True)
    compiled = engine.compile(QUERIES["core"])
    benchmark(lambda: engine.evaluate(compiled))


def bench_large_catalog_wadler_query(benchmark):
    engine = XPathEngine(book_catalog(books=400), optimize=True)
    compiled = engine.compile(QUERIES["wadler"])
    benchmark(lambda: engine.evaluate(compiled))
