"""EXP-ASYNC — the async front end: value identity, exact stats, streaming latency.

PR 3's scheduler abstraction put an asyncio backend behind the same
prepare → dispatch → merge seam as the sync backends. Three gates:

* **value gate** — the async backend's merged ``BatchResult`` is
  value-identical (same cells, same order) to *every* sync backend
  (serial, thread, process) and to the sequential ``evaluate_many``
  path;
* **stats gate** — every backend's merged ``CacheStats`` are the exact
  sums of its per-shard counters, and the streaming path's incremental
  merge reaches the identical totals;
* **latency gate** — on a deliberately skewed workload (one document
  ~10^3× the node count of its peers, size-balanced sharding putting it
  alone in its shard), the streaming front end's **time-to-first-result
  must be ≤ 0.5× the full-batch barrier time**. This is the point of
  streaming: the small shards' results surface while the big shard is
  still evaluating, instead of everyone waiting behind it.

The latency gate is a *ratio on one machine*, so it is enforced
everywhere — including 1-CPU hosts, where the GIL timeslices the shards:
the skew is sized so the big shard needs hundreds of milliseconds while
every small shard fits in the first scheduler rotation. Run with::

    PYTHONPATH=src python benchmarks/bench_async_batch.py
"""

from __future__ import annotations

import asyncio
import statistics
import sys
import time

from harness import ExperimentReport

from repro.service import AsyncQueryService, QueryService, ShardedExecutor
from repro.workloads.documents import balanced_tree
from repro.workloads.queries import core_family, position_heavy_query
from repro.xml.parser import parse_document

WORKERS = 4
PASSES = 5
WARMUP_PASSES = 1
TTFR_GATE = 0.5  # time-to-first-result ≤ 0.5× the barrier time
SYNC_BACKENDS = ("serial", "thread", "process")


def skewed_workload():
    """One heavy document (~9k nodes) plus six trivial ones: under
    size-balanced LPT sharding the heavy document is a shard of its own,
    so the batch's barrier time ≈ the big shard's time while the other
    shards are effectively instant — maximal streaming headroom."""
    big = balanced_tree(depth=8, fanout=3)
    smalls = [parse_document(f"<a><b>{i}</b><c>{i * 7}</c></a>") for i in range(6)]
    queries = [
        "/descendant::*[position() > count(child::*)]",
        "count(//*)",
        position_heavy_query(2),
        core_family(6),
        "//c[. > 15]",
        "/descendant::*[position() = last()]",
    ]
    return queries, [big] + smalls


def _median(samples: list[float]) -> float:
    return statistics.median(samples)


def _stats_merge_exact(batch) -> bool:
    for stats_name in ("plan_stats", "result_stats"):
        merged = getattr(batch, stats_name)
        for counter in ("hits", "misses", "evictions"):
            total = sum(shard[stats_name][counter] for shard in batch.shards)
            if merged[counter] != total:
                return False
    return True


def _measure_stream(service: AsyncQueryService, queries, documents):
    """One streaming pass: (time to first item, time to exhaustion, stream)."""

    async def run():
        stream = service.stream_many(
            queries, documents, workers=WORKERS, shard_by="size-balanced"
        )
        started = time.perf_counter()
        first = None
        async for _ in stream:
            if first is None:
                first = time.perf_counter() - started
        return first, time.perf_counter() - started, stream

    return asyncio.run(run())


def _measure_barrier(queries, documents) -> float:
    """One barrier pass through the same async scheduler (await
    evaluate_many): nothing surfaces until every shard is merged."""

    async def run():
        service = AsyncQueryService()
        started = time.perf_counter()
        await service.evaluate_many(
            queries, documents, workers=WORKERS, shard_by="size-balanced"
        )
        return time.perf_counter() - started

    return asyncio.run(run())


def main() -> int:
    queries, documents = skewed_workload()
    evaluations = len(queries) * len(documents)

    # --- value + stats gates -----------------------------------------
    sequential = QueryService().evaluate_many(queries, documents)
    async_batch = ShardedExecutor(
        workers=WORKERS, backend="async", shard_by="size-balanced"
    ).execute(queries, documents)
    sync_batches = {
        backend: ShardedExecutor(
            workers=WORKERS, backend=backend, shard_by="size-balanced"
        ).execute(queries, documents)
        for backend in SYNC_BACKENDS
    }
    value_gate = async_batch.values == sequential.values and all(
        batch.values == async_batch.values for batch in sync_batches.values()
    )
    stats_gate = _stats_merge_exact(async_batch) and all(
        _stats_merge_exact(batch) for batch in sync_batches.values()
    )

    # The streamed batch must merge to the same values and identical
    # exactly-summed stats as the barrier async batch.
    service = AsyncQueryService()
    _, _, stream = _measure_stream(service, queries, documents)
    streamed = stream.batch()
    stream_gate = (
        streamed.values == sequential.values
        and _stats_merge_exact(streamed)
        and {
            key: streamed.plan_stats[key]
            for key in ("hits", "misses", "evictions")
        }
        == {key: async_batch.plan_stats[key] for key in ("hits", "misses", "evictions")}
    )

    # --- latency gate -------------------------------------------------
    for _ in range(WARMUP_PASSES):
        _measure_barrier(queries, documents)
        _measure_stream(AsyncQueryService(), queries, documents)
    barrier_times, first_times, drain_times = [], [], []
    for _ in range(PASSES):
        barrier_times.append(_measure_barrier(queries, documents))
        first, drained, _ = _measure_stream(AsyncQueryService(), queries, documents)
        first_times.append(first)
        drain_times.append(drained)
    barrier = _median(barrier_times)
    first = _median(first_times)
    drained = _median(drain_times)
    ratio = first / barrier
    latency_ok = ratio <= TTFR_GATE

    report = ExperimentReport(
        "EXP-ASYNC", "async front end (streaming latency, value/stats identity)"
    )
    report.note(
        f"workload: {len(queries)} queries x {len(documents)} documents "
        f"({evaluations} evaluations/pass), skew {len(documents[0])} vs "
        f"{len(documents[1])} nodes; {WORKERS} workers, size-balanced "
        f"(big document is its own shard); median of {PASSES} passes"
    )
    report.table(
        ["configuration", "median (ms)", "vs barrier"],
        [
            ["async barrier (await evaluate_many)", barrier * 1e3, 1.0],
            ["stream: first result", first * 1e3, ratio],
            ["stream: fully drained", drained * 1e3, drained / barrier],
        ],
    )
    report.note()
    report.note(
        "value gate:   async values identical to sequential + "
        f"{'/'.join(SYNC_BACKENDS)} — " + ("PASS" if value_gate else "FAIL")
    )
    report.note(
        "stats gate:   merged CacheStats == per-shard sums on every backend — "
        + ("PASS" if stats_gate else "FAIL")
    )
    report.note(
        "stream gate:  streamed batch == barrier batch (values + incremental "
        "stats totals) — " + ("PASS" if stream_gate else "FAIL")
    )
    report.note(
        f"latency gate: time-to-first-result = {ratio:.2f}x barrier "
        f"(need <= {TTFR_GATE}x) — " + ("PASS" if latency_ok else "FAIL")
    )
    report.finish()
    return 0 if (value_gate and stats_gate and stream_gate and latency_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
