"""EXP-F4/EXP-F5 — regenerate the Figure 4 and Figure 5 tables.

Regenerates the context-value tables of the running example (query ``e``
of Section 2.4 on the Figure 2 document): the full tables of the
top-down semantics E↓ (Figure 4) and the relevant-context-restricted
tables MINCONTEXT keeps (Figure 5), then times both algorithms on the
query with pytest-benchmark.
"""

from harness import ExperimentReport

from repro.core.context import Context
from repro.core.mincontext import MinContextEvaluator
from repro.core.topdown import TopDownEvaluator
from repro.workloads.documents import running_example_document
from repro.workloads.queries import running_example_query
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance

#: Figure 4's N3 table, for verification row-by-row.
EXPECTED_N3 = {
    ("11", 1, 8): False, ("12", 2, 8): False, ("13", 3, 8): False,
    ("14", 4, 8): True, ("21", 5, 8): True, ("22", 6, 8): True,
    ("23", 7, 8): True, ("24", 8, 8): True, ("12", 1, 3): False,
    ("13", 2, 3): True, ("14", 3, 3): True, ("22", 1, 3): False,
    ("23", 2, 3): True, ("24", 3, 3): True,
}


def _prepare():
    document = running_example_document()
    ast = normalize(parse_xpath(running_example_query()))
    compute_relevance(ast)
    return document, ast


def bench_figure4_tables_regenerate(benchmark):
    document, ast = _prepare()

    def run():
        evaluator = TopDownEvaluator(document)
        return evaluator.trace_tables(ast, Context(document.root, 1, 1))

    tables = benchmark(run)

    report = ExperimentReport("EXP-F4", "Figure 4 context-value tables (E↓)")
    predicate = ast.steps[1].predicates[0]
    rows = []
    regenerated = {}
    for context, value in tables[predicate.uid]:
        key = (context.node.xml_id, context.position, context.size)
        regenerated[key] = value
        rows.append([f"x{key[0]}", key[1], key[2], "true" if value else "false"])
    report.note("table(N3) — predicate of the second location step:")
    report.table(["cn", "cp", "cs", "res"], rows)
    assert regenerated == EXPECTED_N3, "Figure 4 N3 table mismatch"
    report.note("")
    report.note("row-by-row identical to the paper's Figure 4 ✓")
    report.finish()


def bench_figure5_restricted_tables(benchmark):
    document, ast = _prepare()

    def run():
        evaluator = MinContextEvaluator(document)
        result = evaluator.evaluate(ast, Context(document.root, 1, 1))
        return evaluator, result

    evaluator, result = benchmark(run)
    assert sorted(n.xml_id for n in result) == ["13", "14", "21", "22", "23", "24"]

    report = ExperimentReport(
        "EXP-F5", "Figure 5 tables restricted to the relevant context (MINCONTEXT)"
    )
    predicate = ast.steps[1].predicates[0]
    n5 = predicate.right
    rows = [
        [f"x{key[0].xml_id}", "true" if value else "false"]
        for key, value in sorted(evaluator.tables[n5.uid].items(), key=lambda kv: kv[0][0].pre)
    ]
    report.note("table(N5: self::* = 100) — keyed by cn only (8 rows, not 14):")
    report.table(["cn", "res"], rows)
    report.note("")
    report.note("x24 is true (paper's Figure 5 misprints 'false'; Figure 4's own")
    report.note("row ⟨x24,8,8⟩ and strval(x24)='100' both say true).")
    n_tables = len(evaluator.tables)
    total_rows = sum(len(t) for t in evaluator.tables.values())
    report.note(f"tables stored: {n_tables}; total rows: {total_rows} "
                f"(cp/cs-dependent nodes N3,N4,N6,N7 are never tabulated)")
    assert predicate.uid not in evaluator.tables
    report.finish()
