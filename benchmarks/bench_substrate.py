"""EXP-A3 (infrastructure) — substrate throughput.

Not a paper experiment: baseline numbers for the layers below the
algorithms (XML parse, serialize, axis set functions, id index), so
regressions in the substrate are visible separately from algorithmic
changes. The axis functions must behave linearly — Definition 1's O(|D|)
is the foundation of every theorem upstream.
"""

from harness import ExperimentReport, loglog_slope, time_query

from repro.axes.axes import axis_set, inverse_axis_set
from repro.workloads.documents import book_catalog
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

import time


def bench_parse_catalog(benchmark):
    source = serialize(book_catalog(books=100))
    document = benchmark(lambda: parse_document(source))
    assert document.root_element.name == "catalog"


def bench_serialize_catalog(benchmark):
    document = book_catalog(books=100)
    text = benchmark(lambda: serialize(document))
    assert text.startswith("<catalog")


def bench_axis_functions_linear(benchmark):
    benchmark.pedantic(_run_axis_sweep, rounds=1, iterations=1)


def _run_axis_sweep():
    report = ExperimentReport("EXP-A3", "axis set functions are O(|D|) (Definition 1)")
    sizes = []
    per_axis: dict[str, list[float]] = {}
    axes = ("descendant", "following", "preceding", "ancestor", "following-sibling")
    rows = []
    for books in (100, 300, 900):
        document = book_catalog(books=books)
        X = set(document.elements()[: len(document.elements()) // 2])
        sizes.append(len(document.nodes))
        row = [len(document.nodes)]
        for axis in axes:
            started = time.perf_counter()
            for _ in range(3):
                axis_set(document, axis, X)
                inverse_axis_set(document, axis, X)
            elapsed = (time.perf_counter() - started) / 3
            per_axis.setdefault(axis, []).append(elapsed)
            row.append(f"{elapsed * 1000:.2f}")
        rows.append(row)
    report.table(["|D|"] + [f"{a} ms" for a in axes], rows)
    report.note("")
    for axis in axes:
        slope = loglog_slope(sizes, per_axis[axis])
        report.note(f"{axis:>18}: time degree {slope:.2f} (must be ~1)")
        assert slope < 1.6, axis
    report.finish()
