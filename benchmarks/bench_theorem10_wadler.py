"""EXP-T10 — Theorem 10: the Extended Wadler Fragment in
O(|D|²·|Q|²) time and O(|D|·|Q|²) space under OPTMINCONTEXT.

Sweep |D| on the numbered-line workload with a Wadler-family query
(position/last arithmetic + existential value comparisons — Restrictions
1–3 all satisfied). Checks:

* OPTMINCONTEXT's fitted time slope ≤ ~2 and space slope ≤ ~1.3;
* plain MINCONTEXT (no bottom-up pass) needs asymptotically more space
  on the same instances — the value of Section 4's backward propagation.
"""

from harness import ExperimentReport, loglog_slope, measure_counters, time_query

from repro.engine import XPathEngine
from repro.workloads.documents import numbered_line
from repro.workloads.queries import wadler_family

SIZES = (20, 40, 80, 160)


def bench_wadler_sweep(benchmark):
    benchmark.pedantic(_run_sweep, rounds=1, iterations=1)


def _run_sweep():
    query = wadler_family(2)
    report = ExperimentReport(
        "EXP-T10", "Theorem 10 — Extended Wadler Fragment under OPTMINCONTEXT"
    )
    report.note(f"query: {query}")
    report.note("")
    sizes, opt_times, opt_cells, plain_cells = [], [], [], []
    rows = []
    for width in SIZES:
        document = numbered_line(width)
        engine = XPathEngine(document)
        compiled = engine.compile(query)
        assert compiled.is_extended_wadler
        opt_time = time_query(engine, compiled, "optmincontext", repeat=2)
        opt = measure_counters(engine, compiled, "optmincontext")
        plain = measure_counters(engine, compiled, "mincontext")
        sizes.append(len(document.nodes))
        opt_times.append(opt_time)
        opt_cells.append(max(1, opt.peak_table_cells))
        plain_cells.append(max(1, plain.peak_table_cells))
        rows.append(
            [
                len(document.nodes),
                f"{opt_time * 1000:.2f}",
                opt.peak_table_cells,
                plain.peak_table_cells,
            ]
        )
    report.table(
        ["|D|", "optminctx ms", "optminctx peak cells", "plain minctx peak cells"],
        rows,
    )
    time_slope = loglog_slope(sizes, opt_times)
    cell_slope = loglog_slope(sizes, opt_cells)
    plain_slope = loglog_slope(sizes, plain_cells)
    report.note("")
    report.note(f"time slope:  {time_slope:.2f}  (theorem cap: 2)")
    report.note(
        f"space slope: OPTMINCONTEXT {cell_slope:.2f} (cap 1) "
        f"vs plain MINCONTEXT {plain_slope:.2f}"
    )
    report.finish()
    assert time_slope < 2.6
    assert cell_slope < 1.4


def bench_optmincontext_wadler(benchmark):
    engine = XPathEngine(numbered_line(80))
    compiled = engine.compile(wadler_family(2))
    benchmark(lambda: engine.evaluate(compiled, algorithm="optmincontext"))


def bench_mincontext_wadler(benchmark):
    engine = XPathEngine(numbered_line(80))
    compiled = engine.compile(wadler_family(2))
    benchmark(lambda: engine.evaluate(compiled, algorithm="mincontext"))


def bench_topdown_wadler(benchmark):
    engine = XPathEngine(numbered_line(80))
    compiled = engine.compile(wadler_family(2))
    benchmark(lambda: engine.evaluate(compiled, algorithm="topdown"))
