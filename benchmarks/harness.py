"""Shared benchmark harness: timing sweeps, log-log fits, table output.

Every bench regenerates one experiment from DESIGN.md §4. Results print
to stdout (run with ``-s`` to watch) and are also appended to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote them.

Absolute milliseconds are machine-dependent; what the experiments pin
down is *shape*: fitted polynomial degrees (log-log slopes), growth
ratios, who-beats-whom, and abstract operation/space counts from
:mod:`repro.stats` that are deterministic across machines.
"""

from __future__ import annotations

import math
import pathlib
import time
import tracemalloc

from repro import stats
from repro.engine import XPathEngine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def measure_peak_memory(fn):
    """Run ``fn()`` under :mod:`tracemalloc`; returns ``(result,
    peak_bytes)`` where peak is the high-water mark of Python-level
    allocations during the call. Tracing slows allocation, so keep this
    out of wall-clock timing regions; peaks, unlike milliseconds, are
    deterministic enough to compare across representations."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def time_query(engine: XPathEngine, query, algorithm: str, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for one evaluation."""
    compiled = engine.compile(query) if isinstance(query, str) else query
    best = math.inf
    for _ in range(repeat):
        started = time.perf_counter()
        engine.evaluate(compiled, algorithm=algorithm)
        best = min(best, time.perf_counter() - started)
    return best


def measure_counters(engine: XPathEngine, query, algorithm: str):
    """One evaluation under a stats collector; returns the Stats object."""
    compiled = engine.compile(query) if isinstance(query, str) else query
    with stats.collect() as collected:
        engine.evaluate(compiled, algorithm=algorithm)
    return collected


def loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x) — the empirical
    polynomial degree of y(x). Requires positive data."""
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        return float("nan")
    lx = [math.log(x) for x, _ in pairs]
    ly = [math.log(y) for _, y in pairs]
    n = len(pairs)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    denominator = sum((x - mean_x) ** 2 for x in lx)
    if denominator == 0:
        return float("nan")
    return sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly)) / denominator


def doubling_ratios(ys) -> list[float]:
    """Successive growth ratios y[i+1]/y[i]."""
    return [b / a for a, b in zip(ys, ys[1:]) if a > 0]


class ExperimentReport:
    """Accumulates one experiment's tables; prints and persists them."""

    def __init__(self, experiment_id: str, title: str):
        self.experiment_id = experiment_id
        self.title = title
        self.lines: list[str] = [f"== {experiment_id}: {title} =="]

    def note(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers: list[str], rows: list[list]) -> None:
        rendered_rows = [[_cell(value) for value in row] for row in rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(headers[i])
            for i in range(len(headers))
        ]
        self.lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        self.lines.append("  ".join("-" * w for w in widths))
        for row in rendered_rows:
            self.lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))

    def finish(self) -> str:
        text = "\n".join(self.lines) + "\n"
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment_id.lower().replace('-', '_')}.txt"
        path.write_text(text, encoding="utf-8")
        return text


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or value == int(value):
            return f"{value:.0f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)
