"""EXP-SVC — plan-cache amortization: warm vs cold repeated queries.

The service layer's claim: for repeated queries, the per-call frontend
pipeline (parse → normalize → rewrite → relevance → fragment dispatch)
is pure overhead, and caching compiled plans amortizes it away. The
workload is the paper's own query families (Core XPath chains, the
Wadler line family, Example 9, the Section 2.4 running query) over the
Figure 2 running-example document — long queries on a small document,
i.e. the regime where frontend cost is visible at all; on large
documents evaluation dominates and plan caching is (correctly) noise.

Three configurations over the same passes:

* **cold**  — a fresh :class:`QueryService` per pass: every query is
  fully recompiled and re-evaluated (what ``XPathEngine`` did per call
  before the service layer);
* **warm-plan** — one service, result memo bypassed: plans come from the
  LRU cache, evaluation still runs — the honest steady-state of a server
  seeing repeated query *shapes*. **This is the gated configuration.**
* **warm** — one service, both caches on: repeated identical requests
  are dictionary lookups (steady-state for hot identical requests);
  reported for context, deliberately not the gate — it measures the
  result memo, not the plan cache.

Acceptance gate (ISSUE 1): warm-plan-over-cold median speedup >= 2x.
The script exits nonzero if the gate fails. Run with::

    PYTHONPATH=src python benchmarks/bench_plan_cache.py
"""

from __future__ import annotations

import statistics
import sys
import time

from harness import ExperimentReport

from repro.service import QueryService
from repro.workloads.documents import running_example_document
from repro.workloads.queries import (
    core_family,
    example9_query,
    running_example_query,
    wadler_family,
)

#: Repeated query shapes drawn from the paper's experiment families.
QUERIES = [
    core_family(4),
    core_family(6),
    core_family(8),
    core_family(10),
    wadler_family(3),
    example9_query(),
    running_example_query(),
    "//b/c[. > 20]",
]

PASSES = 21
WARMUP_PASSES = 3


def _median_pass_seconds(run_pass) -> float:
    for _ in range(WARMUP_PASSES):  # absorb interpreter/allocator warm-up
        run_pass()
    times = []
    for _ in range(PASSES):
        started = time.perf_counter()
        run_pass()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def main() -> int:
    document = running_example_document()

    def cold_pass():
        service = QueryService()
        for query in QUERIES:
            service.evaluate(query, document, cached=False)

    warm_plan_service = QueryService()

    def warm_plan_pass():
        for query in QUERIES:
            warm_plan_service.evaluate(query, document, cached=False)

    warm_service = QueryService()

    def warm_pass():
        for query in QUERIES:
            warm_service.evaluate(query, document)

    cold = _median_pass_seconds(cold_pass)
    warm_plan = _median_pass_seconds(warm_plan_pass)
    warm = _median_pass_seconds(warm_pass)

    plan_stats = warm_plan_service.plans.stats
    result_stats = warm_service.cache_stats()["result_cache"]

    report = ExperimentReport(
        "EXP-SVC", "plan-cache amortization (warm vs cold repeated queries)"
    )
    report.note(
        f"workload: {len(QUERIES)} paper-family queries x {PASSES} passes on the "
        f"running-example document ({len(document.nodes)} nodes); medians of "
        "per-pass wall-clock"
    )
    report.table(
        ["configuration", "median pass (ms)", "speedup vs cold"],
        [
            ["cold (recompile every call)", cold * 1e3, 1.0],
            ["warm-plan (plan cache only)", warm_plan * 1e3, cold / warm_plan],
            ["warm (plan + result cache)", warm * 1e3, cold / warm],
        ],
    )
    report.note()
    report.note(
        f"plan-cache hit rate: {plan_stats.hit_rate:.1%} "
        f"(hits={plan_stats.hits} misses={plan_stats.misses} "
        f"evictions={plan_stats.evictions})"
    )
    report.note(
        f"result-cache hit rate: {result_stats['hit_rate']:.1%} "
        f"(hits={result_stats['hits']} misses={result_stats['misses']})"
    )
    gate = cold / warm_plan
    report.note(
        f"acceptance gate: warm-plan-over-cold median speedup = {gate:.1f}x "
        "(need >= 2x; plan cache only, result memo bypassed)"
    )
    report.finish()
    return 0 if gate >= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
