"""EXP-E9 — Example 9: query Q on the Figure 2 document, all algorithms.

Regenerates the paper's OPTMINCONTEXT walkthrough result
({x11, x12, x13, x14, x22}) and times every algorithm on it, verifying
that OPTMINCONTEXT's bottom-up pass pays off against plain MINCONTEXT
in abstract operation counts even at |dom| = 25.
"""

from harness import ExperimentReport, measure_counters, time_query

from repro.engine import XPathEngine
from repro.workloads.documents import running_example_document
from repro.workloads.queries import example9_query

ALGORITHMS = ("naive", "topdown", "bottomup", "mincontext", "optmincontext")


def bench_example9_all_algorithms(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


def _run():
    engine = XPathEngine(running_example_document())
    compiled = engine.compile(example9_query())
    report = ExperimentReport("EXP-E9", "Example 9 — query Q across all algorithms")
    report.note(f"query: {compiled.source}")
    report.note(f"fragment: wadler={compiled.is_extended_wadler}, "
                f"bottom-up paths={compiled.bottomup_path_count}")
    report.note("")
    rows = []
    expected = None
    for algorithm in ALGORITHMS:
        elapsed = time_query(engine, compiled, algorithm)
        counters = measure_counters(engine, compiled, algorithm)
        result = engine.evaluate(compiled, algorithm=algorithm)
        labels = "{" + ", ".join(f"x{n.xml_id}" for n in result) + "}"
        if expected is None:
            expected = labels
        assert labels == expected, algorithm
        rows.append(
            [
                algorithm,
                f"{elapsed * 1000:.2f}",
                counters.peak_table_cells,
                counters.get("mincontext_contexts_evaluated"),
                labels,
            ]
        )
    report.table(["algorithm", "ms", "peak cells", "ctx evals", "result"], rows)
    report.note("")
    report.note("paper's answer: {x11, x12, x13, x14, x22} ✓")
    report.finish()
    assert expected == "{x11, x12, x13, x14, x22}"


def bench_example9_optmincontext(benchmark, running_engine):
    compiled = running_engine.compile(example9_query())
    result = benchmark(
        lambda: running_engine.evaluate(compiled, algorithm="optmincontext")
    )
    assert sorted(n.xml_id for n in result) == ["11", "12", "13", "14", "22"]


def bench_example9_mincontext(benchmark, running_engine):
    compiled = running_engine.compile(example9_query())
    benchmark(lambda: running_engine.evaluate(compiled, algorithm="mincontext"))


def bench_example9_naive(benchmark, running_engine):
    compiled = running_engine.compile(example9_query())
    benchmark(lambda: running_engine.evaluate(compiled, algorithm="naive"))
