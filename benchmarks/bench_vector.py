"""EXP-VEC — block-vectorized column programs vs the scalar kernels.

The PR 9 payoff claim: wide Core XPath sweeps — whole-document
``descendant``/``child``/``attribute`` chains where every frontier is
thousands of nodes — spend their time in per-node Python dispatch, not
in the index lookups themselves. Compiling the sweep's step chain into a
linear column program and executing it batch-at-a-time over the flat
NodeIndex columns (interval joins, partition semi-joins, child-span and
attribute-run gathers) removes that dispatch without changing a single
result byte. The stdlib executor alone must pay for itself; the
auto-detected numpy executor (:mod:`repro.axes.vec_np`) widens the gap
but is never required.

Three gates, two of them machine-independent:

* **value gate** — every workload query over every workload document
  evaluates byte-identically under forced ``scan``, ``indexed``,
  ``auto``, and ``vector`` dispatch, the latter on the stdlib executor
  and (when importable) the numpy executor.
* **counter gate** — ``vector_program_runs``/``vector_ops`` move by
  exactly the program-shape-predicted amounts for known queries, on
  both executors, and the wide workload actually engages the vector
  tier under ``auto`` dispatch.
* **speedup gate** — summed best-of-N evaluation time of the wide
  workload under forced ``vector`` dispatch vs forced ``indexed``
  (scalar kernels): >= 2.0x with the auto-selected executor AND
  >= 1.5x with the stdlib executor forced. Host-gated like EXP-AXIS:
  enforced when the host grants >= 2 usable CPUs (CI runners),
  reported but not enforced on 1-CPU containers where shared-host
  noise dominates. The measured ratios print either way.

The script exits nonzero if any enforced gate fails. Run with::

    PYTHONPATH=src python benchmarks/bench_vector.py
"""

from __future__ import annotations

import os
import sys

from harness import ExperimentReport, time_query

from repro import stats
from repro.axes import (
    kernel_mode_forced,
    numpy_available,
    vector_backend_forced,
)
from repro.engine import XPathEngine
from repro.workloads.documents import balanced_tree, book_catalog
from repro.xml.index import node_index

REPEAT = 5
VECTOR_SPEEDUP_GATE = 2.0
STDLIB_SPEEDUP_GATE = 1.5

#: The wide-sweep workload: whole-document frontiers, the regime the
#: vector tier exists for. All Core XPath, all routed through
#: ``corexpath`` — the only algorithm whose sweeps compile to programs.
WORKLOAD_QUERIES = (
    "/descendant-or-self::node()/child::*",
    "/descendant::*/child::node()",
    "/descendant::chapter/descendant::node()",
    "/descendant::node()[ancestor::chapter]",
    "/descendant::*[not(child::*)]",
    "/descendant::*/parent::*",
    "/descendant::*/attribute::node()",
    "/descendant::*[child::*]/child::node()",
)

#: Extra identity-only queries: narrow results, delegated axes, nested
#: predicates — shapes the speedup workload skips but the byte-identity
#: contract must still cover.
IDENTITY_QUERIES = WORKLOAD_QUERIES + (
    "/descendant::*[child::node()]",
    "/descendant::book/following-sibling::book",
    "/descendant::chapter[descendant::ref]/ancestor::book",
    "/descendant::title/following::price",
    "/child::*/child::*[child::*[child::node()]]",
    "/descendant::ref/preceding-sibling::node()",
)


def workload_documents():
    return [
        book_catalog(books=300, chapters_per_book=5),
        balanced_tree(depth=7, fanout=4, tags=("a", "b", "c", "d", "e")),
    ]


def _backends():
    names = ["stdlib"]
    if numpy_available():
        names.append("numpy")
    return names


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------


def run_value_gate(documents) -> tuple[bool, int]:
    """Vector ≡ indexed ≡ auto ≡ scan on every query × document cell,
    for every available executor."""
    cells = 0
    ok = True
    for document in documents:
        engine = XPathEngine(document)
        for query in IDENTITY_QUERIES:
            compiled = engine.compile(query)
            with kernel_mode_forced("scan"):
                baseline = engine.evaluate(compiled, algorithm="corexpath")
            for mode in ("indexed", "auto"):
                with kernel_mode_forced(mode):
                    if engine.evaluate(compiled, algorithm="corexpath") != baseline:
                        ok = False
                cells += 1
            for backend in _backends():
                with kernel_mode_forced("vector"), vector_backend_forced(backend):
                    if engine.evaluate(compiled, algorithm="corexpath") != baseline:
                        ok = False
                cells += 1
    return ok, cells


#: (query, expected program runs, expected vector ops) for one forced-
#: ``vector`` evaluation. Shapes: a forward program run ticks one op per
#: vectorizable step; each predicate adds one backward program run whose
#: steps tick a filter op plus an inverse op; delegated axes (siblings)
#: tick no op but still count the run.
COUNTER_QUERIES = (
    ("/descendant::chapter", 1, 1),
    ("/descendant::*/child::node()", 1, 2),
    ("/descendant::*/attribute::node()", 1, 2),
    ("/descendant::*[child::*]", 2, 3),
    ("/descendant::book/following-sibling::book", 1, 1),
)


def run_counter_gate(documents) -> tuple[bool, list]:
    """Exact accounting: the vector counters move by program-shape-
    predicted deltas, identically on every executor."""
    document = documents[0]
    engine = XPathEngine(document)
    ok = True
    rows = []
    for query, want_runs, want_ops in COUNTER_QUERIES:
        compiled = engine.compile(query)
        for backend in _backends():
            with kernel_mode_forced("vector"), vector_backend_forced(backend):
                before = stats.axis_kernel_stats.snapshot()
                engine.evaluate(compiled, algorithm="corexpath")
                after = stats.axis_kernel_stats.snapshot()
            runs = after["vector_program_runs"] - before["vector_program_runs"]
            ops = after["vector_ops"] - before["vector_ops"]
            if (runs, ops) != (want_runs, want_ops):
                ok = False
            rows.append([f"{query} [{backend}]", runs, want_runs, ops, want_ops])
    # Engagement: under plain auto dispatch the wide workload must run
    # through the vector tier, not fall back to scalar sweeps.
    with kernel_mode_forced("auto"):
        before = stats.axis_kernel_stats.snapshot()
        for query in WORKLOAD_QUERIES:
            engine.evaluate(engine.compile(query), algorithm="corexpath")
        after = stats.axis_kernel_stats.snapshot()
    engaged_runs = after["vector_program_runs"] - before["vector_program_runs"]
    engaged_ops = after["vector_ops"] - before["vector_ops"]
    if engaged_runs < len(WORKLOAD_QUERIES) or engaged_ops <= engaged_runs:
        ok = False
    rows.append(
        ["auto dispatch, full workload", engaged_runs, f">={len(WORKLOAD_QUERIES)}",
         engaged_ops, f">{engaged_runs}"]
    )
    return ok, rows


def run_speedup_gate(documents):
    """Summed best-of-N evaluation seconds: forced indexed scalar
    kernels vs forced vector programs, per executor."""
    engines = [XPathEngine(document) for document in documents]
    compiled = [
        [engine.compile(query) for query in WORKLOAD_QUERIES] for engine in engines
    ]
    for engine in engines:  # build indexes + tables outside timed region
        index = node_index(engine.document)
        index.child_table()
        index.attribute_counts()
    timings = {}
    with kernel_mode_forced("indexed"):
        total = 0.0
        for engine, plans in zip(engines, compiled):
            for plan in plans:
                total += time_query(engine, plan, "corexpath", repeat=REPEAT)
        timings["indexed"] = total
    for backend in _backends():
        with kernel_mode_forced("vector"), vector_backend_forced(backend):
            total = 0.0
            for engine, plans in zip(engines, compiled):
                for plan in plans:
                    total += time_query(engine, plan, "corexpath", repeat=REPEAT)
            timings[backend] = total
    return timings


def main() -> int:
    usable_cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    documents = workload_documents()

    value_ok, value_cells = run_value_gate(documents)
    counters_ok, counter_rows = run_counter_gate(documents)
    timings = run_speedup_gate(documents)
    auto_backend = "numpy" if numpy_available() else "stdlib"
    vector_speedup = timings["indexed"] / timings[auto_backend]
    stdlib_speedup = timings["indexed"] / timings["stdlib"]
    speedup_enforced = usable_cpus >= 2
    # The 2x gate prices the auto-selected executor at its best; with
    # numpy absent that IS the stdlib executor, whose own 1.5x gate is
    # the binding one — don't double-charge the no-numpy leg.
    vector_ok = (
        not numpy_available() or vector_speedup >= VECTOR_SPEEDUP_GATE
    )
    stdlib_ok = stdlib_speedup >= STDLIB_SPEEDUP_GATE

    report = ExperimentReport(
        "EXP-VEC", "block-vectorized column programs vs scalar kernels"
    )
    sizes = ", ".join(str(len(document)) for document in documents)
    report.note(
        f"workload: {len(WORKLOAD_QUERIES)} wide-sweep queries x "
        f"{len(documents)} documents (|dom| = {sizes}); best of {REPEAT}; "
        f"numpy {'available' if numpy_available() else 'ABSENT (stdlib only)'}; "
        f"host grants {usable_cpus} usable CPU(s)"
    )
    rows = [["indexed (scalar kernels forced)", timings["indexed"] * 1e3, 1.0]]
    for backend in _backends():
        rows.append(
            [
                f"vector / {backend} executor",
                timings[backend] * 1e3,
                timings["indexed"] / timings[backend],
            ]
        )
    report.table(["dispatch", "summed best (ms)", "speedup"], rows)
    report.note()
    report.table(
        ["counter probe", "runs", "want", "ops", "want "],
        counter_rows,
    )
    report.note()
    report.note(
        f"value gate:   vector == indexed == auto == scan on every cell "
        f"({value_cells} cells, {len(_backends())} executor(s)) — "
        + ("PASS" if value_ok else "FAIL")
    )
    report.note(
        "counter gate: program/op deltas exact on every executor — "
        + ("PASS" if counters_ok else "FAIL")
    )
    if speedup_enforced:
        vector_need = (
            f"need >= {VECTOR_SPEEDUP_GATE}x"
            if numpy_available()
            else "stdlib gate binds — numpy absent"
        )
        report.note(
            f"speedup gate: vector {vector_speedup:.2f}x ({vector_need}), "
            f"stdlib-only {stdlib_speedup:.2f}x "
            f"(need >= {STDLIB_SPEEDUP_GATE}x) — "
            + ("PASS" if vector_ok and stdlib_ok else "FAIL")
        )
    else:
        report.note(
            f"speedup gate: SKIPPED — 1-CPU host (measured vector "
            f"{vector_speedup:.2f}x / stdlib {stdlib_speedup:.2f}x; gates "
            f"need >= {VECTOR_SPEEDUP_GATE}x / >= {STDLIB_SPEEDUP_GATE}x "
            f"on >= 2-CPU hosts)"
        )
    report.finish()
    if not value_ok or not counters_ok:
        return 1
    if speedup_enforced and not (vector_ok and stdlib_ok):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
