"""Benchmark-suite fixtures."""

import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.engine import XPathEngine
from repro.workloads.documents import running_example_document


@pytest.fixture(scope="session")
def running_engine():
    return XPathEngine(running_example_document())
