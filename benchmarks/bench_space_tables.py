"""EXP-X2 — the space story of Sections 2.3 and 3.1, measured.

The paper's narrative: strict bottom-up E↑ tabulates Θ(|D|³) context
rows; top-down E↓ improves to O(|D|²) contexts per table; MINCONTEXT's
relevant-context projection plus the (cp,cs) loop leaves only
O(|D|)-row tables. We measure live table cells (weighted: one cell per
scalar row, one per node-set member) for all three on the same query
over growing documents.

E↑ is only feasible on tiny documents — that infeasibility *is* the
result.
"""

from harness import ExperimentReport, loglog_slope, measure_counters

from repro.engine import XPathEngine
from repro.workloads.documents import deep_chain, wide_tree

#: The running-example query shape: two descendant steps give E↓ its
#: Θ(|D|²) previous/current pairs (on a chain, every node sees every
#: deeper node).
QUERY = "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"


def bench_space_comparison(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


def _run():
    report = ExperimentReport(
        "EXP-X2", "peak table cells: E↑ (|D|³) vs E↓ (|D|²) vs MINCONTEXT (|D|)"
    )
    report.note(f"query: {QUERY}")
    report.note("")
    sizes, up_cells, down_cells, min_cells = [], [], [], []
    rows = []
    for length in (4, 6, 8, 11):
        document = deep_chain(length)
        engine = XPathEngine(document)
        size = len(document.nodes)
        up = measure_counters(engine, QUERY, "bottomup").peak_table_cells
        down = measure_counters(engine, QUERY, "topdown").peak_table_cells
        minimum = measure_counters(engine, QUERY, "mincontext").peak_table_cells
        sizes.append(size)
        up_cells.append(up)
        down_cells.append(down)
        min_cells.append(max(1, minimum))
        rows.append([size, up, down, minimum])
    report.table(["|D|", "E↑ cells", "E↓ cells", "MINCONTEXT cells"], rows)
    up_slope = loglog_slope(sizes, up_cells)
    down_slope = loglog_slope(sizes, down_cells)
    min_slope = loglog_slope(sizes, min_cells)
    report.note("")
    report.note(
        f"fitted degrees: E↑ {up_slope:.2f} (≈3), E↓ {down_slope:.2f} (≈2), "
        f"MINCONTEXT {min_slope:.2f} (≈1)"
    )
    report.finish()
    assert up_slope > down_slope > min_slope
    assert up_slope > 2.4
    assert down_slope > 1.5
    assert min_slope < 1.5


def bench_bottomup_small_document(benchmark):
    engine = XPathEngine(wide_tree(5))
    compiled = engine.compile(QUERY)
    benchmark(lambda: engine.evaluate(compiled, algorithm="bottomup"))


def bench_mincontext_same_document(benchmark):
    engine = XPathEngine(wide_tree(5))
    compiled = engine.compile(QUERY)
    benchmark(lambda: engine.evaluate(compiled, algorithm="mincontext"))
