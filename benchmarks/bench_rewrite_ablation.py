"""EXP-A1 (ablation) — what the rewrite pass buys on //-heavy queries.

Not a paper experiment: an ablation for a design choice DESIGN.md calls
out (the optimizer from the related-work thread [5]/[12]). Descendant
fusion removes one full intermediate node-set per ``//``; constant
folding can promote queries into cheaper fragments (e.g. a folded-away
predicate turns a query Core, unlocking Theorem 13's evaluator).
"""

from harness import ExperimentReport, measure_counters, time_query

from repro.engine import XPathEngine
from repro.workloads.documents import balanced_tree

QUERIES = [
    "//a//b//c",
    "//b[c = 10]",
    "//a/./b/.",
    "//a[1 = 1]//c",
    "//*[not(not(b))]",
]


def bench_rewrite_ablation(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


def _run():
    document = balanced_tree(depth=6, fanout=3)
    plain = XPathEngine(document)
    optimizing = XPathEngine(document, optimize=True)
    report = ExperimentReport("EXP-A1", "rewrite-pass ablation (|D| = %d)" % len(document.nodes))
    rows = []
    for query in QUERIES:
        compiled = optimizing.compile(query)
        baseline_time = time_query(plain, query, "auto", repeat=3)
        optimized_time = time_query(optimizing, query, "auto", repeat=3)
        baseline_ops = measure_counters(plain, query, "auto")
        optimized_ops = measure_counters(optimizing, query, "auto")
        baseline_axis = baseline_ops.get("axis_set_calls") + baseline_ops.get(
            "axis_single_calls"
        )
        optimized_axis = optimized_ops.get("axis_set_calls") + optimized_ops.get(
            "axis_single_calls"
        )
        # Equivalence double-check on the bench workload itself.
        assert plain.evaluate(query) == optimizing.evaluate(query), query
        rows.append(
            [
                query,
                compiled.rewrite_stats.total(),
                f"{baseline_time * 1000:.2f}",
                f"{optimized_time * 1000:.2f}",
                baseline_axis,
                optimized_axis,
            ]
        )
    report.table(
        ["query", "rewrites", "plain ms", "opt ms", "plain axis ops", "opt axis ops"],
        rows,
    )
    report.note("")
    report.note("descendant fusion halves the axis sweeps of a bare '//' chain;")
    report.note("folded predicates can promote queries into cheaper fragments.")
    report.finish()


def bench_optimized_descendant_chain(benchmark):
    engine = XPathEngine(balanced_tree(depth=6, fanout=3), optimize=True)
    compiled = engine.compile("//a//b//c")
    benchmark(lambda: engine.evaluate(compiled))


def bench_plain_descendant_chain(benchmark):
    engine = XPathEngine(balanced_tree(depth=6, fanout=3))
    compiled = engine.compile("//a//b//c")
    benchmark(lambda: engine.evaluate(compiled))
