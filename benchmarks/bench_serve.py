"""EXP-SERVE — the serving daemon: bounded p99 under faults, exact counters, drain.

PR 10 turned the paper's predictability result into an operational
contract: the daemon prices every (query, document) cell *before*
evaluation and refuses or degrades what cannot finish in time, so tail
latency is governed by deadlines and refusal cost — not by whatever the
slowest admitted request happens to do. Four gates:

* **p99 gate** — a sustained skewed many-client workload with fault
  injection (slow evaluations, dying workers, per-query deadlines) keeps
  the per-request p99 under ``DEADLINE_MS + SLACK``: every request
  either completes fast, deadlines out at its budget, or fails typed —
  nothing hangs past the bound;
* **reconciliation gate** — the exact :class:`~repro.stats.ServeStats`
  identities close at the protocol level: ``queries == admitted +
  rejected + request_errors`` and ``admitted == completed + deadlined +
  failed``, globally and per client, with the global counters equal to
  the per-client sums — and **zero lost responses** (every request a
  client sent got exactly one reply);
* **admission gate** — against an overloaded pricing model every query
  is refused with a typed ``OVERLOAD`` *before evaluation starts* (the
  fault injector's ``evaluations_started`` counter stays at zero) and
  the refusal p99 itself is bounded;
* **drain gate** — SIGTERM-style drain with a slow straggler in flight
  finishes inside the grace window and the straggler still receives its
  response (completed or typed ``DEADLINE``) — zero lost in-flight work.

Absolute milliseconds are machine-dependent; the gates are bounds and
exact counter identities, deterministic across machines. Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import asyncio
import math
import sys
import threading
import time

from harness import ExperimentReport

from repro.errors import OverloadError, ReproError
from repro.serve import FaultInjector, ServeClient, XPathDaemon
from repro.serve.admission import AdmissionController
from repro.serve.quotas import ClientQuota
from repro.service.service import QueryService

#: Per-query deadline for the slow ("sleepy") requests, milliseconds.
DEADLINE_MS = 60.0
#: CI-runner slack on top of the deadline for the sustained-load p99.
P99_SLACK_SECONDS = 0.45
#: Refusal latency bound for fully rejected traffic (no evaluation runs).
REJECT_P99_SECONDS = 0.10
#: Daemon grace window for the drain phase...
DRAIN_GRACE = 2.0
#: ...and the wall-clock bound the drain must finish inside.
DRAIN_BOUND_SECONDS = DRAIN_GRACE + 1.0

#: Skewed per-client request counts (the "many clients, one hot" shape).
CLIENT_PLANS = (("hot", 40), ("warm", 20), ("cold", 8), ("cold2", 8))

DOCUMENT = "<lib>" + "<book><sleepy/><doomed/></book>" * 20 + "</lib>"


class DaemonThread:
    """An :class:`XPathDaemon` on a private event loop in a background
    thread (the benchmark equivalent of the test suite's fixture)."""

    def __init__(self, **kwargs):
        self.holder = {}
        ready = threading.Event()

        def run():
            async def main():
                daemon = XPathDaemon(**kwargs)
                await daemon.start()
                self.holder["daemon"] = daemon
                self.holder["loop"] = asyncio.get_running_loop()
                ready.set()
                await daemon.wait_closed()

            asyncio.run(main())

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not ready.wait(10):
            raise RuntimeError("daemon failed to start")

    @property
    def daemon(self) -> XPathDaemon:
        return self.holder["daemon"]

    def initiate_drain(self) -> None:
        self.holder["loop"].call_soon_threadsafe(self.daemon.initiate_drain)

    def join(self, timeout: float = 30.0) -> None:
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("daemon loop failed to drain")

    def stop(self) -> None:
        try:
            self.initiate_drain()
        except RuntimeError:
            pass
        self.join()


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def sustained_load_phase():
    """Skewed concurrent clients against a permissive daemon with slow
    and dying evaluations; returns latencies + counter snapshots."""
    injector = FaultInjector(
        delay_matching="sleepy", delay_seconds=0.2, die_matching="doomed"
    )
    service = QueryService()
    admission = AdmissionController(
        service, seconds_per_unit=1e-12, max_cost_seconds=60.0,
        queue_high=256, queue_degrade=64,
    )
    runner = DaemonThread(
        service=service,
        injector=injector,
        quota=ClientQuota(max_in_flight=8),
        admission=admission,
    )
    latencies: dict[str, list[float]] = {name: [] for name, _ in CLIENT_PLANS}
    ledgers: dict[str, tuple[int, int]] = {}
    try:
        def client_run(name, requests):
            sent = received = 0
            with ServeClient(
                port=runner.daemon.port, client=name, timeout=30
            ) as client:
                client.register("d", DOCUMENT)
                for index in range(requests):
                    kind = index % 5
                    sent += 1
                    started = time.perf_counter()
                    try:
                        if kind == 0:
                            client.query(
                                "//sleepy", "d", deadline_ms=DEADLINE_MS, retry=False
                            )
                        elif kind == 1:
                            client.query("//doomed", "d", retry=False)
                        elif kind == 2:
                            client.batch(["//book", "count(//book)"], ["d"])
                        else:
                            client.query("//book", "d", retry=False)
                        received += 1
                    except ReproError:
                        received += 1  # a typed response IS a response
                    latencies[name].append(time.perf_counter() - started)
                ledgers[name] = (sent, received)

        threads = [
            threading.Thread(target=client_run, args=(name, count))
            for name, count in CLIENT_PLANS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
            if thread.is_alive():
                raise RuntimeError("sustained-load client hung")
        snapshot = runner.daemon.stats_snapshot()
    finally:
        runner.stop()
    return latencies, ledgers, snapshot


def identities_close(snapshot: dict) -> bool:
    ok = snapshot["queries"] == (
        snapshot["admitted"] + snapshot["rejected"] + snapshot["request_errors"]
    )
    return ok and snapshot["admitted"] == (
        snapshot["completed"] + snapshot["deadlined"] + snapshot["failed"]
    )


def reconciliation_gate(stats: dict) -> bool:
    if not identities_close(stats["global"]):
        return False
    if not all(identities_close(client) for client in stats["clients"].values()):
        return False
    return all(
        stats["global"][key]
        == sum(client[key] for client in stats["clients"].values())
        for key in ("queries", "admitted", "completed", "deadlined", "failed")
    )


def admission_phase(requests: int = 24):
    """Every query priced over an impossible budget: all must be refused
    typed OVERLOAD with zero evaluations started, and fast."""
    injector = FaultInjector()
    service = QueryService()
    strict = AdmissionController(service, max_cost_seconds=1e-9)
    runner = DaemonThread(service=service, injector=injector, admission=strict)
    refusal_latencies = []
    rejected = 0
    try:
        with ServeClient(port=runner.daemon.port, client="pressed") as client:
            client.register("d", DOCUMENT)
            for _ in range(requests):
                started = time.perf_counter()
                try:
                    client.query("//book", "d", retry=False)
                except OverloadError:
                    rejected += 1
                refusal_latencies.append(time.perf_counter() - started)
        evaluations_started = injector.snapshot()["evaluations_started"]
    finally:
        runner.stop()
    return refusal_latencies, rejected, evaluations_started


def drain_phase():
    """Drain with a slow straggler in flight: measure initiate-to-closed
    wall time and confirm the straggler still got its response."""
    injector = FaultInjector(delay_matching="sleepy", delay_seconds=0.4)
    service = QueryService()
    admission = AdmissionController(
        service, seconds_per_unit=1e-12, max_cost_seconds=60.0
    )
    runner = DaemonThread(
        service=service, injector=injector, admission=admission,
        drain_grace=DRAIN_GRACE,
    )
    outcome = {}

    def straggler():
        with ServeClient(port=runner.daemon.port, client="straggler") as client:
            client.register("d", DOCUMENT)
            try:
                client.query("//sleepy", "d", retry=False)
                outcome["response"] = "completed"
            except ReproError as error:
                outcome["response"] = type(error).__name__

    thread = threading.Thread(target=straggler)
    thread.start()
    time.sleep(0.15)  # let the slow query reach evaluation
    started = time.perf_counter()
    runner.initiate_drain()
    runner.join()
    drain_elapsed = time.perf_counter() - started
    thread.join(10)
    responded = not thread.is_alive() and "response" in outcome
    return drain_elapsed, responded, outcome.get("response", "LOST")


def main() -> int:
    latencies, ledgers, stats = sustained_load_phase()
    all_latencies = [sample for series in latencies.values() for sample in series]
    p50 = percentile(all_latencies, 0.50)
    p99 = percentile(all_latencies, 0.99)
    p99_bound = DEADLINE_MS / 1e3 + P99_SLACK_SECONDS
    p99_ok = p99 <= p99_bound

    zero_lost = all(
        ledgers[name] == (count, count) for name, count in CLIENT_PLANS
    )
    reconciled = reconciliation_gate(stats)

    refusal_latencies, rejected, evaluations_started = admission_phase()
    refusal_p99 = percentile(refusal_latencies, 0.99)
    admission_ok = (
        rejected == len(refusal_latencies)
        and evaluations_started == 0
        and refusal_p99 <= REJECT_P99_SECONDS
    )

    drain_elapsed, straggler_responded, straggler_outcome = drain_phase()
    drain_ok = drain_elapsed <= DRAIN_BOUND_SECONDS and straggler_responded

    total_requests = sum(count for _, count in CLIENT_PLANS)
    report = ExperimentReport(
        "EXP-SERVE", "serving daemon (p99 under faults, exact counters, drain)"
    )
    report.note(
        f"workload: {len(CLIENT_PLANS)} concurrent clients, skewed "
        f"{'/'.join(str(count) for _, count in CLIENT_PLANS)} requests "
        f"({total_requests} total); faults: 0.2s slow evaluations under a "
        f"{DEADLINE_MS:.0f}ms deadline, worker death, batch traffic"
    )
    report.table(
        ["client", "requests", "p50 (ms)", "p99 (ms)"],
        [
            [
                name,
                len(latencies[name]),
                percentile(latencies[name], 0.50) * 1e3,
                percentile(latencies[name], 0.99) * 1e3,
            ]
            for name, _ in CLIENT_PLANS
        ],
    )
    snapshot = stats["global"]
    report.note()
    report.note(
        "counters: "
        + ", ".join(
            f"{key}={snapshot[key]}"
            for key in (
                "queries", "admitted", "rejected", "request_errors",
                "completed", "deadlined", "failed",
            )
        )
    )
    report.note()
    report.note(
        f"p99 gate:     sustained-load p99 = {p99 * 1e3:.0f}ms, p50 = "
        f"{p50 * 1e3:.0f}ms (need p99 <= {p99_bound * 1e3:.0f}ms) — "
        + ("PASS" if p99_ok else "FAIL")
    )
    report.note(
        "reconcile gate: exact identities global + per-client, global == "
        "sum(clients), zero lost responses — "
        + ("PASS" if (reconciled and zero_lost) else "FAIL")
    )
    report.note(
        f"admission gate: {rejected}/{len(refusal_latencies)} refused typed "
        f"OVERLOAD, evaluations started = {evaluations_started}, refusal p99 "
        f"= {refusal_p99 * 1e3:.1f}ms (need <= {REJECT_P99_SECONDS * 1e3:.0f}ms) — "
        + ("PASS" if admission_ok else "FAIL")
    )
    report.note(
        f"drain gate:   drained in {drain_elapsed:.2f}s with a 0.4s straggler "
        f"in flight (need <= {DRAIN_BOUND_SECONDS:.1f}s), straggler response: "
        f"{straggler_outcome} — " + ("PASS" if drain_ok else "FAIL")
    )
    report.finish()
    return 0 if (p99_ok and reconciled and zero_lost and admission_ok and drain_ok) else 1


if __name__ == "__main__":
    sys.exit(main())
