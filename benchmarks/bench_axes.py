"""EXP-AXIS — output-sensitive fused axis kernels vs the O(|D|) scans.

The PR 5 payoff claim: on *selective* queries over large documents, the
per-document NodeIndex (name-partitioned sorted pre arrays + sorted-array
node-set algebra) turns each ``χ(X) ∩ T(t)`` from a whole-document scan
into a binary-search range query, without changing a single result byte
— the Definition-1 scans remain the dispatch fallback, so worst-case
asymptotics never regress.

Three gates, two of them machine-independent:

* **value gate** — for every axis × node test × context-set cell over
  the workload documents (attributes, the document node, and whole-dom
  sets included), the forced-``indexed`` kernels return byte-identical
  node sets to the forced-``scan`` path, forward and inverse; and every
  workload query evaluates byte-identically under ``scan``/``auto``/
  ``indexed`` dispatch across the paper-bounded evaluators.
* **counter gate** — ``index_builds`` moves by exactly one per fresh
  document, every dispatch counts exactly one fused/fallback outcome,
  and the selective workload actually takes the kernels (fused hits
  dominate).
* **speedup gate** — summed best-of-N evaluation time of the selective
  workload under ``auto`` dispatch ≥ 2× faster than under forced
  ``scan``. Host-gated like EXP-SHARD: enforced when the host grants
  ≥ 2 usable CPUs (CI runners), reported but not enforced on 1-CPU
  containers where shared-host noise dominates. The measured ratio
  prints either way.

The script exits nonzero if any enforced gate fails. Run with::

    PYTHONPATH=src python benchmarks/bench_axes.py
"""

from __future__ import annotations

import os
import random
import sys

from harness import ExperimentReport, time_query

from repro import stats
from repro.axes.axes import (
    ALL_AXES,
    axis_set,
    fused_axis_set,
    fused_inverse_axis_set,
    inverse_axis_set,
    kernel_mode_forced,
    matches_node_test,
)
from repro.engine import XPathEngine
from repro.workloads.documents import balanced_tree, book_catalog
from repro.xml.index import node_index
from repro.xml.parser import parse_document
from repro.xpath.ast import NodeTest

REPEAT = 5
SPEEDUP_GATE = 2.0

#: The selective workload: large documents, queries whose name tests hit
#: small partitions — the regime the fused kernels exist for. Each entry
#: is (query, forced algorithm); corexpath rides the sorted-array
#: sweeps, mincontext the fused step_candidate_set.
WORKLOAD_QUERIES = (
    ("/descendant::price", "corexpath"),
    ("/descendant::ref", "corexpath"),
    ("/descendant::chapter[child::pages]", "corexpath"),
    ("/descendant::author[not(following::ref)]", "corexpath"),
    ("/descendant::heading/following::ref", "corexpath"),
    ("/descendant::book[descendant::pages]/child::title", "corexpath"),
    ("/descendant::price[. > 80]", "mincontext"),
    ("/descendant::ref/preceding::title", "corexpath"),
)


def workload_documents():
    return [
        book_catalog(books=120, chapters_per_book=5),
        book_catalog(books=60, chapters_per_book=3),
        balanced_tree(depth=6, fanout=4, tags=("a", "b", "c", "d", "e")),
    ]


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------


def run_value_gate(documents) -> tuple[bool, int]:
    """Kernel ≡ scan on every (axis, test, context-set) cell, forward and
    inverse, plus whole-query identity across all three dispatch modes."""
    tests = [
        NodeTest("name", "price"),
        NodeTest("name", "chapter"),
        NodeTest("name", "nosuch"),
        NodeTest("name", "id"),
        NodeTest("wildcard"),
        NodeTest("node"),
        NodeTest("text"),
        NodeTest("comment"),
    ]
    rng = random.Random(20030615)
    cells = 0
    ok = True
    for document in documents:
        nodes = document.nodes
        attributes = [n for n in nodes if n.is_attribute]
        context_sets = [
            [document.root],
            rng.sample(nodes, 5),
            rng.sample(nodes, 40) + attributes[:2],
            list(nodes),
        ]
        for X in context_sets:
            for axis in sorted(ALL_AXES):
                for test in tests:
                    expected = {
                        y
                        for y in axis_set(document, axis, X)
                        if matches_node_test(y, test, axis)
                    }
                    with kernel_mode_forced("indexed"):
                        indexed = fused_axis_set(document, axis, X, test)
                    with kernel_mode_forced("scan"):
                        scanned = fused_axis_set(document, axis, X, test)
                    if not (indexed == scanned == expected):
                        ok = False
                    cells += 1
                inverse_expected = inverse_axis_set(document, axis, X)
                with kernel_mode_forced("indexed"):
                    inverse_indexed = fused_inverse_axis_set(document, axis, X)
                with kernel_mode_forced("scan"):
                    inverse_scanned = fused_inverse_axis_set(document, axis, X)
                if not (inverse_indexed == inverse_scanned == inverse_expected):
                    ok = False
                cells += 1
    # Whole queries: every dispatch mode returns the same bytes.
    for document in documents:
        engine = XPathEngine(document)
        for query, algorithm in WORKLOAD_QUERIES:
            compiled = engine.compile(query)
            with kernel_mode_forced("scan"):
                baseline = engine.evaluate(compiled, algorithm=algorithm)
            for mode in ("auto", "indexed"):
                with kernel_mode_forced(mode):
                    if engine.evaluate(compiled, algorithm=algorithm) != baseline:
                        ok = False
                cells += 1
    return ok, cells


def run_counter_gate() -> tuple[bool, dict]:
    """Exact accounting: one build per fresh document, one outcome per
    dispatch, kernels actually engaged on the selective workload."""
    documents = [
        parse_document(f"<r>{'<a>1</a><b>2</b>' * (20 + i)}</r>") for i in range(3)
    ]
    before = stats.axis_kernel_stats.snapshot()
    for document in documents:
        node_index(document)
        node_index(document)  # second call must hit the cache
    after_builds = stats.axis_kernel_stats.snapshot()
    builds_exact = (
        after_builds["index_builds"] - before["index_builds"] == len(documents)
    )
    test = NodeTest("name", "a")
    calls = 0
    before_dispatch = stats.axis_kernel_stats.snapshot()
    with kernel_mode_forced("auto"):
        for document in documents:
            for axis in ("descendant", "following", "preceding", "child", "self"):
                for _ in range(10):
                    fused_axis_set(document, axis, [document.root], test)
                    calls += 1
    after = stats.axis_kernel_stats.snapshot()
    fused_delta = after["fused_hits"] - before_dispatch["fused_hits"]
    fallback_delta = after["fallback_scans"] - before_dispatch["fallback_scans"]
    dispatch_exact = fused_delta + fallback_delta == calls
    kernels_engaged = fused_delta == calls  # selective name test: all fused
    detail = {
        "documents": len(documents),
        "builds_delta": after_builds["index_builds"] - before["index_builds"],
        "dispatches": calls,
        "fused": fused_delta,
        "fallback": fallback_delta,
    }
    return builds_exact and dispatch_exact and kernels_engaged, detail


def run_speedup_gate(documents):
    """Summed best-of-N evaluation seconds, auto dispatch vs forced scan."""
    engines = [XPathEngine(document) for document in documents]
    compiled = [
        [(engine.compile(query), algorithm) for query, algorithm in WORKLOAD_QUERIES]
        for engine in engines
    ]
    for engine in engines:  # build indexes outside the timed region
        node_index(engine.document)
    per_mode = {}
    for mode in ("scan", "auto"):
        with kernel_mode_forced(mode):
            total = 0.0
            for engine, plans in zip(engines, compiled):
                for plan, algorithm in plans:
                    total += time_query(engine, plan, algorithm, repeat=REPEAT)
            per_mode[mode] = total
    return per_mode["scan"], per_mode["auto"]


def main() -> int:
    usable_cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    documents = workload_documents()

    value_ok, value_cells = run_value_gate(documents)
    counters_ok, counter_detail = run_counter_gate()
    scan_seconds, auto_seconds = run_speedup_gate(documents)
    speedup = scan_seconds / auto_seconds if auto_seconds else float("inf")
    speedup_enforced = usable_cpus >= 2
    speedup_ok = speedup >= SPEEDUP_GATE

    report = ExperimentReport(
        "EXP-AXIS", "output-sensitive fused axis kernels vs O(|D|) scans"
    )
    sizes = ", ".join(str(len(document)) for document in documents)
    report.note(
        f"workload: {len(WORKLOAD_QUERIES)} selective queries x "
        f"{len(documents)} documents (|dom| = {sizes}); "
        f"best of {REPEAT}; host grants {usable_cpus} usable CPU(s)"
    )
    report.table(
        ["dispatch", "summed best (ms)", "speedup"],
        [
            ["scan (Definition-1 fallback forced)", scan_seconds * 1e3, 1.0],
            ["auto (indexed kernels + fallback)", auto_seconds * 1e3, speedup],
        ],
    )
    report.note()
    report.note(
        f"kernels: {counter_detail['fused']} fused / "
        f"{counter_detail['fallback']} fallback over "
        f"{counter_detail['dispatches']} counted dispatches; "
        f"{counter_detail['builds_delta']} index builds for "
        f"{counter_detail['documents']} fresh documents"
    )
    report.note(
        f"value gate:   indexed == scan on every cell ({value_cells} cells) — "
        + ("PASS" if value_ok else "FAIL")
    )
    report.note(
        "counter gate: builds/dispatch outcomes exact, kernels engaged — "
        + ("PASS" if counters_ok else "FAIL")
    )
    if speedup_enforced:
        report.note(
            f"speedup gate: auto over scan = {speedup:.2f}x "
            f"(need >= {SPEEDUP_GATE}x) — " + ("PASS" if speedup_ok else "FAIL")
        )
    else:
        report.note(
            f"speedup gate: SKIPPED — 1-CPU host (measured {speedup:.2f}x, "
            f"gate needs >= {SPEEDUP_GATE}x on >= 2-CPU hosts)"
        )
    report.finish()
    if not value_ok or not counters_ok:
        return 1
    if speedup_enforced and not speedup_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
