"""EXP-T13 — Theorem 13: Core XPath in O(|D|·|Q|) time.

Sweep |D| on balanced trees with a Core-family query (axes + node tests
+ and/or/not over paths). The dedicated evaluator performs O(|Q|) set
sweeps of O(|D|) each; the fitted time slope must be ~1, and the abstract
step count must not depend on |D| at all.
"""

from harness import ExperimentReport, loglog_slope, measure_counters, time_query

from repro.engine import XPathEngine
from repro.workloads.documents import balanced_tree
from repro.workloads.queries import core_family

SHAPES = ((4, 3), (5, 3), (6, 3), (7, 3))  # depth, fanout → ~40..1100 elements


def bench_core_linear_sweep(benchmark):
    benchmark.pedantic(_run_sweep, rounds=1, iterations=1)


def _run_sweep():
    query = core_family(4)
    report = ExperimentReport("EXP-T13", "Theorem 13 — Core XPath linear time")
    report.note(f"query: {query}")
    report.note("")
    sizes, times = [], []
    rows = []
    for depth, fanout in SHAPES:
        document = balanced_tree(depth=depth, fanout=fanout)
        engine = XPathEngine(document)
        compiled = engine.compile(query)
        assert compiled.is_core_xpath
        elapsed = time_query(engine, compiled, "corexpath", repeat=3)
        counters = measure_counters(engine, compiled, "corexpath")
        mc_time = time_query(engine, compiled, "mincontext", repeat=2)
        sizes.append(len(document.nodes))
        times.append(elapsed)
        rows.append(
            [
                len(document.nodes),
                f"{elapsed * 1000:.3f}",
                counters.get("corexpath_steps"),
                f"{mc_time * 1000:.3f}",
            ]
        )
    report.table(["|D|", "corexpath ms", "set sweeps", "minctx ms"], rows)
    slope = loglog_slope(sizes, times)
    report.note("")
    report.note(f"time slope: {slope:.2f} (theorem cap: 1)")
    report.note("set sweeps are |D|-independent (a function of |Q| alone).")
    report.finish()
    assert slope < 1.45
    sweeps = {row[2] for row in rows}
    assert len(sweeps) == 1, "step count must not depend on |D|"


def bench_corexpath_representative(benchmark):
    engine = XPathEngine(balanced_tree(depth=6, fanout=3))
    compiled = engine.compile(core_family(4))
    benchmark(lambda: engine.evaluate(compiled, algorithm="corexpath"))


def bench_optmincontext_on_core_query(benchmark):
    engine = XPathEngine(balanced_tree(depth=6, fanout=3))
    compiled = engine.compile(core_family(4))
    benchmark(lambda: engine.evaluate(compiled, algorithm="optmincontext"))
