"""EXP-MQO — batch-level multi-query optimization: the shared-step DAG.

The batch layer (:mod:`repro.service.batchplan`) unifies a batch's
common step prefixes into a DAG and evaluates each distinct
(prefix, document) node-set exactly once. This experiment runs a
deliberately prefix-heavy batch — one deep ``//book/chapter`` spine
shared by a dozen tails, over catalogs and a balanced tree — and it
compares ``share=True`` against ``share=False`` on fresh
services (no warm memos), so the measured difference is exactly the
work the DAG removes.

Four gates, three of them machine-independent:

* **value gate** — ``share=True`` values are byte-identical to
  ``share=False`` values, cell by cell;
* **counter gate** — the :class:`~repro.stats.BatchPlanStats`
  reconciliation identities hold exactly: every shared cell is a memo
  hit, a shared evaluation, or a fallback; ``steps_saved`` equals
  ``steps_independent - steps_shared`` and is nonnegative (sharing only
  ever removes work);
* **no-share gate** — ``share=False`` reproduces the independent
  per-cell loop exactly, per-batch cache stats included, and reports an
  empty ``batch_plan``;
* **speedup gate** — shared throughput >= 2x independent throughput on
  the prefix-heavy batch. The win is work removal, not parallelism, but
  wall-clock ratios on an oversubscribed 1-CPU host are still too noisy
  to enforce, so (like EXP-SHARD's gate) it is enforced only when the
  host grants >= 2 usable CPUs and reported as SKIPPED otherwise, with
  the measured ratio printed either way.

The script exits nonzero if any enforced gate fails. Run with::

    PYTHONPATH=src python benchmarks/bench_batchplan.py
"""

from __future__ import annotations

import os
import statistics
import sys
import time

from harness import ExperimentReport

from repro.service import QueryService
from repro.workloads.documents import balanced_tree, book_catalog

PASSES = 5
WARMUP_PASSES = 1
SPEEDUP_GATE = 2.0


def prefix_heavy_workload():
    """A dozen tails over one deep spine, plus an unsharable straggler.

    Every independent evaluation of a ``//book...`` query re-sweeps the
    whole document for the leading ``descendant-or-self`` step; the DAG
    materializes that spine (and the ``//book`` and ``//book/chapter``
    prefixes under it) once per document and runs only the cheap tails.
    The tails are deliberately Core-step-heavy: predicate work costs the
    same with and without sharing (it never touches a shared prefix), so
    predicate-laden batches are value/counter coverage for the *tests* —
    here they would only dilute the measured ratio without changing what
    the DAG removes.
    """
    documents = [
        book_catalog(books=80, chapters_per_book=6),
        book_catalog(books=50, chapters_per_book=5),
        balanced_tree(depth=5, fanout=3),
        book_catalog(books=25),
    ]
    queries = [
        "//book/title",
        "//book/authors",
        "//book/authors/author",
        "//book/price",
        "//book/ref",
        "//book/chapter",
        "//book/chapter/heading",
        "//book/chapter/pages",
        "//book/chapter/heading/text()",
        "//book/authors/author/text()",
        "//book/chapter[position() = 1]",
        "/descendant-or-self::node()/child::book/child::title",  # ≡ //book/title
        # An unsharable straggler: the DAG must leave it untouched.
        "count(/catalog/book)",
    ]
    return queries, documents


def _median_pass_seconds(run_pass) -> float:
    for _ in range(WARMUP_PASSES):
        run_pass()
    times = []
    for _ in range(PASSES):
        started = time.perf_counter()
        run_pass()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def _counters_reconcile(plan: dict) -> bool:
    """The BatchPlanStats identities, checked exactly."""
    if not plan:
        return False
    cells_split = (
        plan["cells"]
        == plan["memo_hits"] + plan["shared_evaluations"] + plan["fallback_cells"]
    )
    steps_identity = (
        plan["steps_saved"] == plan["steps_independent"] - plan["steps_shared"]
    )
    monotone = plan["fallback_cells"] > 0 or plan["steps_saved"] >= 0
    return cells_split and steps_identity and monotone


def _no_share_is_byte_identical(queries, documents, independent) -> bool:
    """share=False must equal a manual per-cell loop — values and the
    per-batch plan/result cache counters."""
    manual = QueryService()
    plans = [manual.plan(query) for query in queries]
    values = []
    for document in documents:
        session = manual.session(document)
        values.append([session.evaluate(plan, algorithm="auto") for plan in plans])
    if independent.values != values or independent.batch_plan != {}:
        return False
    lifetime = manual.cache_stats()
    for stats_name, merged in (
        ("plan_cache", independent.plan_stats),
        ("result_cache", independent.result_stats),
    ):
        for counter in ("hits", "misses"):
            if merged[counter] != lifetime[stats_name][counter]:
                return False
    return True


def main() -> int:
    queries, documents = prefix_heavy_workload()
    evaluations = len(queries) * len(documents)
    usable_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )

    shared = QueryService().evaluate_many(queries, documents)
    independent = QueryService().evaluate_many(queries, documents, share=False)

    value_gate = shared.values == independent.values
    counter_gate = _counters_reconcile(shared.batch_plan)
    no_share_gate = _no_share_is_byte_identical(queries, documents, independent)

    shared_seconds = _median_pass_seconds(
        lambda: QueryService().evaluate_many(queries, documents)
    )
    independent_seconds = _median_pass_seconds(
        lambda: QueryService().evaluate_many(queries, documents, share=False)
    )
    speedup = independent_seconds / shared_seconds
    speedup_enforced = usable_cpus >= 2
    speedup_ok = speedup >= SPEEDUP_GATE

    report = ExperimentReport(
        "EXP-MQO", "batch multi-query optimization (shared-step DAG vs independent)"
    )
    report.note(
        f"workload: {len(queries)} queries x {len(documents)} documents = "
        f"{evaluations} evaluations/pass (fresh service per pass, cold memos); "
        f"median of {PASSES} passes; host grants {usable_cpus} usable CPU(s)"
    )
    report.table(
        ["configuration", "median pass (ms)", "throughput (eval/s)", "vs independent"],
        [
            [
                "independent (--no-share)",
                independent_seconds * 1e3,
                evaluations / independent_seconds,
                1.0,
            ],
            [
                "shared-step DAG (share=True)",
                shared_seconds * 1e3,
                evaluations / shared_seconds,
                speedup,
            ],
        ],
    )
    report.note()
    plan = shared.batch_plan
    report.note(
        f"batch plan: prefixes={plan['prefix_nodes']} "
        f"shared plans={plan['shared_plans']}/{plan['sharable_plans']} "
        f"cells={plan['cells']} shared evals={plan['shared_evaluations']} "
        f"memo hits={plan['memo_hits']} fallbacks={plan['fallback_cells']}"
    )
    report.note(
        f"steps: independent={plan['steps_independent']} "
        f"shared={plan['steps_shared']} saved={plan['steps_saved']} "
        f"({100.0 * plan['steps_saved'] / max(1, plan['steps_independent']):.1f}% "
        "of the sharable step applications removed)"
    )
    report.note(
        "value gate:    share=True values byte-identical to share=False — "
        + ("PASS" if value_gate else "FAIL")
    )
    report.note(
        "counter gate:  cells == memo hits + shared evals + fallbacks; "
        "steps saved == independent - shared >= 0 — "
        + ("PASS" if counter_gate else "FAIL")
    )
    report.note(
        "no-share gate: share=False == manual per-cell loop (values + stats), "
        "batch_plan == {} — " + ("PASS" if no_share_gate else "FAIL")
    )
    if speedup_enforced:
        report.note(
            f"speedup gate:  shared over independent throughput = {speedup:.2f}x "
            f"(need >= {SPEEDUP_GATE}x) — " + ("PASS" if speedup_ok else "FAIL")
        )
    else:
        report.note(
            f"speedup gate:  SKIPPED — 1 usable CPU is too noisy to enforce a "
            f"wall-clock ratio (measured {speedup:.2f}x, gate needs >= "
            f"{SPEEDUP_GATE}x on >= 2 CPUs)"
        )
    report.finish()
    if not value_gate or not counter_gate or not no_share_gate:
        return 1
    if speedup_enforced and not speedup_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
