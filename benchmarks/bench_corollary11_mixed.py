"""EXP-X3 — Corollary 11: OPTMINCONTEXT meets the best bound per
subexpression, even inside a query that is not wholly in any fragment.

Workload: a full-XPath query (a string(nset) predicate — Restriction 1
violation — keeps it out of the Wadler fragment) that *contains* a
Wadler-eligible subexpression ``following-sibling::* = 100``.
OPTMINCONTEXT evaluates the eligible part bottom-up in linear space;
plain MINCONTEXT materializes the inner sibling relation, which is
quadratic on a flat line of siblings.

Measured: peak cells of OPTMINCONTEXT vs plain MINCONTEXT vs E↓, sweeping
|D|. Expected: OPTMINCONTEXT grows strictly slower than both.
"""

from harness import ExperimentReport, loglog_slope, measure_counters

from repro.engine import XPathEngine
from repro.workloads.documents import numbered_line

#: string(nset) violates Restriction 1, keeping the query out of the
#: Wadler fragment — but it is space-cheap, so the measurable difference
#: between OPTMINCONTEXT and plain MINCONTEXT is exactly the embedded
#: Wadler subexpression `following-sibling::* = 100`: bottom-up linear
#: vs a materialized dom × 2^dom sibling relation.
QUERY = (
    "/child::*/child::*[following-sibling::* = 100 or position() = 1]"
    "[string(self::node()) != 'x']"
)


def bench_mixed_query_sweep(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


def _run():
    report = ExperimentReport(
        "EXP-X3", "Corollary 11 — mixed query: best bound per subexpression"
    )
    report.note(f"query: {QUERY}")
    sizes, opt_cells, plain_cells = [], [], []
    rows = []
    for width in (20, 40, 80, 160):
        document = numbered_line(width)
        engine = XPathEngine(document)
        compiled = engine.compile(QUERY)
        assert not compiled.is_extended_wadler
        assert compiled.bottomup_path_count >= 1
        opt = measure_counters(engine, compiled, "optmincontext").peak_table_cells
        plain = measure_counters(engine, compiled, "mincontext").peak_table_cells
        down = measure_counters(engine, compiled, "topdown").peak_table_cells
        sizes.append(len(document.nodes))
        opt_cells.append(max(1, opt))
        plain_cells.append(max(1, plain))
        rows.append([len(document.nodes), opt, plain, down])
    report.table(
        ["|D|", "optminctx cells", "plain minctx cells", "topdown cells"], rows
    )
    opt_slope = loglog_slope(sizes, opt_cells)
    plain_slope = loglog_slope(sizes, plain_cells)
    report.note("")
    report.note(
        f"space degree: OPTMINCONTEXT {opt_slope:.2f} vs plain MINCONTEXT {plain_slope:.2f}"
        " — the Wadler subexpression is evaluated in linear space (Corollary 11)"
    )
    report.finish()
    assert opt_slope < plain_slope - 0.3
    assert opt_cells[-1] * 2 < plain_cells[-1]


def bench_optmincontext_mixed(benchmark):
    engine = XPathEngine(numbered_line(80))
    compiled = engine.compile(QUERY)
    benchmark(lambda: engine.evaluate(compiled, algorithm="optmincontext"))


def bench_mincontext_mixed(benchmark):
    engine = XPathEngine(numbered_line(80))
    compiled = engine.compile(QUERY)
    benchmark(lambda: engine.evaluate(compiled, algorithm="mincontext"))
