"""Aggregate all experiment reports into one document.

Run after the benchmark suite:

    pytest benchmarks/ --benchmark-only
    python benchmarks/summarize.py               # prints + writes results/ALL.txt
    python benchmarks/summarize.py --plan-cache  # just the plan-cache hit rates
    python benchmarks/summarize.py --sharded     # just the sharding gates/speedup
    python benchmarks/summarize.py --async-batch # just the async/streaming gates
    python benchmarks/summarize.py --specialize  # just the specialization gates
    python benchmarks/summarize.py --axes        # just the fused-kernel gates
    python benchmarks/summarize.py --snapshot    # just the snapshot gates
    python benchmarks/summarize.py --batchplan   # just the multi-query gates
    python benchmarks/summarize.py --lazy        # just the lazy-decode gates
    python benchmarks/summarize.py --vector      # just the vector-program gates
    python benchmarks/summarize.py --serve       # just the serving-daemon gates
"""

from __future__ import annotations

import argparse
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

ORDER = [
    "exp_f4", "exp_f5", "exp_e9",
    "exp_x1", "exp_t7a", "exp_t7b", "exp_t10", "exp_t13",
    "exp_x2", "exp_x3", "exp_a1", "exp_a2",
    "exp_svc", "exp_shard", "exp_mqo", "exp_async", "exp_spec", "exp_axis", "exp_snap",
    "exp_lazy", "exp_vec", "exp_serve",
]


def plan_cache_lines() -> list[str]:
    """The cache hit-rate and speedup lines from the EXP-SVC report
    (written by bench_plan_cache.py)."""
    path = RESULTS_DIR / "exp_svc.txt"
    if not path.exists():
        return []
    markers = ("hit rate:", "speedup = ")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def sharded_batch_lines() -> list[str]:
    """The gate and throughput lines from the EXP-SHARD report (written
    by bench_sharded_batch.py)."""
    path = RESULTS_DIR / "exp_shard.txt"
    if not path.exists():
        return []
    markers = ("gate:", "vs 1 worker", "workers (", "1 worker (", "shards:")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def async_batch_lines() -> list[str]:
    """The gate and latency lines from the EXP-ASYNC report (written by
    bench_async_batch.py)."""
    path = RESULTS_DIR / "exp_async.txt"
    if not path.exists():
        return []
    markers = ("gate:", "barrier", "stream:")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def specialize_lines() -> list[str]:
    """The gate, throughput, and choice-matrix lines from the EXP-SPEC
    report (written by bench_specialize.py)."""
    path = RESULTS_DIR / "exp_spec.txt"
    if not path.exists():
        return []
    markers = ("gate:", "speedup", "configuration", "dispatch", "specialized", "->")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def axes_lines() -> list[str]:
    """The gate, speedup, and kernel-counter lines from the EXP-AXIS
    report (written by bench_axes.py)."""
    path = RESULTS_DIR / "exp_axis.txt"
    if not path.exists():
        return []
    markers = ("gate:", "speedup", "kernels:", "dispatch", "workload:")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def snapshot_lines() -> list[str]:
    """The gate, speedup, and adoption-counter lines from the EXP-SNAP
    report (written by bench_snapshot.py)."""
    path = RESULTS_DIR / "exp_snap.txt"
    if not path.exists():
        return []
    markers = ("gate:", "speedup", "adoption", "cold-start", "dispatch", "workload:")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def batchplan_lines() -> list[str]:
    """The gate, speedup, and DAG-counter lines from the EXP-MQO report
    (written by bench_batchplan.py)."""
    path = RESULTS_DIR / "exp_mqo.txt"
    if not path.exists():
        return []
    markers = ("gate:", "vs independent", "batch plan:", "steps:", "workload:")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def lazy_lines() -> list[str]:
    """The gate, cold-start, peak-memory, and counter lines from the
    EXP-LAZY report (written by bench_lazy.py)."""
    path = RESULTS_DIR / "exp_lazy.txt"
    if not path.exists():
        return []
    markers = ("gate:", "decode (", "peak memory", "counters:", "workload:")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def vector_lines() -> list[str]:
    """The gate, speedup, and counter lines from the EXP-VEC report
    (written by bench_vector.py)."""
    path = RESULTS_DIR / "exp_vec.txt"
    if not path.exists():
        return []
    markers = ("gate:", "speedup", "dispatch", "workload:", "counter probe")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def serve_lines() -> list[str]:
    """The gate, percentile, and counter lines from the EXP-SERVE report
    (written by bench_serve.py)."""
    path = RESULTS_DIR / "exp_serve.txt"
    if not path.exists():
        return []
    markers = ("gate:", "counters:", "workload:", "p99")
    return [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if any(marker in line for marker in markers)
    ]


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--plan-cache",
        action="store_true",
        help="print only the plan-cache hit rates and speedups (EXP-SVC)",
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help="print only the sharded-batch gates and throughputs (EXP-SHARD)",
    )
    parser.add_argument(
        "--async-batch",
        action="store_true",
        help="print only the async/streaming gates and latencies (EXP-ASYNC)",
    )
    parser.add_argument(
        "--specialize",
        action="store_true",
        help="print only the specialization gates and choice matrix (EXP-SPEC)",
    )
    parser.add_argument(
        "--axes",
        action="store_true",
        help="print only the fused-axis-kernel gates and speedup (EXP-AXIS)",
    )
    parser.add_argument(
        "--snapshot",
        action="store_true",
        help="print only the binary-snapshot gates and speedups (EXP-SNAP)",
    )
    parser.add_argument(
        "--batchplan",
        action="store_true",
        help="print only the multi-query sharing gates and speedup (EXP-MQO)",
    )
    parser.add_argument(
        "--lazy",
        action="store_true",
        help="print only the lazy-decode gates, peak memory, and cold-start "
        "speedup (EXP-LAZY)",
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help="print only the vector-program gates and speedups (EXP-VEC)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="print only the serving-daemon gates: p99, reconciliation, "
        "admission, drain (EXP-SERVE)",
    )
    args = parser.parse_args(argv)
    if args.plan_cache:
        lines = plan_cache_lines()
        if not lines:
            raise SystemExit(
                "no plan-cache results yet — run: python benchmarks/bench_plan_cache.py"
            )
        print("\n".join(lines))
        return
    if args.sharded:
        lines = sharded_batch_lines()
        if not lines:
            raise SystemExit(
                "no sharded-batch results yet — run: "
                "python benchmarks/bench_sharded_batch.py"
            )
        print("\n".join(lines))
        return
    if args.async_batch:
        lines = async_batch_lines()
        if not lines:
            raise SystemExit(
                "no async-batch results yet — run: "
                "python benchmarks/bench_async_batch.py"
            )
        print("\n".join(lines))
        return
    if args.specialize:
        lines = specialize_lines()
        if not lines:
            raise SystemExit(
                "no specialization results yet — run: "
                "python benchmarks/bench_specialize.py"
            )
        print("\n".join(lines))
        return
    if args.axes:
        lines = axes_lines()
        if not lines:
            raise SystemExit(
                "no fused-kernel results yet — run: "
                "python benchmarks/bench_axes.py"
            )
        print("\n".join(lines))
        return
    if args.snapshot:
        lines = snapshot_lines()
        if not lines:
            raise SystemExit(
                "no snapshot results yet — run: "
                "python benchmarks/bench_snapshot.py"
            )
        print("\n".join(lines))
        return
    if args.batchplan:
        lines = batchplan_lines()
        if not lines:
            raise SystemExit(
                "no multi-query results yet — run: "
                "python benchmarks/bench_batchplan.py"
            )
        print("\n".join(lines))
        return
    if args.lazy:
        lines = lazy_lines()
        if not lines:
            raise SystemExit(
                "no lazy-decode results yet — run: "
                "python benchmarks/bench_lazy.py"
            )
        print("\n".join(lines))
        return
    if args.vector:
        lines = vector_lines()
        if not lines:
            raise SystemExit(
                "no vector-program results yet — run: "
                "python benchmarks/bench_vector.py"
            )
        print("\n".join(lines))
        return
    if args.serve:
        lines = serve_lines()
        if not lines:
            raise SystemExit(
                "no serving-daemon results yet — run: "
                "python benchmarks/bench_serve.py"
            )
        print("\n".join(lines))
        return
    if not RESULTS_DIR.exists():
        raise SystemExit("no results yet — run: pytest benchmarks/ --benchmark-only")
    sections = []
    seen = set()
    for stem in ORDER:
        path = RESULTS_DIR / f"{stem}.txt"
        if path.exists():
            sections.append(path.read_text(encoding="utf-8"))
            seen.add(path.name)
    for path in sorted(RESULTS_DIR.glob("*.txt")):
        if path.name not in seen and path.name != "ALL.txt":
            sections.append(path.read_text(encoding="utf-8"))
    combined = "\n".join(sections)
    (RESULTS_DIR / "ALL.txt").write_text(combined, encoding="utf-8")
    print(combined)


if __name__ == "__main__":
    main()
