"""EXP-X1 — the exponential baseline (the experiment motivating the paper).

[11] measured XALAN, XT, and IE6 taking time exponential in |Q|; the
introduction of the ICDE'03 paper builds on that finding. We regenerate
the curve with our from-scratch naive engine (per-context re-evaluation,
duplicate-bearing lists) against the ``parent/child`` doubling family on
the two-``b`` document, and show the polynomial algorithms flat on the
same sweep.

Expected shape: naive work doubles with every appended pair
(~×4 per two pairs); MINCONTEXT/OPTMINCONTEXT grow linearly in |Q|.
"""

from harness import ExperimentReport, doubling_ratios, measure_counters, time_query

from repro.engine import XPathEngine
from repro.workloads.documents import doubling_document
from repro.workloads.queries import doubling_query

PAIR_COUNTS = (2, 4, 6, 8, 10, 12)


def bench_exponential_blowup_sweep(benchmark):
    benchmark.pedantic(_run_sweep, rounds=1, iterations=1)


def _run_sweep():
    engine = XPathEngine(doubling_document())
    report = ExperimentReport(
        "EXP-X1", "naive engine is exponential in |Q|; MINCONTEXT is not"
    )
    rows = []
    naive_ops = []
    for pairs in PAIR_COUNTS:
        query = doubling_query(pairs)
        naive = measure_counters(engine, query, "naive")
        mincontext = measure_counters(engine, query, "mincontext")
        optmin = measure_counters(engine, query, "optmincontext")
        naive_time = time_query(engine, query, "naive")
        min_time = time_query(engine, query, "mincontext")
        naive_ops.append(naive.get("naive_step_contexts"))
        rows.append(
            [
                pairs,
                len(query),
                naive.get("naive_step_contexts"),
                f"{naive_time * 1000:.2f}",
                mincontext.get("mincontext_contexts_evaluated")
                + mincontext.get("axis_set_calls"),
                f"{min_time * 1000:.2f}",
                optmin.get("mincontext_contexts_evaluated")
                + optmin.get("axis_set_calls"),
            ]
        )
    report.table(
        ["pairs", "|Q| chars", "naive ops", "naive ms", "minctx ops", "minctx ms", "optminctx ops"],
        rows,
    )
    ratios = doubling_ratios(naive_ops)
    report.note("")
    report.note(f"naive ops growth per +2 pairs: {[f'{r:.1f}' for r in ratios]} (≈4 = 2^2)")
    report.note("polynomial algorithms grow linearly with the step count.")
    report.finish()
    # Shape assertions: exponential vs linear.
    for ratio in ratios[1:]:
        assert ratio > 3.0, "naive engine did not blow up as expected"


def bench_naive_on_doubling_query(benchmark):
    engine = XPathEngine(doubling_document())
    query = engine.compile(doubling_query(10))
    benchmark(lambda: engine.evaluate(query, algorithm="naive"))


def bench_mincontext_on_doubling_query(benchmark):
    engine = XPathEngine(doubling_document())
    query = engine.compile(doubling_query(10))
    benchmark(lambda: engine.evaluate(query, algorithm="mincontext"))


def bench_optmincontext_on_doubling_query(benchmark):
    engine = XPathEngine(doubling_document())
    query = engine.compile(doubling_query(10))
    benchmark(lambda: engine.evaluate(query, algorithm="optmincontext"))
