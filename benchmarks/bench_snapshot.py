"""EXP-SNAP — binary NodeIndex snapshots vs serialize-and-re-parse.

The PR 6 payoff claim: a persisted flat-column snapshot (format v2,
``repro.xml.snapshot``) rebuilds a document *and* its adopted NodeIndex
cheaper than shipping XML text and re-parsing it — the cold-start path
process workers and the DocumentStore both take — without changing a
single result byte relative to the in-memory flat or boxed-list indexes.

Four gates, two of them machine-independent:

* **identity gate** — for every workload query × document, the value is
  byte-identical across four paths: forced Definition-1 ``scan`` on the
  original document, ``auto`` dispatch over the packed flat index,
  ``auto`` over a boxed-list (``packed=False``) index, and ``auto`` on a
  document round-tripped through ``encode_snapshot``/``decode_snapshot``
  (node sets compared by pre-order position, scalars by value).
* **adoption gate** — each decode adopts its rebuilt index into the
  per-document cache: ``index_adoptions`` moves by exactly one per
  decode, ``index_builds`` by zero, and a subsequent ``node_index`` call
  on the decoded document is a cache hit (still zero builds).
* **cold-start gate** — best-of-N seconds for (decode snapshot + first
  query) vs (re-parse serialized XML + first query), summed over the
  workload documents. Snapshot load must be ≥ COLD_START_GATE× faster.
  Host-gated like EXP-AXIS: enforced on ≥ 2-CPU hosts, reported
  otherwise.
* **raw-speed gate** — the EXP-AXIS selective workload on *snapshot-
  loaded* documents: ``auto`` dispatch (riding the adopted flat index)
  must stay ≥ SPEEDUP_GATE× faster than forced ``scan``, i.e. the
  memoryview columns lose nothing to the boxed-list kernels they
  replaced. Host-gated the same way.

The script exits nonzero if any enforced gate fails. Run with::

    PYTHONPATH=src python benchmarks/bench_snapshot.py
"""

from __future__ import annotations

import os
import sys
import time

from bench_axes import WORKLOAD_QUERIES, workload_documents
from harness import ExperimentReport, time_query

from repro import stats
from repro.axes.axes import kernel_mode_forced
from repro.engine import XPathEngine
from repro.xml import index as index_module
from repro.xml.index import NodeIndex, node_index
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize
from repro.xml.snapshot import decode_snapshot, encode_snapshot

REPEAT = 5
SPEEDUP_GATE = 2.0
COLD_START_GATE = 1.3


def _canon(document, value):
    """A document-independent canonical form: node sets become pre-order
    position tuples (documents rebuilt from snapshots have different Node
    objects but identical numbering), scalars stay themselves."""
    if isinstance(value, list):
        return tuple(node.pre for node in value)
    return value


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------


def run_identity_gate(documents) -> tuple[bool, int]:
    """scan == flat auto == list auto == snapshot auto, per query cell."""
    cells = 0
    ok = True
    for document in documents:
        engine = XPathEngine(document)
        rebuilt = decode_snapshot(encode_snapshot(document))
        rebuilt_engine = XPathEngine(rebuilt)
        for query, algorithm in WORKLOAD_QUERIES:
            compiled = engine.compile(query)
            with kernel_mode_forced("scan"):
                baseline = _canon(
                    document, engine.evaluate(compiled, algorithm=algorithm)
                )
            with kernel_mode_forced("auto"):
                flat = _canon(
                    document, engine.evaluate(compiled, algorithm=algorithm)
                )
            # Boxed-list reference representation: seed the cache with a
            # packed=False index, evaluate, then restore the flat one.
            index_module._INDEX_CACHE[document] = NodeIndex(document, packed=False)
            try:
                with kernel_mode_forced("auto"):
                    boxed = _canon(
                        document, engine.evaluate(compiled, algorithm=algorithm)
                    )
            finally:
                index_module._INDEX_CACHE.pop(document, None)
            with kernel_mode_forced("auto"):
                snapped = _canon(
                    rebuilt,
                    rebuilt_engine.evaluate(
                        rebuilt_engine.compile(query), algorithm=algorithm
                    ),
                )
            if not (baseline == flat == boxed == snapped):
                ok = False
            cells += 1
    return ok, cells


def run_adoption_gate(documents) -> tuple[bool, dict]:
    """Exact accounting: decode adopts (never builds); node_index on a
    decoded document is a cache hit."""
    blobs = [encode_snapshot(document) for document in documents]
    before = stats.axis_kernel_stats.snapshot()
    rebuilt = [decode_snapshot(blob) for blob in blobs]
    after_decode = stats.axis_kernel_stats.snapshot()
    for document in rebuilt:
        node_index(document)  # must hit the adopted index
    after_reuse = stats.axis_kernel_stats.snapshot()
    adoptions = after_decode["index_adoptions"] - before["index_adoptions"]
    decode_builds = after_decode["index_builds"] - before["index_builds"]
    reuse_builds = after_reuse["index_builds"] - after_decode["index_builds"]
    detail = {
        "documents": len(documents),
        "adoptions": adoptions,
        "decode_builds": decode_builds,
        "reuse_builds": reuse_builds,
    }
    ok = (
        adoptions == len(documents) and decode_builds == 0 and reuse_builds == 0
    )
    return ok, detail


def run_cold_start_gate(documents):
    """Best-of-N seconds to get a *queryable* document from cold state:
    snapshot decode vs re-parse of the serialized XML, each followed by
    the same first query (so index amortization counts for both sides)."""
    first_query, first_algorithm = WORKLOAD_QUERIES[0]
    payloads = [
        (serialize(document), encode_snapshot(document)) for document in documents
    ]
    parse_total = 0.0
    decode_total = 0.0
    for xml_text, blob in payloads:
        best_parse = best_decode = float("inf")
        for _ in range(REPEAT):
            started = time.perf_counter()
            reparsed = parse_document(xml_text)
            engine = XPathEngine(reparsed)
            engine.evaluate(engine.compile(first_query), algorithm=first_algorithm)
            best_parse = min(best_parse, time.perf_counter() - started)

            started = time.perf_counter()
            rebuilt = decode_snapshot(blob)
            engine = XPathEngine(rebuilt)
            engine.evaluate(engine.compile(first_query), algorithm=first_algorithm)
            best_decode = min(best_decode, time.perf_counter() - started)
        parse_total += best_parse
        decode_total += best_decode
    return parse_total, decode_total


def run_raw_speed_gate(documents):
    """The EXP-AXIS speedup measurement, but on snapshot-loaded documents
    whose flat index arrived by adoption rather than a local build."""
    rebuilt = [decode_snapshot(encode_snapshot(document)) for document in documents]
    engines = [XPathEngine(document) for document in rebuilt]
    compiled = [
        [(engine.compile(query), algorithm) for query, algorithm in WORKLOAD_QUERIES]
        for engine in engines
    ]
    per_mode = {}
    for mode in ("scan", "auto"):
        with kernel_mode_forced(mode):
            total = 0.0
            for engine, plans in zip(engines, compiled):
                for plan, algorithm in plans:
                    total += time_query(engine, plan, algorithm, repeat=REPEAT)
            per_mode[mode] = total
    return per_mode["scan"], per_mode["auto"]


def main() -> int:
    usable_cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    documents = workload_documents()

    identity_ok, identity_cells = run_identity_gate(documents)
    adoption_ok, adoption_detail = run_adoption_gate(documents)
    parse_seconds, decode_seconds = run_cold_start_gate(documents)
    cold_ratio = parse_seconds / decode_seconds if decode_seconds else float("inf")
    scan_seconds, auto_seconds = run_raw_speed_gate(documents)
    speedup = scan_seconds / auto_seconds if auto_seconds else float("inf")
    hosted = usable_cpus >= 2
    cold_ok = cold_ratio >= COLD_START_GATE
    speedup_ok = speedup >= SPEEDUP_GATE

    report = ExperimentReport(
        "EXP-SNAP", "binary NodeIndex snapshots vs serialize-and-re-parse"
    )
    sizes = ", ".join(str(len(document)) for document in documents)
    blob_bytes = sum(len(encode_snapshot(document)) for document in documents)
    report.note(
        f"workload: {len(WORKLOAD_QUERIES)} selective queries x "
        f"{len(documents)} documents (|dom| = {sizes}; snapshots total "
        f"{blob_bytes} bytes); best of {REPEAT}; host grants "
        f"{usable_cpus} usable CPU(s)"
    )
    report.table(
        ["cold-start path", "summed best (ms)", "speedup"],
        [
            ["re-parse serialized XML + first query", parse_seconds * 1e3, 1.0],
            ["decode snapshot + first query", decode_seconds * 1e3, cold_ratio],
        ],
    )
    report.table(
        ["dispatch (snapshot-loaded docs)", "summed best (ms)", "speedup"],
        [
            ["scan (Definition-1 fallback forced)", scan_seconds * 1e3, 1.0],
            ["auto (adopted flat index)", auto_seconds * 1e3, speedup],
        ],
    )
    report.note()
    report.note(
        f"adoption: {adoption_detail['adoptions']} adoptions / "
        f"{adoption_detail['decode_builds']} builds decoding "
        f"{adoption_detail['documents']} snapshots; "
        f"{adoption_detail['reuse_builds']} builds on node_index reuse"
    )
    report.note(
        f"identity gate:   scan == flat == boxed-list == snapshot on every "
        f"query cell ({identity_cells} cells) — "
        + ("PASS" if identity_ok else "FAIL")
    )
    report.note(
        "adoption gate:   decode adopts exactly once, never builds — "
        + ("PASS" if adoption_ok else "FAIL")
    )
    if hosted:
        report.note(
            f"cold-start gate: snapshot over re-parse = {cold_ratio:.2f}x "
            f"(need >= {COLD_START_GATE}x) — " + ("PASS" if cold_ok else "FAIL")
        )
        report.note(
            f"raw-speed gate:  auto over scan = {speedup:.2f}x "
            f"(need >= {SPEEDUP_GATE}x) — " + ("PASS" if speedup_ok else "FAIL")
        )
    else:
        report.note(
            f"cold-start gate: SKIPPED — 1-CPU host (measured {cold_ratio:.2f}x, "
            f"gate needs >= {COLD_START_GATE}x on >= 2-CPU hosts)"
        )
        report.note(
            f"raw-speed gate:  SKIPPED — 1-CPU host (measured {speedup:.2f}x, "
            f"gate needs >= {SPEEDUP_GATE}x on >= 2-CPU hosts)"
        )
    report.finish()
    if not identity_ok or not adoption_ok:
        return 1
    if hosted and (not cold_ok or not speedup_ok):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
