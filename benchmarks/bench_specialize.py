"""EXP-SPEC — per-document physical specialization vs static dispatch.

The two-stage compiler's payoff claim (ISSUE 4): on a mixed serving
workload — small and large documents, Core and non-Core queries — the
cost-driven specializer picks a cheaper evaluator per (query, document)
than the static fragment dispatch (Core → corexpath, else →
optmincontext), without changing a single result byte.

The workload deliberately mixes the regimes the cost model separates
(re-measured after PR 5's sorted-array Core rewrite):

* small/mid catalogs with selective non-positional predicates, where
  MINCONTEXT beats OPTMINCONTEXT's whole-document bottom-up pass — the
  specializer's main remaining switch;
* Core chains, where the fused-kernel Core sweep is now the cheapest
  evaluator at every size (the specializer must *keep* the static Core
  → corexpath choice, no longer switch it);
* a sibling line, where positional-sibling loops × high fanout make
  OPTMINCONTEXT the right call (another keep);
* position-heavy and aggregate queries, where the candidates tie and
  any choice is fine.

Three gates, two of them machine-independent:

* **value gate** — specialized ``auto`` results are byte-identical to
  the static path's *and* to a fresh per-document engine's, for every
  (query, document) cell;
* **stats gate** — the plan cache counts exactly one lookup per distinct
  query, and the specializer memo exactly one lookup per ``auto``
  resolution (misses = distinct (plan, profile) pairs) — the two-stage
  split must not lose or invent a counter;
* **speedup gate** — specialized end-to-end batch time >= 1.2x the
  static dispatch's. Like EXP-SHARD's speedup gate it is host-gated:
  enforced when the host grants >= 2 usable CPUs (CI runners), reported
  but not enforced on 1-CPU containers, where shared-host noise
  dominates single-run timings. The measured ratio prints either way.

The script exits nonzero if any enforced gate fails. Run with::

    PYTHONPATH=src python benchmarks/bench_specialize.py
"""

from __future__ import annotations

import os
import sys
import time

from harness import ExperimentReport

from repro.engine import XPathEngine
from repro.service import QueryService
from repro.workloads.documents import (
    balanced_tree,
    book_catalog,
    numbered_line,
)
from repro.workloads.queries import (
    core_family,
    position_heavy_query,
    wadler_family,
)

PASSES = 5
WARMUP_PASSES = 1
SPEEDUP_GATE = 1.2


def mixed_workload():
    """Small + large documents × Core + non-Core query families."""
    documents = [
        book_catalog(books=3),
        book_catalog(books=5),
        book_catalog(books=8),
        book_catalog(books=15),
        book_catalog(books=20),
        balanced_tree(depth=4, fanout=4),
        book_catalog(books=30, chapters_per_book=3),
        book_catalog(books=45, chapters_per_book=4),
        numbered_line(120),  # fanout 120: the keep-OPTMINCONTEXT regime
    ]
    queries = [
        core_family(4),                     # Core XPath
        core_family(6),                     # Core XPath
        core_family(8),                     # Core XPath, deeper
        "//book[price > 20]/title",         # selective, no position
        "//b/c[. > 20]",                    # selective, no position
        wadler_family(2),                   # positional sibling loops
        position_heavy_query(2),            # positional, non-sibling
        "count(//*)",                       # aggregate, candidates tie
    ]
    return queries, documents


def _best_batch_seconds(specialize: bool, queries, documents) -> float:
    """Best-of-passes end-to-end time of a fresh-service batch (cold
    result memos: every cell is a real evaluation; plan compiles cost
    the same on both sides). Best-of-N, like ``harness.time_query``,
    because both sides at their least-interfered-with pass is the
    noise-robust estimate of the intrinsic cost ratio on shared hosts."""

    def run_pass():
        # share=False: this experiment isolates the specialization
        # stage; batch prefix sharing (EXP-MQO's subject) would fold
        # its own work removal into the measured ratio.
        QueryService(specialize=specialize).evaluate_many(
            queries, documents, share=False
        )

    for _ in range(WARMUP_PASSES):
        run_pass()
    times = []
    for _ in range(PASSES):
        started = time.perf_counter()
        run_pass()
        times.append(time.perf_counter() - started)
    return min(times)


def main() -> int:
    queries, documents = mixed_workload()
    evaluations = len(queries) * len(documents)
    usable_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )

    # ------------------------------------------------------------------
    # Value gate: specialized == static == fresh engine, cell for cell.
    specialized_service = QueryService()
    static_service = QueryService(specialize=False)
    # share=False keeps the one-specializer-lookup-per-cell contract the
    # stats gate pins (the batch DAG routes shared cells through prefix
    # plans instead; its own counters are gated in EXP-MQO).
    specialized = specialized_service.evaluate_many(queries, documents, share=False)
    static = static_service.evaluate_many(queries, documents, share=False)
    value_gate = specialized.values == static.values
    if value_gate:
        for doc_index, document in enumerate(documents):
            engine = XPathEngine(document)
            for query_index, query in enumerate(queries):
                if specialized.value(doc_index, query_index) != engine.evaluate(query):
                    value_gate = False

    # ------------------------------------------------------------------
    # Stats gate: exact counters through the two-stage split.
    plan_stats = specialized_service.plans.stats
    spec_stats = specialized_service.specializer.stats
    distinct_queries = len(set(queries))
    profiles = {
        specialized_service.session(document).profile.key for document in documents
    }
    stats_gate = (
        plan_stats.hits + plan_stats.misses == len(queries)
        and plan_stats.misses == distinct_queries
        # One memo lookup per auto resolution: len(queries) static
        # resolutions happen outside the memo; each (query, document)
        # cell resolves through it exactly once.
        and spec_stats.hits + spec_stats.misses == evaluations
        and spec_stats.misses == distinct_queries * len(profiles)
        and "specialize_cache" not in static_service.cache_stats()
    )

    # ------------------------------------------------------------------
    # Speedup gate: end-to-end batch time, fresh service per pass.
    static_seconds = _best_batch_seconds(False, queries, documents)
    specialized_seconds = _best_batch_seconds(True, queries, documents)
    speedup = static_seconds / specialized_seconds
    speedup_enforced = usable_cpus >= 2
    speedup_ok = speedup >= SPEEDUP_GATE

    # ------------------------------------------------------------------
    report = ExperimentReport(
        "EXP-SPEC", "per-document specialization vs static auto dispatch"
    )
    report.note(
        f"workload: {len(queries)} queries x {len(documents)} documents = "
        f"{evaluations} evaluations/pass ({distinct_queries} distinct queries, "
        f"{len(profiles)} distinct profiles); best of {PASSES} passes; "
        f"host grants {usable_cpus} usable CPU(s)"
    )
    report.table(
        ["configuration", "best batch (ms)", "throughput (eval/s)", "speedup"],
        [
            [
                "static dispatch (--no-specialize)",
                static_seconds * 1e3,
                evaluations / static_seconds,
                1.0,
            ],
            [
                "specialized (cost-driven, per document)",
                specialized_seconds * 1e3,
                evaluations / specialized_seconds,
                speedup,
            ],
        ],
    )
    choices = {}
    for document in documents:
        session = specialized_service.session(document)
        for query in queries:
            plan = specialized_service.plan(query)
            chosen = session.resolve(plan)
            static_choice = plan.best_algorithm()
            key = (static_choice, chosen)
            choices[key] = choices.get(key, 0) + 1
    report.note()
    report.note("static -> specialized choice matrix (cells):")
    for (static_choice, chosen), count in sorted(choices.items()):
        marker = "kept" if static_choice == chosen else "switched"
        report.note(f"  {static_choice:13s} -> {chosen:13s} {count:3d}  ({marker})")
    report.note()
    report.note(
        "value gate:   specialized == static == fresh engine, every cell — "
        + ("PASS" if value_gate else "FAIL")
    )
    report.note(
        "stats gate:   plan cache + specializer memo counters exact — "
        + ("PASS" if stats_gate else "FAIL")
    )
    if speedup_enforced:
        report.note(
            f"speedup gate: specialized over static = {speedup:.2f}x "
            f"(need >= {SPEEDUP_GATE}x) — " + ("PASS" if speedup_ok else "FAIL")
        )
    else:
        report.note(
            f"speedup gate: SKIPPED — 1-CPU host (measured {speedup:.2f}x, "
            f"gate needs >= {SPEEDUP_GATE}x on >= 2-CPU hosts)"
        )
    report.finish()
    if not value_gate or not stats_gate:
        return 1
    if speedup_enforced and not speedup_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
