"""Shim for legacy editable installs (environments without the wheel
package, where `pip install -e .` needs a setup.py to fall back on)."""

from setuptools import setup

setup()
