"""A tiny query service over a persistent document store.

Demonstrates the paper's §7 outlook ("XPath processors that query XML
documents stored in a database") end to end with this library's
substrate: documents are ingested once into a :class:`DocumentStore`
file; a service loads them on demand, keeps per-document engines with
compiled-query caches, answers point queries, and uses the engine's
``table()`` API (the context-value-table principle as a feature) for
bulk per-node classification.

Run:  python examples/document_store_service.py [store.json]
"""

import sys
import tempfile
import pathlib

from repro import XPathEngine
from repro.xml.statistics import document_statistics
from repro.xml.store import DocumentStore
from repro.workloads.documents import book_catalog, running_example_document


class QueryService:
    """Loads documents from a store lazily; caches engines and queries."""

    def __init__(self, store: DocumentStore):
        self.store = store
        self._engines: dict[str, XPathEngine] = {}

    def engine(self, name: str) -> XPathEngine:
        if name not in self._engines:
            document = self.store.load(name)
            document.validate()  # integrity check after deserialization
            self._engines[name] = XPathEngine(document, optimize=True)
        return self._engines[name]

    def query(self, name: str, xpath: str):
        return self.engine(name).evaluate(xpath)

    def classify_nodes(self, name: str, predicate_query: str):
        """Bulk classification: predicate value for *every* node at once
        via the context-value-table API — one shared evaluation instead
        of |dom| independent ones."""
        engine = self.engine(name)
        return engine.table(predicate_query)


def main() -> None:
    if len(sys.argv) > 1:
        store_path = pathlib.Path(sys.argv[1])
    else:
        store_path = pathlib.Path(tempfile.mkdtemp()) / "documents.json"
    store = DocumentStore(store_path)

    # --- ingestion ----------------------------------------------------
    print(f"store: {store_path}")
    store.save("paper-example", running_example_document())
    store.save("catalog", book_catalog(books=20))
    print("ingested:", ", ".join(store.names()))

    service = QueryService(store)

    # --- shape statistics ----------------------------------------------
    for name in store.names():
        stats = document_statistics(service.engine(name).document)
        print(f"\n[{name}] {stats.summary()}")

    # --- point queries ---------------------------------------------------
    print("\npoint queries:")
    result = service.query("paper-example", "//d[. = 100]")
    print("  paper-example //d[. = 100] ->", [n.xml_id for n in result])
    result = service.query("catalog", "count(//book[@lang = 'de'])")
    print("  catalog german books ->", result)
    result = service.query("catalog", "//book[price > 80]/title")
    print("  catalog expensive ->", [n.string_value for n in result])

    # --- bulk classification via the table API ----------------------------
    print("\nbulk classification (one context-value table, all nodes):")
    table = service.classify_nodes("catalog", "boolean(self::book[price > 80])")
    expensive = [node for node, is_hit in table.items() if is_hit]
    print(
        "  nodes classified:", len(table),
        "| expensive books:", sorted(n.xml_id for n in expensive),
    )

    # --- persistence across restarts -----------------------------------
    reopened = DocumentStore(store_path)
    engine = XPathEngine(reopened.load("paper-example"))
    answer = engine.evaluate(
        "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"
    )
    print("\nafter reopen, the paper's running example still answers:",
          sorted(n.xml_id for n in answer))


if __name__ == "__main__":
    main()
