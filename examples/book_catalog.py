"""Domain scenario: querying a bibliography catalog.

XPath's motivating use case (and the running theme of the XML papers the
ICDE'03 paper cites) is addressing into document-centric data: catalogs,
citations, nested sections. This example builds a realistic synthetic
catalog with the workload generator and answers the kinds of questions a
downstream application would ask — showing how the engine's fragment
classification routes each query to the cheapest algorithm.

Run:  python examples/book_catalog.py [books]
"""

import sys
import time

from repro import XPathEngine
from repro import stats
from repro.workloads.documents import book_catalog

QUESTIONS = [
    ("Titles of all books",
     "//book/title"),
    ("Books published after 2005",
     "//book[@year > 2005]/title"),
    ("German-language books (xml-style lang attribute)",
     "//book[@lang = 'de']/title"),
    ("Books with more than one author",
     "//book[count(authors/author) > 1]/title"),
    ("The most expensive price",
     "//price[not(//price > .)]"),
    ("Second chapter headings",
     "//chapter[position() = 2]/heading"),
    ("Last chapter of each book",
     "//book/chapter[position() = last()]/heading"),
    ("Books whose final chapter is long (> 30 pages)",
     "//book[chapter[position() = last()]/pages > 30]/title"),
    ("Books cited by some other book (id dereference)",
     "id(//ref)/title"),
    ("Books citing a book that costs more than they do",
     "//book[id(ref)/price > price]/title"),
    ("Chapters directly after a 30+ page chapter",
     "//chapter[preceding-sibling::chapter[1]/pages > 30]/heading"),
]


def main() -> None:
    books = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    document = book_catalog(books=books)
    engine = XPathEngine(document)
    print(f"catalog: {books} books, |dom| = {len(document.nodes)} nodes\n")

    for description, query in QUESTIONS:
        compiled = engine.compile(query)
        started = time.perf_counter()
        with stats.collect() as collected:
            result = engine.evaluate(compiled)
        elapsed_ms = (time.perf_counter() - started) * 1000
        if isinstance(result, list):
            rendered = [node.string_value for node in result[:4]]
            if len(result) > 4:
                rendered.append(f"... ({len(result)} total)")
        else:
            rendered = result
        fragment = (
            "core" if compiled.is_core_xpath
            else "wadler" if compiled.is_extended_wadler
            else "full"
        )
        print(f"Q: {description}")
        print(f"   {query}")
        print(
            f"   fragment={fragment:<6} algorithm={compiled.best_algorithm():<13} "
            f"time={elapsed_ms:6.2f} ms  contexts={collected.get('mincontext_contexts_evaluated')}"
        )
        print(f"   -> {rendered}\n")

    # Differential sanity: every algorithm answers the catalog questions
    # identically (the naive engine included — these queries are small).
    print("cross-checking all algorithms on all questions ...", end=" ")
    for _, query in QUESTIONS:
        compiled = engine.compile(query)
        reference = engine.evaluate(compiled, algorithm="topdown")
        for algorithm in ("naive", "mincontext", "optmincontext"):
            assert engine.evaluate(compiled, algorithm=algorithm) == reference, (
                query, algorithm,
            )
    print("all agree ✓")


if __name__ == "__main__":
    main()
