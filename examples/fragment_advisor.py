"""Fragment advisor: why your query is slow, and how to fix it.

The paper's practical payoff (its Section 4 discussion) is that a handful
of XPath features — data-extracting string functions, nset-to-nset
comparisons, count/sum, context-dependent id() arguments — are what force
an engine off the linear-space bottom-up strategy. This tool takes
queries, reports their fragment classification with the *specific*
restriction violated, and demonstrates the cost difference with live
operation counts on a synthetic document.

Run:  python examples/fragment_advisor.py ["query" ...]
"""

import sys

from repro import XPathEngine, stats
from repro.workloads.documents import balanced_tree

DEFAULT_QUERIES = [
    # Core XPath: linear time (Theorem 13).
    "//a/b[c]",
    # Extended Wadler: linear space, quadratic time (Theorem 10).
    "//b[position() != last()]",
    "//b[c = 100]",
    # Full XPath: MINCONTEXT bounds (Theorem 7) — each violates one
    # restriction.
    "//b[string(c) = '100']",          # Restriction 1: string(nset)
    "//b[c = following::c]",           # Restriction 2: nset RelOp nset
    "//b[count(c) > 1]",               # Restriction 2: count
    "//b[c = position()]",             # Restriction 2: context-dependent scalar
]


def classify(engine, query):
    compiled = engine.compile(query)
    if compiled.is_core_xpath:
        return compiled, "Core XPath", "O(|D|·|Q|) time (Theorem 13)"
    if compiled.is_extended_wadler:
        return compiled, "Extended Wadler", "O(|D|²·|Q|²) time, O(|D|·|Q|²) space (Theorem 10)"
    return compiled, "Full XPath 1.0", "O(|D|⁴·|Q|²) time, O(|D|²·|Q|²) space (Theorem 7)"


def main() -> None:
    queries = sys.argv[1:] or DEFAULT_QUERIES
    document = balanced_tree(depth=5, fanout=3)
    engine = XPathEngine(document)
    print(f"measuring on a balanced tree, |dom| = {len(document.nodes)}\n")

    for query in queries:
        compiled, fragment, bound = classify(engine, query)
        print(f"query: {query}")
        print(f"  fragment:  {fragment}")
        print(f"  bound:     {bound}")
        if not compiled.is_core_xpath and compiled.core_violation:
            print(f"  not Core:  {compiled.core_violation}")
        if not compiled.is_extended_wadler and compiled.wadler_violation:
            print(f"  not Wadler: {compiled.wadler_violation}")
        print(f"  bottom-up paths OPTMINCONTEXT precomputes: {compiled.bottomup_path_count}")

        # Show the cost difference between the chosen algorithm and the
        # generic top-down baseline, in abstract operations.
        with stats.collect() as chosen:
            engine.evaluate(compiled)  # auto dispatch
        with stats.collect() as baseline:
            engine.evaluate(compiled, algorithm="topdown")
        print(
            f"  cost:      auto({compiled.best_algorithm()}): "
            f"peak cells={chosen.peak_table_cells}, "
            f"axis calls={chosen.get('axis_set_calls') + chosen.get('axis_single_calls')}"
        )
        print(
            f"             topdown baseline: "
            f"peak cells={baseline.peak_table_cells}, "
            f"contexts={baseline.get('topdown_contexts')}"
        )
        print()


if __name__ == "__main__":
    main()
