"""Replay of the paper's worked examples (Figures 2-6, Examples 3-5 and 9).

Run:  python examples/paper_walkthrough.py

Prints, in order:
  1. the Figure 2 sample document and its dom;
  2. the Figure 3 parse tree of query e with static types and Relev(N)
     (Example 3);
  3. the Figure 4 context-value tables produced by top-down evaluation;
  4. the Figure 5 relevant-context-restricted tables MINCONTEXT stores
     (note the corrected x24 row — see EXPERIMENTS.md);
  5. Example 4's outermost node sets;
  6. Example 9's OPTMINCONTEXT run with the backward-propagation steps.
"""

from repro.core.bottomup_paths import eval_bottomup_path, propagate_path_backwards
from repro.core.context import Context
from repro.core.mincontext import MinContextEvaluator
from repro.core.topdown import TopDownEvaluator
from repro.engine import XPathEngine
from repro.workloads.documents import RUNNING_EXAMPLE_XML, running_example_document
from repro.workloads.queries import example9_query, running_example_query
from repro.xpath.fragments import find_bottomup_paths
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance
from repro.xpath.unparse import dump_tree, unparse


def label(node):
    return f"x{node.xml_id}" if node.xml_id else (node.kind.value)


def node_set(nodes):
    return "{" + ", ".join(label(n) for n in sorted(nodes, key=lambda n: n.pre)) + "}"


def banner(text):
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    document = running_example_document()
    engine = XPathEngine(document)

    banner("Figure 2: the sample XML document")
    print(RUNNING_EXAMPLE_XML)
    print("dom (elements):", ", ".join(f"x{e.xml_id}" for e in document.elements()))

    banner("Figure 3 / Example 3: parse tree of e with Relev(N)")
    query_e = running_example_query()
    print("e ≡", query_e)
    ast = normalize(parse_xpath(query_e))
    compute_relevance(ast)
    print(dump_tree(ast))

    banner("Figure 4: context-value tables (top-down evaluation E↓)")
    evaluator = TopDownEvaluator(document)
    tables = evaluator.trace_tables(ast, Context(document.root, 1, 1))
    predicate = ast.steps[1].predicates[0]
    named = {
        "N3 (or)": predicate,
        "N4 (position() > last()*0.5)": predicate.left,
        "N5 (self::* = 100)": predicate.right,
    }
    for name, node in named.items():
        print(f"\n  table({name}):  [{unparse(node)}]")
        print("     cn   cp  cs   res")
        for context, value in tables[node.uid]:
            rendered = "true" if value is True else "false" if value is False else value
            print(
                f"    {label(context.node):>4}  {context.position:>3} {context.size:>3}   {rendered}"
            )

    banner("Figure 5: MINCONTEXT's tables, restricted to the relevant context")
    mc = MinContextEvaluator(document)
    result = mc.evaluate(ast, Context(document.root, 1, 1))
    n5 = predicate.right
    n8, n9 = n5.left, n5.right
    print("\n  table(N5: self::* = 100)  — keyed by cn only")
    for key, value in sorted(mc.tables[n5.uid].items(), key=lambda kv: kv[0][0].pre):
        print(f"    {label(key[0]):>4}  {'true' if value else 'false'}")
    print("  (x24 is true — Figure 5 prints 'false', contradicting Figure 4's")
    print("   own row ⟨x24, 8, 8⟩; strval(x24) = '100'. See EXPERIMENTS.md.)")
    print("\n  table(N8: self::*)")
    for key, value in sorted(mc.tables[n8.uid].items(), key=lambda kv: kv[0][0].pre):
        print(f"    {label(key[0]):>4}  {node_set(value)}")
    print("\n  table(N9: 100) — a single row, no context at all")
    print("    ", mc.tables[n9.uid])
    print("\n  Nodes N3, N4, N6, N7 are never tabulated: MINCONTEXT loops")
    print("  over (cp, cs) instead (Example 5).")

    banner("Example 4: the outermost location path as plain node sets")
    mc2 = MinContextEvaluator(document)
    first = mc2._eval_step_from_set(ast.steps[0], {document.root})
    print("X after /descendant::*      =", node_set(first))
    second = mc2._eval_step_from_set(ast.steps[1], first)
    print("Y after descendant::*[...]  =", node_set(second))
    print("final result of e           =", node_set(result))

    banner("Example 9: OPTMINCONTEXT on Q (Figure 6)")
    query_q = example9_query()
    print("Q ≡", query_q)
    ast_q = normalize(parse_xpath(query_q))
    compute_relevance(ast_q)
    print("\nParse tree:")
    print(dump_tree(ast_q))

    mc3 = MinContextEvaluator(document)
    bottomup = find_bottomup_paths(ast_q)
    print(f"\nBottom-up location paths found (innermost first): {len(bottomup)}")
    for node in bottomup:
        print("  •", unparse(node))

    # ρ = preceding-sibling::*/preceding::* compared with 100.
    rho = bottomup[0]
    rho_path = rho.left if hasattr(rho.left, "steps") else rho.right
    initial = {n for n in document.nodes if n.is_element and n.string_value == "100"}
    print("\nBackward propagation for ρ = 100:")
    print("  initial Y (strval = 100):        ", node_set(initial))
    after_preceding = propagate_path_backwards(
        mc3, _tail(rho_path, 1), initial
    )
    after_preceding_elements = {n for n in after_preceding if n.is_element}
    print("  after preceding⁻¹ = following:   ", node_set(after_preceding_elements))
    print("    (plus the text/attribute nodes in the same region; the")
    print("     paper's dom lists only the elements)")
    full = propagate_path_backwards(mc3, rho_path, initial)
    print("  after preceding-sibling⁻¹:       ", node_set(full))

    for node in bottomup:
        eval_bottomup_path(mc3, node)
    boolean_pi = bottomup[1]
    X = {
        key[0]
        for key, value in mc3.tables[boolean_pi.uid].items()
        if value and key[0].is_element
    }
    print("\nboolean(π) true exactly at X =", node_set(X))

    final = mc3.evaluate(ast_q, Context(document.root, 1, 1))
    print("final result of Q            =", node_set(final))
    assert sorted(n.xml_id for n in final) == ["11", "12", "13", "14", "22"]
    print("\n✓ matches the paper: {x11, x12, x13, x14, x22}")


def _tail(path, keep_last):
    """A copy of `path` keeping only the last `keep_last` steps (for
    showing intermediate propagation stages)."""
    from repro.xpath.ast import Path

    clone = Path(absolute=False, steps=list(path.steps[-keep_last:]))
    clone.value_type = "nset"
    clone.relev = path.relev
    for step in clone.steps:
        step.relev = frozenset({"cn"})
    return clone


if __name__ == "__main__":
    main()
