"""Quickstart: parse a document, run queries, inspect the analysis.

Run:  python examples/quickstart.py
"""

from repro import XPathEngine, parse_document

DOCUMENT = """
<library>
  <book id="b1" year="1999">
    <title>Data on the Web</title>
    <author>Abiteboul</author><author>Buneman</author><author>Suciu</author>
    <price>45</price>
  </book>
  <book id="b2" year="2002">
    <title>XML Processing</title>
    <author>Example</author>
    <price>30</price>
  </book>
  <book id="b3" year="2003">
    <title>XPath Evaluation</title>
    <author>Gottlob</author><author>Koch</author><author>Pichler</author>
    <price>25</price>
    <cites>b1 b2</cites>
  </book>
</library>
"""


def main() -> None:
    # 1. Parse. The from-scratch parser checks well-formedness and builds
    #    the paper's data model (document order, string values, id map).
    document = parse_document(DOCUMENT, keep_whitespace_text=False)
    engine = XPathEngine(document)

    # 2. Node-set queries return document-ordered lists of Node objects.
    print("All titles:")
    for node in engine.evaluate("//book/title"):
        print("   -", node.string_value)

    # 3. Scalars come back as float/str/bool.
    print("Books:", engine.evaluate("count(//book)"))
    print("Average price:", engine.evaluate("sum(//price) div count(//price)"))

    # 4. Abbreviated and unabbreviated syntax both work; predicates may
    #    use positions, values, and nested paths.
    cheap = engine.evaluate("//book[price < 40][position() = last()]")
    print("Last cheap book:", cheap[0].attribute_value("id"))

    many_authors = engine.evaluate("//book[count(author) > 2]/title")
    print("Well-staffed:", [n.string_value for n in many_authors])

    # 5. id() follows the paper's Section 4 treatment (an id pseudo-axis).
    cited = engine.evaluate("id(//cites)/title")
    print("Cited by b3:", [n.string_value for n in cited])

    # 6. compile() exposes the paper's static analyses: every query is
    #    classified into Core XPath (Definition 12) and the Extended
    #    Wadler Fragment (Restrictions 1-3), which drives algorithm
    #    selection ('auto').
    for query in ("//book/title", "//book[price < 40]", "//book[count(author) > 2]"):
        compiled = engine.compile(query)
        print(
            f"{query!r}: core={compiled.is_core_xpath} "
            f"wadler={compiled.is_extended_wadler} -> {compiled.best_algorithm()}"
        )

    # 7. Any of the five algorithms can be forced; they always agree.
    query = "//book[price > 28]/@year"
    for algorithm in ("naive", "topdown", "mincontext", "optmincontext"):
        values = [a.value for a in engine.evaluate(query, algorithm=algorithm)]
        print(f"{algorithm:>14}: {values}")


if __name__ == "__main__":
    main()
