"""Exception hierarchy for the repro XPath engine.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. The split mirrors the pipeline stages:
XML parsing, XPath parsing, static analysis/normalization, and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLSyntaxError(ReproError):
    """Raised when an XML document is not well-formed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DocumentFrozenError(ReproError):
    """Raised when mutating a document after it has been finalized.

    Evaluation relies on the pre/post order numbering computed by
    :meth:`repro.xml.document.Document.finalize`; mutating afterwards would
    silently corrupt every axis computation, so it is a hard error.
    """


class DocumentNotFinalizedError(ReproError):
    """Raised when evaluating against a document that was never finalized."""


class XPathSyntaxError(ReproError):
    """Raised when an XPath query string cannot be parsed.

    Carries the 0-based character ``offset`` into the query when known.
    """

    def __init__(self, message: str, offset: int | None = None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)


class XPathTypeError(ReproError):
    """Raised by static analysis when an expression is ill-typed.

    XPath 1.0 gives every expression a static type; operations such as
    location steps applied to a number operand have no defined semantics
    and are rejected before evaluation.
    """


class UnknownFunctionError(XPathTypeError):
    """Raised when a query calls a function not in the core library."""

    def __init__(self, name: str):
        self.function_name = name
        super().__init__(f"unknown XPath function: {name}()")


class WrongArityError(XPathTypeError):
    """Raised when a core library function is called with a bad arity."""

    def __init__(self, name: str, got: int, expected: str):
        self.function_name = name
        super().__init__(f"function {name}() called with {got} argument(s), expected {expected}")


class UnboundVariableError(ReproError):
    """Raised when the query references a variable with no binding.

    Per Section 2.2 of the paper, variables are replaced by the constant
    value of the input variable binding before evaluation; a missing
    binding is therefore a static error.
    """

    def __init__(self, name: str):
        self.variable_name = name
        super().__init__(f"unbound XPath variable: ${name}")


class EvaluationError(ReproError):
    """Raised for errors that only manifest during evaluation."""


class DocumentStoreError(ReproError):
    """Raised by :mod:`repro.xml.store` and :mod:`repro.xml.snapshot` for
    missing documents, format problems, or corrupt files.

    Lives here (rather than in the store module) so the binary snapshot
    codec can raise it without importing the catalog layer that sits
    above it; :mod:`repro.xml.store` re-exports it for compatibility.
    """


class FragmentViolationError(ReproError):
    """Raised when an algorithm is forced onto a query outside its fragment.

    For example, requesting ``algorithm='corexpath'`` for a query that uses
    ``position()`` (not in Core XPath, Definition 12 of the paper).
    """


class UnknownAlgorithmError(ReproError, ValueError):
    """Raised when evaluation is requested with an algorithm name that is
    not in :data:`repro.engine.ALGORITHMS`.

    Also subclasses :class:`ValueError` so callers that predate the typed
    hierarchy keep working. Carries the offending ``algorithm`` and the
    valid ``choices``.
    """

    def __init__(self, algorithm: str, choices):
        self.algorithm = algorithm
        self.choices = tuple(choices)
        # args mirror the constructor signature so pickling/copying works
        # (worker pools re-raise exceptions across process boundaries).
        super().__init__(algorithm, self.choices)

    def __str__(self) -> str:
        return f"unknown algorithm {self.algorithm!r}; choose from {self.choices}"
