"""Exception hierarchy for the repro XPath engine.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. The split mirrors the pipeline stages:
XML parsing, XPath parsing, static analysis/normalization, and evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLSyntaxError(ReproError):
    """Raised when an XML document is not well-formed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DocumentFrozenError(ReproError):
    """Raised when mutating a document after it has been finalized.

    Evaluation relies on the pre/post order numbering computed by
    :meth:`repro.xml.document.Document.finalize`; mutating afterwards would
    silently corrupt every axis computation, so it is a hard error.
    """


class DocumentNotFinalizedError(ReproError):
    """Raised when evaluating against a document that was never finalized."""


class XPathSyntaxError(ReproError):
    """Raised when an XPath query string cannot be parsed.

    Carries the 0-based character ``offset`` into the query when known.
    """

    def __init__(self, message: str, offset: int | None = None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)


class XPathTypeError(ReproError):
    """Raised by static analysis when an expression is ill-typed.

    XPath 1.0 gives every expression a static type; operations such as
    location steps applied to a number operand have no defined semantics
    and are rejected before evaluation.
    """


class UnknownFunctionError(XPathTypeError):
    """Raised when a query calls a function not in the core library."""

    def __init__(self, name: str):
        self.function_name = name
        super().__init__(f"unknown XPath function: {name}()")


class WrongArityError(XPathTypeError):
    """Raised when a core library function is called with a bad arity."""

    def __init__(self, name: str, got: int, expected: str):
        self.function_name = name
        super().__init__(f"function {name}() called with {got} argument(s), expected {expected}")


class UnboundVariableError(ReproError):
    """Raised when the query references a variable with no binding.

    Per Section 2.2 of the paper, variables are replaced by the constant
    value of the input variable binding before evaluation; a missing
    binding is therefore a static error.
    """

    def __init__(self, name: str):
        self.variable_name = name
        super().__init__(f"unbound XPath variable: ${name}")


class EvaluationError(ReproError):
    """Raised for errors that only manifest during evaluation."""


class DocumentStoreError(ReproError):
    """Raised by :mod:`repro.xml.store` and :mod:`repro.xml.snapshot` for
    missing documents, format problems, or corrupt files.

    Lives here (rather than in the store module) so the binary snapshot
    codec can raise it without importing the catalog layer that sits
    above it; :mod:`repro.xml.store` re-exports it for compatibility.
    """


class SnapshotCorruptError(DocumentStoreError):
    """Raised when a binary snapshot blob (or a :class:`~repro.xml.store.
    DocumentStore` sidecar) fails to decode: truncation, bad magic or
    version, checksum mismatch, column lengths that disagree, or
    structurally illegal node tables.

    Carries the byte ``offset`` into the blob at which decoding stopped
    when known, so a corrupt sidecar report points at the damage instead
    of leaking ``struct``/checksum internals.
    """

    def __init__(self, message: str, offset: int | None = None):
        self.offset = offset
        if offset is not None:
            message = f"{message} (at byte {offset})"
        super().__init__(message)


class FragmentViolationError(ReproError):
    """Raised when an algorithm is forced onto a query outside its fragment.

    For example, requesting ``algorithm='corexpath'`` for a query that uses
    ``position()`` (not in Core XPath, Definition 12 of the paper).
    """


class UnknownAlgorithmError(ReproError, ValueError):
    """Raised when evaluation is requested with an algorithm name that is
    not in :data:`repro.engine.ALGORITHMS`.

    Also subclasses :class:`ValueError` so callers that predate the typed
    hierarchy keep working. Carries the offending ``algorithm`` and the
    valid ``choices``.
    """

    def __init__(self, algorithm: str, choices):
        self.algorithm = algorithm
        self.choices = tuple(choices)
        # args mirror the constructor signature so pickling/copying works
        # (worker pools re-raise exceptions across process boundaries).
        super().__init__(algorithm, self.choices)

    def __str__(self) -> str:
        return f"unknown algorithm {self.algorithm!r}; choose from {self.choices}"


# ----------------------------------------------------------------------
# Serving layer (repro.serve)
# ----------------------------------------------------------------------


class ServeError(ReproError):
    """Base class for serving-layer failures (:mod:`repro.serve`)."""


class ProtocolError(ServeError):
    """Raised for malformed protocol frames or transport failures: a
    line that is not a JSON object, an oversized frame, or a connection
    that dropped mid-exchange."""


class OverloadError(ServeError):
    """Raised when admission control refuses a request.

    ``retry_after`` is the server's backoff hint in seconds — set when
    retrying can help (queue pressure), ``None`` when it cannot (the
    priced cost exceeds the request's own deadline, so the same request
    would be refused again).
    """

    def __init__(self, message: str, retry_after: float | None = None):
        self.retry_after = retry_after
        super().__init__(message)


class RateLimitedError(OverloadError):
    """Raised when a client's token-bucket query rate is exhausted.
    ``retry_after`` is the time until the next token."""


class QuotaExceededError(ServeError):
    """Raised when a per-client quota (registered bytes, registered
    documents, or in-flight queries) would be exceeded."""

    def __init__(self, message: str, retry_after: float | None = None):
        self.retry_after = retry_after
        super().__init__(message)


class DeadlineExceededError(ServeError):
    """Raised when a query's deadline expired before evaluation finished.

    For batches, ``completed``/``total`` count the result cells that did
    arrive before the deadline (the partial results are surfaced, never
    dropped silently).
    """

    def __init__(
        self,
        message: str,
        elapsed: float | None = None,
        completed: int | None = None,
        total: int | None = None,
    ):
        self.elapsed = elapsed
        self.completed = completed
        self.total = total
        super().__init__(message)


class RemoteError(ServeError):
    """A server-reported error relayed by the client library, carrying
    the server's stable protocol ``code`` (see :data:`ERROR_CODES`) for
    errors that have no richer client-side class."""

    def __init__(self, code: str, message: str):
        self.protocol_code = code
        super().__init__(f"[{code}] {message}")


# ----------------------------------------------------------------------
# Stable protocol error codes
# ----------------------------------------------------------------------

#: Most-specific-first mapping from exception class to the stable wire
#: code the serving protocol reports (and the CLI keys exit codes on).
#: Subclasses must precede their bases — :func:`error_code` takes the
#: first match — and the table ends at :class:`ReproError`, so every
#: library error maps to *some* code.
ERROR_CODES = (
    (XPathSyntaxError, "QUERY_SYNTAX"),
    (UnknownFunctionError, "UNKNOWN_FUNCTION"),
    (WrongArityError, "WRONG_ARITY"),
    (XPathTypeError, "QUERY_TYPE"),
    (XMLSyntaxError, "XML_SYNTAX"),
    (DocumentFrozenError, "DOCUMENT_FROZEN"),
    (DocumentNotFinalizedError, "DOCUMENT_NOT_FINALIZED"),
    (UnboundVariableError, "UNBOUND_VARIABLE"),
    (EvaluationError, "EVALUATION"),
    (SnapshotCorruptError, "SNAPSHOT_CORRUPT"),
    (DocumentStoreError, "DOCUMENT_STORE"),
    (FragmentViolationError, "FRAGMENT_VIOLATION"),
    (UnknownAlgorithmError, "UNKNOWN_ALGORITHM"),
    (DeadlineExceededError, "DEADLINE"),
    (RateLimitedError, "RATE_LIMITED"),
    (OverloadError, "OVERLOAD"),
    (QuotaExceededError, "QUOTA"),
    (ProtocolError, "PROTOCOL"),
    (ServeError, "SERVE"),
    (ReproError, "ERROR"),
)

#: Codes the daemon emits that have no 1:1 client-side exception class
#: (they describe request-shape problems, not library failures).
EXTRA_PROTOCOL_CODES = frozenset(
    {"UNKNOWN_DOCUMENT", "UNKNOWN_VERB", "SHUTTING_DOWN", "FRAME_TOO_LARGE", "INTERNAL"}
)

#: Every stable code the protocol can put on the wire.
PROTOCOL_CODES = frozenset(code for _, code in ERROR_CODES) | EXTRA_PROTOCOL_CODES


def error_code(error: ReproError) -> str:
    """The stable protocol code for a library error.

    A relayed :class:`RemoteError` keeps the server's original code;
    everything else takes the first (most-specific) match in
    :data:`ERROR_CODES`.
    """
    code = getattr(error, "protocol_code", None)
    if code is not None:
        return code
    for error_class, code in ERROR_CODES:
        if isinstance(error, error_class):
            return code
    return "ERROR"
