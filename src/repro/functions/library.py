"""Core library registry: signatures + implementations.

Each function has a :class:`Signature` describing parameter types (one of
``nset num str bool object``), optional/variadic tails, the return type,
and whether the zero-argument form defaults to the context node. The
normalizer uses signatures to insert explicit conversions; evaluators call
:func:`apply_function` with already-evaluated argument values.

``position()`` and ``last()`` are *not* dispatched here — they are
context-component accessors handled specially by every evaluator (their
``Relev`` is ``{'cp'}``/``{'cs'}``, Section 3.1). They still get
signatures so arity checking is uniform.

``lang()`` is the one function that needs the context *node* in addition
to its argument; evaluators pass it via ``context_node``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import UnknownFunctionError, WrongArityError
from repro.values.coerce import to_boolean, to_number_value, to_string_value
from repro.values.numbers import (
    to_number,
    xpath_ceiling,
    xpath_floor,
    xpath_round,
)
from repro.xml.document import Document, Node


@dataclass(frozen=True)
class Signature:
    """Static description of one core-library function."""

    name: str
    params: tuple[str, ...]
    returns: str
    #: Number of trailing params that may be omitted.
    optional: int = 0
    #: Last parameter may repeat (concat).
    variadic: bool = False
    #: Zero-arg call means "apply to the context node" (string(), name(), ...).
    defaults_to_context: bool = False
    #: Needs the context node at runtime even with all args present (lang()).
    context_node_dependent: bool = False

    def check_arity(self, count: int) -> None:
        minimum = len(self.params) - self.optional
        if self.defaults_to_context:
            minimum = 0
        if self.variadic:
            if count < len(self.params):
                raise WrongArityError(self.name, count, f"at least {len(self.params)}")
            return
        if count < minimum or count > len(self.params):
            if minimum == len(self.params):
                expected = str(len(self.params))
            else:
                expected = f"{minimum}..{len(self.params)}"
            raise WrongArityError(self.name, count, expected)


def _sig(
    name: str,
    params: tuple[str, ...],
    returns: str,
    optional: int = 0,
    variadic: bool = False,
    defaults_to_context: bool = False,
    context_node_dependent: bool = False,
) -> Signature:
    return Signature(
        name, params, returns, optional, variadic, defaults_to_context, context_node_dependent
    )


FUNCTION_LIBRARY: dict[str, Signature] = {
    sig.name: sig
    for sig in (
        # --- node-set functions (§4.1) ---
        _sig("last", (), "num"),
        _sig("position", (), "num"),
        _sig("count", ("nset",), "num"),
        _sig("id", ("object",), "nset"),
        _sig("local-name", ("nset",), "str", defaults_to_context=True),
        _sig("namespace-uri", ("nset",), "str", defaults_to_context=True),
        _sig("name", ("nset",), "str", defaults_to_context=True),
        # --- string functions (§4.2) ---
        _sig("string", ("object",), "str", defaults_to_context=True),
        _sig("concat", ("str", "str"), "str", variadic=True),
        _sig("starts-with", ("str", "str"), "bool"),
        _sig("contains", ("str", "str"), "bool"),
        _sig("substring-before", ("str", "str"), "str"),
        _sig("substring-after", ("str", "str"), "str"),
        _sig("substring", ("str", "num", "num"), "str", optional=1),
        _sig("string-length", ("str",), "num", defaults_to_context=True),
        _sig("normalize-space", ("str",), "str", defaults_to_context=True),
        _sig("translate", ("str", "str", "str"), "str"),
        # --- boolean functions (§4.3) ---
        _sig("boolean", ("object",), "bool"),
        _sig("not", ("bool",), "bool"),
        _sig("true", (), "bool"),
        _sig("false", (), "bool"),
        _sig("lang", ("str",), "bool", context_node_dependent=True),
        # --- number functions (§4.4) ---
        _sig("number", ("object",), "num", defaults_to_context=True),
        _sig("sum", ("nset",), "num"),
        _sig("floor", ("num",), "num"),
        _sig("ceiling", ("num",), "num"),
        _sig("round", ("num",), "num"),
    )
}


def signature_for(name: str) -> Signature:
    """Look up a signature; unknown names raise
    :class:`repro.errors.UnknownFunctionError`."""
    signature = FUNCTION_LIBRARY.get(name)
    if signature is None:
        raise UnknownFunctionError(name)
    return signature


# ----------------------------------------------------------------------
# Implementations
# ----------------------------------------------------------------------


def _first_node(nodes) -> Node | None:
    best = None
    for node in nodes:
        if best is None or node.pre < best.pre:
            best = node
    return best


def _fn_count(document: Document, args, context_node):
    return float(len(args[0]))


def _fn_sum(document: Document, args, context_node):
    # Figure 1: Σ_{n∈S} to_number(strval(n)); an unparsable value makes
    # the whole sum NaN (IEEE addition).
    total = 0.0
    for node in args[0]:
        total += to_number(node.string_value)
    return total


def _fn_id(document: Document, args, context_node):
    value = args[0]
    # Figure 1 gives both rows: id(nset) unions deref_ids over the nodes'
    # string values; id(scalar) derefs the string conversion. (The nset
    # row normally disappears at normalize time via the Section 4 rewrite
    # to the id pseudo-axis, but the function stays correct standalone.)
    if isinstance(value, (set, frozenset, list, tuple)):
        result: set[Node] = set()
        for node in value:
            result.update(document.deref_ids(node.string_value))
        return result
    return document.deref_ids(to_string_value(value, _scalar_type(value)))


def _scalar_type(value) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, float):
        return "num"
    if isinstance(value, str):
        return "str"
    raise TypeError(f"not an XPath scalar: {value!r}")


def _fn_local_name(document: Document, args, context_node):
    node = _first_node(args[0])
    if node is None or node.name is None:
        return ""
    return node.name.rpartition(":")[2]


def _fn_namespace_uri(document: Document, args, context_node):
    # Namespaces are out of scope (as in the paper); every node's URI is "".
    return ""


def _fn_name(document: Document, args, context_node):
    node = _first_node(args[0])
    if node is None or node.name is None:
        return ""
    return node.name


def _fn_string(document: Document, args, context_node):
    value = args[0]
    if isinstance(value, (set, frozenset, list, tuple)):
        return to_string_value(value, "nset")
    return to_string_value(value, _scalar_type(value))


def _fn_concat(document: Document, args, context_node):
    return "".join(args)


def _fn_starts_with(document: Document, args, context_node):
    return args[0].startswith(args[1])


def _fn_contains(document: Document, args, context_node):
    return args[1] in args[0]


def _fn_substring_before(document: Document, args, context_node):
    before, separator, _ = args[0].partition(args[1])
    return before if separator else ""


def _fn_substring_after(document: Document, args, context_node):
    _, separator, after = args[0].partition(args[1])
    return after if separator else ""


def _fn_substring(document: Document, args, context_node):
    """W3C §4.2 substring with the notorious rounding/NaN edge cases.

    Positions are 1-based; the selected characters are those at positions
    p with round(start) <= p < round(start) + round(length).
    """
    source = args[0]
    start = xpath_round(args[1])
    if math.isnan(start):
        return ""
    if len(args) >= 3:
        length = xpath_round(args[2])
        if math.isnan(length):
            return ""
        end = start + length  # may be ±inf
    else:
        end = math.inf
    result: list[str] = []
    for index, char in enumerate(source, start=1):
        if start <= index < end:
            result.append(char)
    return "".join(result)


def _fn_string_length(document: Document, args, context_node):
    return float(len(args[0]))


def _fn_normalize_space(document: Document, args, context_node):
    return " ".join(args[0].split())


def _fn_translate(document: Document, args, context_node):
    source, from_chars, to_chars = args
    mapping: dict[str, str | None] = {}
    for index, char in enumerate(from_chars):
        if char not in mapping:
            mapping[char] = to_chars[index] if index < len(to_chars) else None
    result: list[str] = []
    for char in source:
        if char in mapping:
            replacement = mapping[char]
            if replacement is not None:
                result.append(replacement)
        else:
            result.append(char)
    return "".join(result)


def _fn_boolean(document: Document, args, context_node):
    value = args[0]
    if isinstance(value, (set, frozenset, list, tuple)):
        return to_boolean(value, "nset")
    return to_boolean(value, _scalar_type(value))


def _fn_not(document: Document, args, context_node):
    return not args[0]


def _fn_true(document: Document, args, context_node):
    return True


def _fn_false(document: Document, args, context_node):
    return False


def _fn_lang(document: Document, args, context_node):
    """W3C §4.3 lang(): match xml:lang of the nearest ancestor-or-self."""
    wanted = args[0].lower()
    node = context_node
    while node is not None:
        if node.is_element:
            declared = node.attribute_value("xml:lang")
            if declared is not None:
                declared = declared.lower()
                return declared == wanted or declared.startswith(wanted + "-")
        node = node.parent
    return False


def _fn_number(document: Document, args, context_node):
    value = args[0]
    if isinstance(value, (set, frozenset, list, tuple)):
        return to_number_value(value, "nset")
    return to_number_value(value, _scalar_type(value))


def _fn_floor(document: Document, args, context_node):
    return xpath_floor(args[0])


def _fn_ceiling(document: Document, args, context_node):
    return xpath_ceiling(args[0])


def _fn_round(document: Document, args, context_node):
    return xpath_round(args[0])


_IMPLEMENTATIONS = {
    "count": _fn_count,
    "sum": _fn_sum,
    "id": _fn_id,
    "local-name": _fn_local_name,
    "namespace-uri": _fn_namespace_uri,
    "name": _fn_name,
    "string": _fn_string,
    "concat": _fn_concat,
    "starts-with": _fn_starts_with,
    "contains": _fn_contains,
    "substring-before": _fn_substring_before,
    "substring-after": _fn_substring_after,
    "substring": _fn_substring,
    "string-length": _fn_string_length,
    "normalize-space": _fn_normalize_space,
    "translate": _fn_translate,
    "boolean": _fn_boolean,
    "not": _fn_not,
    "true": _fn_true,
    "false": _fn_false,
    "lang": _fn_lang,
    "number": _fn_number,
    "floor": _fn_floor,
    "ceiling": _fn_ceiling,
    "round": _fn_round,
}


def apply_function(document: Document, name: str, args: list, context_node: Node | None = None):
    """Apply ``F[[name]]`` to evaluated argument values.

    ``position``/``last`` are rejected here on purpose — they are context
    accessors, not value functions, and each evaluator handles them.
    """
    implementation = _IMPLEMENTATIONS.get(name)
    if implementation is None:
        raise UnknownFunctionError(name)
    return implementation(document, args, context_node)
