"""XPath 1.0 core function library.

Signatures drive the normalizer's explicit-conversion insertion (the
paper's Section 2.2 assumption) and implementations realize the paper's
Figure 1 ``F`` rows plus the remaining W3C §4 functions the paper omits
for space ("several string and number operations were omitted, cf. [11]").
"""

from repro.functions.library import (
    FUNCTION_LIBRARY,
    Signature,
    apply_function,
    signature_for,
)

__all__ = ["FUNCTION_LIBRARY", "Signature", "apply_function", "signature_for"]
