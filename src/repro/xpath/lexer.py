"""XPath 1.0 tokenizer.

Implements the lexical structure of the W3C recommendation §3.7,
including the two disambiguation rules that make XPath lexing mildly
context-sensitive:

* a ``*`` is the multiplication operator (rather than a wildcard name
  test) exactly when the preceding token is not ``@``, ``::``, ``(``,
  ``[``, ``,``, or an operator;
* under the same condition an NCName is an operator name
  (``and or div mod``); otherwise a name followed by ``(`` is a function
  name, a name followed by ``::`` is an axis name, and any other name is
  a name test.

The tokenizer resolves both rules, so the parser sees unambiguous token
types.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import XPathSyntaxError


class TokenType(enum.Enum):
    NUMBER = "number"
    LITERAL = "literal"
    NAME = "name"  # name test component (may be '*' handled separately)
    FUNCTION_NAME = "function-name"
    AXIS_NAME = "axis-name"
    OPERATOR = "operator"  # and or div mod = != <= < >= > + - * | /  //
    VARIABLE = "variable"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    AT = "@"
    DOT = "."
    DOTDOT = ".."
    COLONCOLON = "::"
    STAR = "star"  # wildcard name test
    END = "end"


@dataclass
class Token:
    type: TokenType
    value: str
    offset: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


_NUMBER = re.compile(r"\d+(\.\d*)?|\.\d+")
_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*(:[A-Za-z_][A-Za-z0-9_.\-]*)?")
_OPERATOR_NAMES = frozenset({"and", "or", "div", "mod"})
_NODE_TYPES = frozenset({"node", "text", "comment", "processing-instruction"})

#: Token types after which '*' is a wildcard and names are name tests.
_NAME_POSITION_PREDECESSORS = frozenset(
    {
        TokenType.OPERATOR,
        TokenType.AT,
        TokenType.COLONCOLON,
        TokenType.LPAREN,
        TokenType.LBRACKET,
        TokenType.COMMA,
    }
)


def _in_operator_position(previous: Token | None) -> bool:
    """True when the disambiguation rule forces operator interpretation."""
    if previous is None:
        return False
    return previous.type not in _NAME_POSITION_PREDECESSORS


def tokenize_xpath(source: str) -> list[Token]:
    """Tokenize an XPath expression; appends a sentinel END token."""
    tokens: list[Token] = []
    pos = 0
    length = len(source)

    def previous() -> Token | None:
        return tokens[-1] if tokens else None

    while pos < length:
        ch = source[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        start = pos
        if ch == "'" or ch == '"':
            end = source.find(ch, pos + 1)
            if end == -1:
                raise XPathSyntaxError("unterminated string literal", pos)
            tokens.append(Token(TokenType.LITERAL, source[pos + 1 : end], start))
            pos = end + 1
            continue
        number_match = _NUMBER.match(source, pos)
        # '.' starts a number only when followed by a digit; plain '.' and
        # '..' are abbreviations.
        if ch.isdigit() or (ch == "." and number_match):
            tokens.append(Token(TokenType.NUMBER, number_match.group(), start))
            pos = number_match.end()
            continue
        if source.startswith("..", pos):
            tokens.append(Token(TokenType.DOTDOT, "..", start))
            pos += 2
            continue
        if ch == ".":
            tokens.append(Token(TokenType.DOT, ".", start))
            pos += 1
            continue
        if source.startswith("::", pos):
            tokens.append(Token(TokenType.COLONCOLON, "::", start))
            pos += 2
            continue
        if source.startswith("//", pos):
            tokens.append(Token(TokenType.OPERATOR, "//", start))
            pos += 2
            continue
        if source.startswith("!=", pos) or source.startswith("<=", pos) or source.startswith(">=", pos):
            tokens.append(Token(TokenType.OPERATOR, source[pos : pos + 2], start))
            pos += 2
            continue
        if ch in "/|+-=<>":
            tokens.append(Token(TokenType.OPERATOR, ch, start))
            pos += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, ch, start))
            pos += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ch, start))
            pos += 1
            continue
        if ch == "[":
            tokens.append(Token(TokenType.LBRACKET, ch, start))
            pos += 1
            continue
        if ch == "]":
            tokens.append(Token(TokenType.RBRACKET, ch, start))
            pos += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ch, start))
            pos += 1
            continue
        if ch == "@":
            tokens.append(Token(TokenType.AT, ch, start))
            pos += 1
            continue
        if ch == "$":
            name_match = _NAME.match(source, pos + 1)
            if not name_match:
                raise XPathSyntaxError("'$' must be followed by a variable name", pos)
            tokens.append(Token(TokenType.VARIABLE, name_match.group(), start))
            pos = name_match.end()
            continue
        if ch == "*":
            if _in_operator_position(previous()):
                tokens.append(Token(TokenType.OPERATOR, "*", start))
            else:
                tokens.append(Token(TokenType.STAR, "*", start))
            pos += 1
            continue
        name_match = _NAME.match(source, pos)
        if name_match:
            name = name_match.group()
            pos = name_match.end()
            if _in_operator_position(previous()):
                if name not in _OPERATOR_NAMES:
                    raise XPathSyntaxError(
                        f"unexpected name {name!r} in operator position", start
                    )
                tokens.append(Token(TokenType.OPERATOR, name, start))
                continue
            # Peek past whitespace to classify the name.
            peek = pos
            while peek < length and source[peek] in " \t\r\n":
                peek += 1
            if source.startswith("::", peek):
                tokens.append(Token(TokenType.AXIS_NAME, name, start))
            elif peek < length and source[peek] == "(" and name not in _NODE_TYPES:
                tokens.append(Token(TokenType.FUNCTION_NAME, name, start))
            else:
                tokens.append(Token(TokenType.NAME, name, start))
            continue
        raise XPathSyntaxError(f"unexpected character {ch!r}", pos)

    tokens.append(Token(TokenType.END, "", length))
    return tokens
