"""Turn ASTs back into XPath strings, and render parse trees.

``unparse`` produces a valid, re-parseable query string (used in error
messages, the CLI, and round-trip tests). ``dump_tree`` renders the parse
tree with per-node annotations in the style of the paper's Figures 3/6
node tables (node id, subexpression, static type, ``Relev``).
"""

from __future__ import annotations

from repro.values.numbers import number_to_string
from repro.xpath.ast import (
    AstNode,
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NodeTest,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
    VariableRef,
)

# Precedence levels, low to high; higher binds tighter.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "div": 6,
    "mod": 6,
}
_UNARY_PRECEDENCE = 7
_UNION_PRECEDENCE = 8
_LEAF_PRECEDENCE = 9


def _precedence(expr: Expr) -> int:
    if isinstance(expr, BinaryOp):
        return _PRECEDENCE[expr.op]
    if isinstance(expr, Negate):
        return _UNARY_PRECEDENCE
    if isinstance(expr, Union):
        return _UNION_PRECEDENCE
    return _LEAF_PRECEDENCE


def _child(expr: Expr, parent_precedence: int, right_side: bool = False) -> str:
    text = unparse(expr)
    child_precedence = _precedence(expr)
    if child_precedence < parent_precedence or (
        right_side and child_precedence == parent_precedence
    ):
        return f"({text})"
    return text


def node_test_to_string(test: NodeTest) -> str:
    if test.kind == "name":
        return test.name or "?"
    if test.kind == "wildcard":
        return "*"
    if test.kind == "node":
        return "node()"
    if test.kind == "text":
        return "text()"
    if test.kind == "comment":
        return "comment()"
    if test.kind == "pi":
        if test.name is None:
            return "processing-instruction()"
        return f"processing-instruction('{test.name}')"
    raise ValueError(f"unknown node test {test!r}")


def step_to_string(step: Step) -> str:
    predicates = "".join(f"[{unparse(p)}]" for p in step.predicates)
    return f"{step.axis}::{node_test_to_string(step.node_test)}{predicates}"


def unparse(expr: Expr) -> str:
    """Render an AST as unabbreviated XPath 1.0 text."""
    if isinstance(expr, NumberLiteral):
        return number_to_string(expr.value)
    if isinstance(expr, StringLiteral):
        if "'" in expr.value:
            return f'"{expr.value}"'
        return f"'{expr.value}'"
    if isinstance(expr, VariableRef):
        return f"${expr.name}"
    if isinstance(expr, ConstantNodeSet):
        return f"$<node-set:{len(expr.nodes)}>"
    if isinstance(expr, FunctionCall):
        args = ", ".join(unparse(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Negate):
        return f"-{_child(expr.operand, _UNARY_PRECEDENCE)}"
    if isinstance(expr, BinaryOp):
        level = _PRECEDENCE[expr.op]
        left = _child(expr.left, level)
        right = _child(expr.right, level, right_side=True)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, Union):
        left = _child(expr.left, _UNION_PRECEDENCE)
        right = _child(expr.right, _UNION_PRECEDENCE, right_side=True)
        return f"{left} | {right}"
    if isinstance(expr, Path):
        return _unparse_path(expr)
    raise ValueError(f"cannot unparse {expr!r}")


def _unparse_path(path: Path) -> str:
    steps = "/".join(step_to_string(s) for s in path.steps)
    if path.primary is not None:
        primary = unparse(path.primary)
        if not isinstance(path.primary, (FunctionCall, ConstantNodeSet)):
            primary = f"({primary})"
        predicates = "".join(f"[{unparse(p)}]" for p in path.primary_predicates)
        if steps:
            return f"{primary}{predicates}/{steps}"
        return f"{primary}{predicates}"
    if path.absolute:
        return f"/{steps}" if steps else "/"
    return steps


def dump_tree(expr: Expr, indent: str = "") -> str:
    """Multi-line parse-tree rendering with annotations.

    Mirrors the node tables accompanying Figures 3 and 6: each line shows
    the node id (``N<uid>``), the subexpression, its static type, and
    ``Relev`` when computed.
    """
    lines: list[str] = []
    _dump(expr, indent, lines)
    return "\n".join(lines)


def _dump(node: AstNode, indent: str, lines: list[str]) -> None:
    if isinstance(node, Step):
        label = step_to_string(node)
    else:
        label = unparse(node)  # type: ignore[arg-type]
    annotations = []
    if node.value_type is not None:
        annotations.append(node.value_type)
    if node.relev is not None:
        inside = ", ".join(sorted(node.relev)) if node.relev else "∅"
        annotations.append(f"Relev={{{inside}}}" if node.relev else "Relev=∅")
    suffix = f"  [{'; '.join(annotations)}]" if annotations else ""
    lines.append(f"{indent}N{node.uid}: {label}{suffix}")
    for child in node.children():
        _dump(child, indent + "    ", lines)
