"""Per-subexpression evaluation plans (the Corollary 11 view).

OPTMINCONTEXT does not treat a query uniformly: each subexpression is
evaluated by the cheapest strategy its shape allows. This module makes
that visible — for every parse-tree node it reports the *strategy* the
combined algorithm will use and the complexity bound that strategy
carries, directly mirroring Corollary 11 ("let e be a subexpression in
Q ... then e is evaluated in space O(|D|·|e|²) and time O(|D|²·|e|²)")
and Theorem 13 for Core XPath parts.

Strategies:

* ``bottom-up``     — shape ``boolean(π)`` / ``π RelOp s``: backward
  propagation through inverse axes; linear space
  (linear *time* as well when ``π`` has no position predicates).
* ``outermost-set`` — the outermost location path: plain node-set sweep.
* ``cn-table``      — a table keyed by context node (≤ |dom| rows).
* ``constant``      — one-row table (Relev = ∅).
* ``cp/cs-loop``    — never tabulated; recomputed inside the loop over
  positions (Example 5).
* ``inner-relation``— a ``dom × 2^dom`` relation (the expensive case the
  Wadler restrictions exist to avoid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xpath.ast import AstNode, ConstantNodeSet, Expr, Path, Step, Union
from repro.xpath.fragments import find_bottomup_paths, is_bottomup_eligible
from repro.xpath.unparse import step_to_string, unparse

_CPCS = frozenset({"cp", "cs"})


@dataclass
class PlanLine:
    """One parse-tree node's plan entry."""

    depth: int
    uid: int
    source: str
    strategy: str
    bound: str

    def render(self) -> str:
        indent = "    " * self.depth
        return f"{indent}N{self.uid} [{self.strategy:<14}] {self.source}  — {self.bound}"


def explain(expr: Expr) -> list[PlanLine]:
    """Build the evaluation plan for a normalized, relevance-annotated
    query (the root is treated as the outermost expression)."""
    bottomup = {node.uid for node in find_bottomup_paths(expr)}
    lines: list[PlanLine] = []
    _visit(expr, 0, bottomup, lines, is_root=True, under_bottomup=False)
    return lines


def explain_text(expr: Expr) -> str:
    """The plan as a printable block."""
    return "\n".join(line.render() for line in explain(expr))


def _strategy_for(node: AstNode, bottomup: set[int], is_root: bool, under_bottomup: bool) -> tuple[str, str]:
    relev = node.relev or frozenset()
    if node.uid in bottomup:
        return "bottom-up", "O(|D|·|e|²) space (Thm 10 / Cor 11)"
    if is_root and isinstance(node, (Path, Union)) and node.value_type == "nset":
        return "outermost-set", "plain node sets, O(|D|) space (Sec 3.1)"
    if _CPCS & relev:
        return "cp/cs-loop", "recomputed per (cp,cs) pair, no table (Ex 5)"
    if isinstance(node, (Path, Union, ConstantNodeSet)) and not under_bottomup:
        return "inner-relation", "table ⊆ dom × 2^dom, O(|D|²) space"
    if isinstance(node, (Path, Union, ConstantNodeSet)):
        return "backward-step", "inverse axis sweeps inside bottom-up path"
    if not relev:
        return "constant", "one-row table"
    return "cn-table", "≤ |dom| rows (relevant context: cn)"


def _visit(
    node: AstNode,
    depth: int,
    bottomup: set[int],
    lines: list[PlanLine],
    is_root: bool,
    under_bottomup: bool,
) -> None:
    if isinstance(node, Step):
        source = step_to_string(node)
    else:
        source = unparse(node)  # type: ignore[arg-type]
    if len(source) > 60:
        source = source[:57] + "..."
    strategy, bound = _strategy_for(node, bottomup, is_root, under_bottomup)
    lines.append(PlanLine(depth, node.uid, source, strategy, bound))
    now_under = under_bottomup or node.uid in bottomup
    for child in node.children():
        _visit(child, depth + 1, bottomup, lines, is_root=False, under_bottomup=now_under)
