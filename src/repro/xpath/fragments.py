"""Fragment classification: Core XPath and the Extended Wadler Fragment.

Two syntactic fragments drive OPTMINCONTEXT's dispatch:

* **Core XPath** (Definition 12, from [11]): location paths whose
  predicates are and/or/not combinations of location paths. Queries fully
  inside it evaluate in ``O(|D|·|Q|)`` (Theorem 13) via
  :mod:`repro.core.corexpath`.
* **Extended Wadler Fragment** (Section 4, Restrictions 1–3): evaluable
  in ``O(|D|·|Q|²)`` space and ``O(|D|²·|Q|²)`` time (Theorem 10) because
  every node-set subexpression sits in an existential position
  (``boolean(π)`` / ``π RelOp s``) and can be propagated *backwards*
  through inverse axes instead of being tabulated per context node.

Both classifiers expect a **normalized** tree (conversions explicit,
numeric predicates rewritten, unions lifted, ``id``-chains turned into
pseudo-axis steps) and return a violation description, or ``None`` when
the expression is in the fragment — the reason strings power the
``fragment_advisor`` example and engine diagnostics.

Interpretation notes (documented deviations / sharpenings):

* Restriction 1 bans "functions which select data from an XML document",
  listing local-name, namespace-uri, name, string, number, string-length,
  and normalize-space. Data enters scalars only through ``string(nset)``
  / ``number(nset)`` / the name accessors, so we ban exactly those:
  ``string(position())`` is harmless and accepted, while every listed
  function applied to document content is rejected. This keeps the
  fragment's purpose (scalar sizes independent of ``|D|``) while not
  rejecting conversions that our own normalizer inserts around
  data-free scalars.
* Paths rooted at filter-expression primaries (``(...)[1]/a``) are
  outside both fragments (the paper's grammars only build pure location
  paths).
"""

from __future__ import annotations

from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
)

_COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})

#: Name accessors always select document data.
_R1_NAME_ACCESSORS = frozenset({"local-name", "namespace-uri", "name"})
#: Conversions select data exactly when applied to a node-set.
_R1_DATA_CONVERSIONS = frozenset({"string", "number"})
#: Derived string measures on document data (banned when fed a
#: data-selecting conversion, which the _R1_DATA_CONVERSIONS rule already
#: catches; listed for the strict reading used by `strict=True`).
_R1_STRING_MEASURES = frozenset({"string-length", "normalize-space"})


def _needs_relev(expr: Expr) -> frozenset[str]:
    if expr.relev is None:
        raise ValueError(
            "fragment classification requires relevance annotations "
            "(run compute_relevance first)"
        )
    return expr.relev


# ----------------------------------------------------------------------
# Core XPath (Definition 12)
# ----------------------------------------------------------------------


def core_xpath_violation(expr: Expr) -> str | None:
    """Return why ``expr`` is outside Core XPath, or ``None`` if inside."""
    return _core_path(expr)


def is_core_xpath(expr: Expr) -> bool:
    return core_xpath_violation(expr) is None


def _core_path(expr: Expr) -> str | None:
    if not isinstance(expr, Path):
        return f"not a location path: {type(expr).__name__}"
    if expr.primary is not None:
        return "filter-expression primaries are not in Core XPath"
    for step in expr.steps:
        if step.axis == "id":
            return "the id pseudo-axis is not in Core XPath"
        for predicate in step.predicates:
            violation = _core_predicate(predicate)
            if violation is not None:
                return violation
    return None


def _core_predicate(expr: Expr) -> str | None:
    if isinstance(expr, BinaryOp) and expr.op in ("and", "or"):
        return _core_predicate(expr.left) or _core_predicate(expr.right)
    if isinstance(expr, FunctionCall) and expr.name == "not" and len(expr.args) == 1:
        return _core_predicate(expr.args[0])
    if isinstance(expr, FunctionCall) and expr.name == "boolean" and len(expr.args) == 1:
        # A bare cxp predicate is boolean(path) after normalization.
        return _core_path(expr.args[0])
    return f"predicate uses a non-Core construct: {type(expr).__name__}"


# ----------------------------------------------------------------------
# Extended Wadler Fragment (Restrictions 1-3)
# ----------------------------------------------------------------------


def wadler_violation(expr: Expr, strict: bool = False) -> str | None:
    """Return why ``expr`` violates Restrictions 1–3, else ``None``.

    ``strict=True`` applies Restriction 1 literally (ban string-length
    and normalize-space outright) instead of the data-flow reading
    described in the module docstring.
    """
    return _wadler(expr, nset_allowed=True, strict=strict)


def is_extended_wadler(expr: Expr, strict: bool = False) -> bool:
    return wadler_violation(expr, strict=strict) is None


def _wadler(expr: Expr, nset_allowed: bool, strict: bool) -> str | None:
    if isinstance(expr, (NumberLiteral, StringLiteral)):
        return None
    if isinstance(expr, ConstantNodeSet):
        if not nset_allowed:
            return "constant node-set in a non-existential position"
        return None
    if isinstance(expr, Negate):
        return _wadler(expr.operand, nset_allowed=False, strict=strict)
    if isinstance(expr, Union):
        if not nset_allowed:
            return "union in a non-existential position"
        return (
            _wadler(expr.left, nset_allowed=True, strict=strict)
            or _wadler(expr.right, nset_allowed=True, strict=strict)
        )
    if isinstance(expr, Path):
        if not nset_allowed:
            return "location path in a non-existential position (Restriction 2)"
        return _wadler_path(expr, strict)
    if isinstance(expr, BinaryOp):
        return _wadler_binary(expr, strict)
    if isinstance(expr, FunctionCall):
        return _wadler_call(expr, strict)
    return f"construct outside the fragment: {type(expr).__name__}"


def _wadler_path(path: Path, strict: bool) -> str | None:
    if path.primary is not None:
        # The Section 4 reading of Restriction 3: a path may start from a
        # context-free node set (id('k')/..., a constant binding) — the
        # "id as axis" device. Context-*dependent* primaries are out.
        if _needs_relev(path.primary):
            return "context-dependent filter-expression primary"
        violation = _wadler(path.primary, nset_allowed=True, strict=strict)
        if violation is not None:
            return violation
        for predicate in path.primary_predicates:
            violation = _wadler(predicate, nset_allowed=False, strict=strict)
            if violation is not None:
                return violation
    for step in path.steps:
        for predicate in step.predicates:
            violation = _wadler(predicate, nset_allowed=False, strict=strict)
            if violation is not None:
                return violation
    return None


def _wadler_binary(expr: BinaryOp, strict: bool) -> str | None:
    if expr.op in ("and", "or"):
        return (
            _wadler(expr.left, nset_allowed=False, strict=strict)
            or _wadler(expr.right, nset_allowed=False, strict=strict)
        )
    if expr.op in _COMPARISON_OPS:
        left_is_nset = expr.left.value_type == "nset"
        right_is_nset = expr.right.value_type == "nset"
        if left_is_nset and right_is_nset:
            return "nset RelOp nset comparison (Restriction 2)"
        if left_is_nset or right_is_nset:
            nset_side = expr.left if left_is_nset else expr.right
            scalar_side = expr.right if left_is_nset else expr.left
            if _needs_relev(scalar_side):
                return (
                    "nset RelOp scalar where the scalar depends on the context "
                    "(Restriction 2)"
                )
            return (
                _wadler(nset_side, nset_allowed=True, strict=strict)
                or _wadler(scalar_side, nset_allowed=False, strict=strict)
            )
        return (
            _wadler(expr.left, nset_allowed=False, strict=strict)
            or _wadler(expr.right, nset_allowed=False, strict=strict)
        )
    # Arithmetic.
    return (
        _wadler(expr.left, nset_allowed=False, strict=strict)
        or _wadler(expr.right, nset_allowed=False, strict=strict)
    )


def _wadler_call(call: FunctionCall, strict: bool) -> str | None:
    name = call.name
    if name in ("count", "sum"):
        return f"{name}() is not allowed (Restriction 2)"
    if name in _R1_NAME_ACCESSORS:
        return f"{name}() selects document data (Restriction 1)"
    if strict and name in _R1_STRING_MEASURES:
        return f"{name}() is banned under the strict reading of Restriction 1"
    if name in _R1_DATA_CONVERSIONS and call.args and call.args[0].value_type == "nset":
        return f"{name}() applied to a node-set selects document data (Restriction 1)"
    if name == "boolean" and len(call.args) == 1 and call.args[0].value_type == "nset":
        return _wadler(call.args[0], nset_allowed=True, strict=strict)
    if name == "id":
        argument = call.args[0]
        if argument.value_type != "nset" and _needs_relev(argument):
            return "id(s) where s depends on the context (Restriction 3)"
        return _wadler(argument, nset_allowed=True, strict=strict)
    for arg in call.args:
        violation = _wadler(arg, nset_allowed=False, strict=strict)
        if violation is not None:
            return violation
    return None


# ----------------------------------------------------------------------
# Bottom-up path discovery (for OPTMINCONTEXT, Algorithm 8)
# ----------------------------------------------------------------------


def find_bottomup_paths(expr: Expr) -> list[Expr]:
    """Find subexpressions OPTMINCONTEXT evaluates bottom-up.

    Eligible shapes (Section 4): ``boolean(π)`` and ``π RelOp s`` where
    ``π`` is a plain location path and ``s`` is independent of the
    context (``Relev(s) = ∅``). Returned in post-order, i.e. innermost
    first, as Algorithm 8 requires ("starting with the innermost ones in
    case of nesting").

    Note eligibility is about *shape*, not Wadler membership: the
    bottom-up procedure is correct for any predicates (they are handled
    through eval_by_cnode_only / eval_single_context); the Wadler
    restrictions only matter for the *space guarantee* of Theorem 10.
    """
    found: list[Expr] = []
    _find_bottomup(expr, found, is_root=True)
    return found


def is_bottomup_eligible(expr: Expr) -> bool:
    """Is this node itself of shape ``boolean(π)`` / ``π RelOp s``?"""
    if isinstance(expr, FunctionCall) and expr.name == "boolean" and len(expr.args) == 1:
        return _is_propagatable_path(expr.args[0])
    if isinstance(expr, BinaryOp) and expr.op in _COMPARISON_OPS:
        left_is_path = _is_propagatable_path(expr.left)
        right_is_path = _is_propagatable_path(expr.right)
        if left_is_path and not right_is_path and expr.right.value_type != "nset":
            return not _needs_relev(expr.right)
        if right_is_path and not left_is_path and expr.left.value_type != "nset":
            return not _needs_relev(expr.left)
    return False


def _is_propagatable_path(expr: Expr) -> bool:
    """A path :func:`repro.core.bottomup_paths.propagate_path_backwards`
    can handle: a plain location path with at least one step, optionally
    rooted at a context-free predicate-less primary (the id-as-axis
    device)."""
    if not isinstance(expr, Path) or not expr.steps:
        return False
    if expr.primary is None:
        return True
    return not expr.primary_predicates and not _needs_relev(expr.primary)


def _find_bottomup(node, found: list[Expr], is_root: bool) -> None:
    for child in node.children():
        _find_bottomup(child, found, is_root=False)
    if not is_root and isinstance(node, Expr) and is_bottomup_eligible(node):
        found.append(node)
