"""Recursive-descent parser for the full XPath 1.0 grammar.

Accepts both the unabbreviated syntax the paper uses
(``/descendant::*[position() > last()*0.5]``) and the abbreviated one
(``//c[@id='12']``). Abbreviations are expanded during parsing, per the
W3C rules:

* ``//``   →  ``/descendant-or-self::node()/``
* ``.``    →  ``self::node()``
* ``..``   →  ``parent::node()``
* ``@n``   →  ``attribute::n``
* no axis  →  ``child::``

Operator precedence (low to high): ``or``, ``and``, equality, relational,
additive, multiplicative, unary minus, union ``|``, path.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    BinaryOp,
    Expr,
    FunctionCall,
    Negate,
    NodeTest,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
    VariableRef,
)
from repro.xpath.lexer import Token, TokenType, tokenize_xpath

_AXES = frozenset(
    {
        "self",
        "child",
        "parent",
        "descendant",
        "ancestor",
        "descendant-or-self",
        "ancestor-or-self",
        "following",
        "preceding",
        "following-sibling",
        "preceding-sibling",
        "attribute",
        "namespace",
    }
)

_NODE_TYPE_NAMES = frozenset({"node", "text", "comment", "processing-instruction"})


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize_xpath(source)
        self.index = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.END:
            self.index += 1
        return token

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.type is token_type and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self.accept(token_type, value)
        if token is None:
            actual = self.peek()
            wanted = value or token_type.value
            raise XPathSyntaxError(
                f"expected {wanted!r}, found {actual.value!r}", actual.offset
            )
        return token

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse(self) -> Expr:
        expr = self.parse_or()
        trailing = self.peek()
        if trailing.type is not TokenType.END:
            raise XPathSyntaxError(
                f"unexpected trailing input {trailing.value!r}", trailing.offset
            )
        return expr

    # ------------------------------------------------------------------
    # Expression levels
    # ------------------------------------------------------------------

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept(TokenType.OPERATOR, "or"):
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_equality()
        while self.accept(TokenType.OPERATOR, "and"):
            left = BinaryOp("and", left, self.parse_equality())
        return left

    def parse_equality(self) -> Expr:
        left = self.parse_relational()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("=", "!="):
                self.advance()
                left = BinaryOp(token.value, left, self.parse_relational())
            else:
                return left

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("<", "<=", ">", ">="):
                self.advance()
                left = BinaryOp(token.value, left, self.parse_additive())
            else:
                return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                self.advance()
                left = BinaryOp(token.value, left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "div", "mod"):
                self.advance()
                left = BinaryOp(token.value, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        if self.accept(TokenType.OPERATOR, "-"):
            return Negate(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> Expr:
        left = self.parse_path()
        while self.accept(TokenType.OPERATOR, "|"):
            left = Union(left, self.parse_path())
        return left

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def parse_path(self) -> Expr:
        """PathExpr: a location path, or a filter expression optionally
        followed by '/' RelativeLocationPath."""
        if self._starts_location_path():
            return self.parse_location_path()
        primary = self.parse_primary()
        predicates: list[Expr] = []
        while self.peek().type is TokenType.LBRACKET:
            predicates.append(self.parse_predicate())
        token = self.peek()
        has_tail = token.type is TokenType.OPERATOR and token.value in ("/", "//")
        if not predicates and not has_tail:
            return primary
        steps: list[Step] = []
        if has_tail:
            self.advance()
            if token.value == "//":
                steps.append(Step("descendant-or-self", NodeTest("node")))
            steps.extend(self.parse_relative_steps())
        return Path(primary=primary, primary_predicates=predicates, steps=steps)

    def _starts_location_path(self) -> bool:
        token = self.peek()
        if token.type in (
            TokenType.NAME,
            TokenType.STAR,
            TokenType.AXIS_NAME,
            TokenType.AT,
            TokenType.DOT,
            TokenType.DOTDOT,
        ):
            return True
        if token.type is TokenType.OPERATOR and token.value in ("/", "//"):
            return True
        # node-type tests lex as FUNCTION_NAME-free NAME except
        # processing-instruction('x') which lexes as NAME + LPAREN; the
        # lexer already keeps node types as NAME, so nothing more here.
        return False

    def parse_location_path(self) -> Path:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in ("/", "//"):
            self.advance()
            steps: list[Step] = []
            if token.value == "//":
                steps.append(Step("descendant-or-self", NodeTest("node")))
                steps.extend(self.parse_relative_steps())
            elif self._starts_step():
                steps.extend(self.parse_relative_steps())
            return Path(absolute=True, steps=steps)
        return Path(steps=self.parse_relative_steps())

    def _starts_step(self) -> bool:
        token = self.peek()
        return token.type in (
            TokenType.NAME,
            TokenType.STAR,
            TokenType.AXIS_NAME,
            TokenType.AT,
            TokenType.DOT,
            TokenType.DOTDOT,
        )

    def parse_relative_steps(self) -> list[Step]:
        steps = [self.parse_step()]
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value == "/":
                self.advance()
                steps.append(self.parse_step())
            elif token.type is TokenType.OPERATOR and token.value == "//":
                self.advance()
                steps.append(Step("descendant-or-self", NodeTest("node")))
                steps.append(self.parse_step())
            else:
                return steps

    def parse_step(self) -> Step:
        if self.accept(TokenType.DOT):
            return Step("self", NodeTest("node"))
        if self.accept(TokenType.DOTDOT):
            return Step("parent", NodeTest("node"))
        axis = "child"
        axis_token = self.accept(TokenType.AXIS_NAME)
        if axis_token is not None:
            if axis_token.value not in _AXES:
                raise XPathSyntaxError(
                    f"unknown axis {axis_token.value!r}", axis_token.offset
                )
            if axis_token.value == "namespace":
                raise XPathSyntaxError(
                    "the namespace axis is not supported (see DESIGN.md)",
                    axis_token.offset,
                )
            axis = axis_token.value
            self.expect(TokenType.COLONCOLON)
        elif self.accept(TokenType.AT):
            axis = "attribute"
        node_test = self.parse_node_test()
        predicates: list[Expr] = []
        while self.peek().type is TokenType.LBRACKET:
            predicates.append(self.parse_predicate())
        return Step(axis, node_test, predicates)

    def parse_node_test(self) -> NodeTest:
        if self.accept(TokenType.STAR):
            return NodeTest("wildcard")
        token = self.peek()
        if token.type is TokenType.NAME:
            self.advance()
            if token.value in _NODE_TYPE_NAMES and self.peek().type is TokenType.LPAREN:
                self.advance()  # consume '('
                if token.value == "processing-instruction":
                    target = None
                    literal = self.accept(TokenType.LITERAL)
                    if literal is not None:
                        target = literal.value
                    self.expect(TokenType.RPAREN)
                    return NodeTest("pi", target)
                self.expect(TokenType.RPAREN)
                if token.value == "node":
                    return NodeTest("node")
                return NodeTest(token.value)
            return NodeTest("name", token.value)
        raise XPathSyntaxError(f"expected a node test, found {token.value!r}", token.offset)

    def parse_predicate(self) -> Expr:
        self.expect(TokenType.LBRACKET)
        expr = self.parse_or()
        self.expect(TokenType.RBRACKET)
        return expr

    # ------------------------------------------------------------------
    # Primaries
    # ------------------------------------------------------------------

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.type is TokenType.VARIABLE:
            self.advance()
            return VariableRef(token.value)
        if token.type is TokenType.LITERAL:
            self.advance()
            return StringLiteral(token.value)
        if token.type is TokenType.NUMBER:
            self.advance()
            return NumberLiteral(float(token.value))
        if token.type is TokenType.LPAREN:
            self.advance()
            inner = self.parse_or()
            self.expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.FUNCTION_NAME:
            self.advance()
            self.expect(TokenType.LPAREN)
            args: list[Expr] = []
            if self.peek().type is not TokenType.RPAREN:
                args.append(self.parse_or())
                while self.accept(TokenType.COMMA):
                    args.append(self.parse_or())
            self.expect(TokenType.RPAREN)
            return FunctionCall(token.value, args)
        raise XPathSyntaxError(f"unexpected token {token.value!r}", token.offset)


def parse_xpath(source: str) -> Expr:
    """Parse an XPath 1.0 expression string into an AST.

    The result is *raw*: run :func:`repro.xpath.normalize.normalize` to
    substitute variables, insert the explicit type conversions the paper
    assumes, and annotate static types before handing it to an evaluator
    (the engine does this for you).
    """
    return _Parser(source).parse()
