"""Semantics-preserving query rewrites (optimizer pass).

The paper's related-work section points at XPath query transformation and
optimization ([5] "Symmetry in XPath", [12]); this module implements the
classic algebraic rewrites that compose with the paper's algorithms, each
guarded by the static analyses so it *provably* preserves semantics:

* **Descendant fusion** — ``descendant-or-self::node()/child::t`` (the
  expansion of ``//t``) fuses into the single step ``descendant::t``.
  Guard: the child step's predicates must not use ``position()`` or
  ``last()`` (fusion changes proximity groups: child positions are
  per-parent, descendant positions per-origin), and the d-o-s step must
  be bare. This saves a full intermediate node-set per ``//``.
* **Self-step elision** — ``π1/self::node()/π2`` → ``π1/π2`` when the
  self step has no predicates.
* **Constant folding** — arithmetic, boolean connectives, comparisons,
  and core functions over literal operands are evaluated at compile time
  (numbers, strings, ``true()``/``false()``; never node-sets).
* **Double negation** — ``not(not(e))`` → ``e``.
* **Trivial predicate elimination** — a predicate that folded to the
  constant ``true()`` is dropped; one that folded to ``false()`` marks
  the step unsatisfiable, collapsing the whole path to the empty set
  (represented as a never-matching step).

The pass runs on *normalized* trees and re-annotates ``value_type``; the
engine applies it when constructed with ``optimize=True``. Equivalence is
enforced by the differential test suite
(``tests/test_rewrite.py``) which runs rewritten and original queries
through independent evaluators on a corpus of random documents.
"""

from __future__ import annotations

import math

from repro.values import numbers as num
from repro.values.compare import compare_values
from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NodeTest,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
)

_CPCS = frozenset({"cp", "cs"})
_COMPARISONS = frozenset({"=", "!=", "<", "<=", ">", ">="})

#: Core functions foldable over literal scalar arguments (pure, total).
_FOLDABLE_FUNCTIONS = frozenset(
    {
        "concat",
        "starts-with",
        "contains",
        "substring-before",
        "substring-after",
        "substring",
        "string-length",
        "normalize-space",
        "translate",
        "not",
        "floor",
        "ceiling",
        "round",
        "boolean",
        "number",
        "string",
    }
)


class RewriteStats:
    """What the pass did — surfaced by the CLI and the ablation bench."""

    def __init__(self):
        self.descendant_fusions = 0
        self.self_elisions = 0
        self.constants_folded = 0
        self.predicates_eliminated = 0
        self.double_negations = 0

    def total(self) -> int:
        return (
            self.descendant_fusions
            + self.self_elisions
            + self.constants_folded
            + self.predicates_eliminated
            + self.double_negations
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RewriteStats(fusions={self.descendant_fusions}, "
            f"self={self.self_elisions}, folds={self.constants_folded}, "
            f"preds={self.predicates_eliminated}, notnot={self.double_negations})"
        )


def rewrite(expr: Expr, stats: RewriteStats | None = None) -> Expr:
    """Apply all rewrites to a normalized, relevance-annotated tree.

    Returns a tree that is semantically equivalent on every document and
    context. Annotations (``value_type``; ``relev`` where unchanged) are
    preserved; run :func:`repro.xpath.relevance.compute_relevance` again
    afterwards if fresh relevance sets are needed (the engine does).
    """
    stats = stats if stats is not None else RewriteStats()
    return _rewrite(expr, stats)


def _rewrite(expr: Expr, stats: RewriteStats) -> Expr:
    if isinstance(expr, (NumberLiteral, StringLiteral, ConstantNodeSet)):
        return expr
    if isinstance(expr, Negate):
        expr.operand = _rewrite(expr.operand, stats)
        return _fold_negate(expr, stats)
    if isinstance(expr, Union):
        expr.left = _rewrite(expr.left, stats)
        expr.right = _rewrite(expr.right, stats)
        return expr
    if isinstance(expr, BinaryOp):
        expr.left = _rewrite(expr.left, stats)
        expr.right = _rewrite(expr.right, stats)
        return _fold_binary(expr, stats)
    if isinstance(expr, FunctionCall):
        expr.args = [_rewrite(a, stats) for a in expr.args]
        folded = _fold_call(expr, stats)
        return folded
    if isinstance(expr, Path):
        return _rewrite_path(expr, stats)
    return expr


# ----------------------------------------------------------------------
# Path rewrites
# ----------------------------------------------------------------------


def _rewrite_path(path: Path, stats: RewriteStats) -> Path:
    if path.primary is not None:
        path.primary = _rewrite(path.primary, stats)
    path.primary_predicates = [_rewrite(p, stats) for p in path.primary_predicates]
    for step in path.steps:
        step.predicates = [_rewrite(p, stats) for p in step.predicates]
        step.predicates = _prune_predicates(step, stats)
    path.steps = _fuse_steps(path.steps, stats)
    return path


def _prune_predicates(step: Step, stats: RewriteStats) -> list[Expr]:
    """Drop predicates folded to true(); collapse the step on false()."""
    kept: list[Expr] = []
    for predicate in step.predicates:
        constant = _boolean_constant(predicate)
        if constant is True:
            stats.predicates_eliminated += 1
            continue
        if constant is False:
            # The step selects nothing, ever: make it a never-matching
            # test (a processing-instruction with an impossible target on
            # the same axis keeps axis/order semantics trivially empty).
            stats.predicates_eliminated += 1
            step.node_test = NodeTest("pi", "\x00never\x00")
            return []
        kept.append(predicate)
    return kept


def _fuse_steps(steps: list[Step], stats: RewriteStats) -> list[Step]:
    fused: list[Step] = []
    index = 0
    while index < len(steps):
        step = steps[index]
        following = steps[index + 1] if index + 1 < len(steps) else None
        # descendant-or-self::node() (bare) + child::t[preds without
        # position/last]  →  descendant::t[preds].
        if (
            following is not None
            and step.axis == "descendant-or-self"
            and step.node_test.kind == "node"
            and not step.predicates
            and following.axis == "child"
            and all(p.relev is not None and not (_CPCS & p.relev) for p in following.predicates)
        ):
            replacement = Step("descendant", following.node_test, following.predicates)
            replacement.value_type = "nset"
            replacement.relev = following.relev
            fused.append(replacement)
            stats.descendant_fusions += 1
            index += 2
            continue
        # Bare self::node() between (or after) steps disappears.
        if (
            step.axis == "self"
            and step.node_test.kind == "node"
            and not step.predicates
            and len(steps) > 1
        ):
            stats.self_elisions += 1
            index += 1
            continue
        fused.append(step)
        index += 1
    # Never drop every step of a nonempty path: keep at least one.
    if not fused and steps:
        return [steps[0]]
    return fused


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------


def _literal_value(expr: Expr):
    """(value, type) for literal scalars, else None."""
    if isinstance(expr, NumberLiteral):
        return expr.value, "num"
    if isinstance(expr, StringLiteral):
        return expr.value, "str"
    if isinstance(expr, FunctionCall) and expr.name in ("true", "false") and not expr.args:
        return expr.name == "true", "bool"
    return None


def _boolean_constant(expr: Expr):
    literal = _literal_value(expr)
    if literal is not None and literal[1] == "bool":
        return literal[0]
    return None


def _make_literal(value, stats: RewriteStats) -> Expr:
    stats.constants_folded += 1
    if isinstance(value, bool):
        call = FunctionCall("true" if value else "false", [])
        call.value_type = "bool"
        call.relev = frozenset()
        return call
    if isinstance(value, float):
        literal = NumberLiteral(value)
    else:
        literal = StringLiteral(value)
    literal.value_type = "num" if isinstance(value, float) else "str"
    literal.relev = frozenset()
    return literal


def _fold_negate(expr: Negate, stats: RewriteStats) -> Expr:
    literal = _literal_value(expr.operand)
    if literal is not None and literal[1] == "num":
        return _make_literal(-literal[0], stats)
    return expr


def _fold_binary(expr: BinaryOp, stats: RewriteStats) -> Expr:
    left = _literal_value(expr.left)
    right = _literal_value(expr.right)
    if expr.op in ("and", "or"):
        # One-sided folding is sound: XPath has no evaluation errors to
        # hide (div 0 is ±inf), so e and false() ≡ false().
        for constant, other in ((left, expr.right), (right, expr.left)):
            if constant is not None and constant[1] == "bool":
                if expr.op == "and":
                    return other if constant[0] else _make_literal(False, stats)
                return _make_literal(True, stats) if constant[0] else other
        return expr
    if left is None or right is None:
        return expr
    if expr.op in _COMPARISONS:
        return _make_literal(
            compare_values(expr.op, left[0], left[1], right[0], right[1]), stats
        )
    # Arithmetic (operands are num after normalization).
    a, b = left[0], right[0]
    if expr.op == "+":
        return _make_literal(a + b, stats)
    if expr.op == "-":
        return _make_literal(a - b, stats)
    if expr.op == "*":
        return _make_literal(float("nan") if math.isnan(a) or math.isnan(b) else a * b, stats)
    if expr.op == "div":
        return _make_literal(num.xpath_divide(a, b), stats)
    if expr.op == "mod":
        return _make_literal(num.xpath_modulo(a, b), stats)
    return expr


def _fold_call(expr: FunctionCall, stats: RewriteStats) -> Expr:
    # not(not(e)) → e.
    if (
        expr.name == "not"
        and len(expr.args) == 1
        and isinstance(expr.args[0], FunctionCall)
        and expr.args[0].name == "not"
    ):
        stats.double_negations += 1
        return expr.args[0].args[0]
    if expr.name not in _FOLDABLE_FUNCTIONS:
        return expr
    literals = [_literal_value(a) for a in expr.args]
    if not expr.args or any(l is None for l in literals):
        return expr
    from repro.functions.library import apply_function

    values = [l[0] for l in literals]
    try:
        result = apply_function(None, expr.name, values, None)
    except Exception:  # pragma: no cover - stay safe, skip folding
        return expr
    return _make_literal(result, stats)
