"""Abstract syntax tree for XPath 1.0 expressions.

The AST *is* the paper's parse tree ``T``: the evaluation algorithms hang
context-value tables off parse-tree nodes (``table(N)``), look up
``Relev(N)``, and navigate via ``expr(N)``/``node(e)``. Every AST node
(including each location :class:`Step`, which the paper treats as its own
parse-tree node — see Figure 3 where N2 is the second step) therefore
carries a unique ``uid`` to key those side tables, plus two annotation
slots filled by later passes:

* ``value_type`` — the static XPath type (``nset num str bool``), set by
  :func:`repro.xpath.normalize.normalize`;
* ``relev`` — the relevant-context set ``Relev(N) ⊆ {'cn','cp','cs'}``,
  set by :func:`repro.xpath.relevance.compute_relevance`.

Paths are normalized to a single shape: :class:`Path` with an optional
start (absolute root / filter-expression primary) and a list of
:class:`Step`. The paper's grammar cases ``/π``, ``π1/π2``, ``π1|π2``
map to absolute paths, step concatenation, and :class:`Union`.
"""

from __future__ import annotations

import itertools
from typing import Iterator

_uid_counter = itertools.count(1)


class AstNode:
    """Base for everything appearing in the parse tree."""

    __slots__ = ("uid", "value_type", "relev")

    def __init__(self):
        self.uid: int = next(_uid_counter)
        self.value_type: str | None = None
        self.relev: frozenset[str] | None = None

    def children(self) -> list["AstNode"]:
        """Direct parse-tree children (expressions and steps)."""
        return []

    def walk(self) -> Iterator["AstNode"]:
        """Pre-order traversal of the parse tree rooted here."""
        yield self
        for child in self.children():
            yield from child.walk()


class Expr(AstNode):
    """Base class for expression nodes (everything except Step/NodeTest)."""

    __slots__ = ()


class NumberLiteral(Expr):
    """A numeric constant, e.g. ``0.5`` in Figure 3's node N7."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        super().__init__()
        self.value = float(value)

    def __repr__(self) -> str:
        return f"NumberLiteral({self.value})"


class StringLiteral(Expr):
    """A string constant (``'...'`` or ``"..."``)."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def __repr__(self) -> str:
        return f"StringLiteral({self.value!r})"


class VariableRef(Expr):
    """``$name`` — replaced by its binding during normalization
    (Section 2.2: "each variable is replaced by the (constant) value of
    the input variable binding")."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        super().__init__()
        self.name = name

    def __repr__(self) -> str:
        return f"VariableRef(${self.name})"


class FunctionCall(Expr):
    """A core-library function call ``name(arg, ...)``.

    After normalization, the explicit conversions ``boolean()``,
    ``number()``, ``string()`` required by Section 2.2 also appear as
    FunctionCall nodes.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: list[Expr]):
        super().__init__()
        self.name = name
        self.args = list(args)

    def children(self) -> list[AstNode]:
        return list(self.args)

    def __repr__(self) -> str:
        return f"FunctionCall({self.name}, {self.args!r})"


class BinaryOp(Expr):
    """``left op right`` for op in ``or and = != <= < >= > + - * div mod``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        super().__init__()
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> list[AstNode]:
        return [self.left, self.right]

    def __repr__(self) -> str:
        return f"BinaryOp({self.op!r}, {self.left!r}, {self.right!r})"


class Negate(Expr):
    """Unary minus. Normalization guarantees the operand is ``num``."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        super().__init__()
        self.operand = operand

    def children(self) -> list[AstNode]:
        return [self.operand]

    def __repr__(self) -> str:
        return f"Negate({self.operand!r})"


class Union(Expr):
    """``π1 | π2`` — both operands must be node-set typed."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        super().__init__()
        self.left = left
        self.right = right

    def children(self) -> list[AstNode]:
        return [self.left, self.right]

    def __repr__(self) -> str:
        return f"Union({self.left!r}, {self.right!r})"


class ConstantNodeSet(Expr):
    """A literal node-set, produced when a variable bound to a node-set is
    substituted during normalization (Section 2.2). Holds a frozenset of
    :class:`repro.xml.document.Node`."""

    __slots__ = ("nodes",)

    def __init__(self, nodes):
        super().__init__()
        self.nodes = frozenset(nodes)

    def __repr__(self) -> str:
        return f"ConstantNodeSet({len(self.nodes)} nodes)"


class NodeTest:
    """The ``t`` of a location step ``χ::t`` (the paper's ``T`` function).

    Kinds: ``name`` (element/attribute name), ``wildcard`` (``*`` —
    matches the axis's principal node type), ``node`` (``node()``),
    ``text``, ``comment``, ``pi`` (``processing-instruction()``, with an
    optional target literal).
    """

    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str | None = None):
        if kind not in ("name", "wildcard", "node", "text", "comment", "pi"):
            raise ValueError(f"unknown node test kind: {kind}")
        self.kind = kind
        self.name = name

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, NodeTest) and self.kind == other.kind and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.name))

    def __repr__(self) -> str:
        return f"NodeTest({self.kind}, {self.name!r})"


class Step(AstNode):
    """One location step ``χ::t[e1]...[em]``.

    A parse-tree node in its own right (Figure 3's N2), so it carries a
    uid for ``table(N)`` bookkeeping. ``axis`` may also be the ``id``
    pseudo-axis introduced by the Section 4 rewrite of ``id(π)``.
    """

    __slots__ = ("axis", "node_test", "predicates")

    def __init__(self, axis: str, node_test: NodeTest, predicates: list[Expr] | None = None):
        super().__init__()
        self.axis = axis
        self.node_test = node_test
        self.predicates = list(predicates or [])

    def children(self) -> list[AstNode]:
        return list(self.predicates)

    def __repr__(self) -> str:
        return f"Step({self.axis}::{self.node_test!r}, preds={self.predicates!r})"


class Path(Expr):
    """A location path, possibly rooted at a filter expression.

    * ``absolute`` — starts at the document root (``/π``).
    * ``primary`` — a FilterExpr start: ``primary[p1]...[pk]/step/...``;
      ``primary_predicates`` filter the primary's node-set in document
      order (the W3C rule for predicates outside location steps).
    * ``steps`` — the location steps.

    A relative location path has ``absolute=False, primary=None``. The
    parser never produces a Path with both ``absolute`` and ``primary``.
    """

    __slots__ = ("absolute", "primary", "primary_predicates", "steps")

    def __init__(
        self,
        absolute: bool = False,
        primary: Expr | None = None,
        primary_predicates: list[Expr] | None = None,
        steps: list[Step] | None = None,
    ):
        super().__init__()
        if absolute and primary is not None:
            raise ValueError("a path cannot be both absolute and primary-rooted")
        self.absolute = absolute
        self.primary = primary
        self.primary_predicates = list(primary_predicates or [])
        self.steps = list(steps or [])

    def children(self) -> list[AstNode]:
        result: list[AstNode] = []
        if self.primary is not None:
            result.append(self.primary)
        result.extend(self.primary_predicates)
        result.extend(self.steps)
        return result

    def is_plain_location_path(self) -> bool:
        """True for pure location paths (no filter-expression start)."""
        return self.primary is None

    def __repr__(self) -> str:
        root = "/" if self.absolute else (repr(self.primary) if self.primary else "")
        return f"Path({root}, steps={self.steps!r})"
