"""XPath 1.0 front end: lexer, AST, parser, normalizer, static analyses.

The parser accepts both abbreviated and unabbreviated XPath 1.0 syntax and
produces the parse tree the paper's algorithms walk (Figures 3 and 6).
:mod:`repro.xpath.normalize` then establishes the paper's Section 2.2
assumptions — all type conversions explicit, variables replaced by their
bindings — and :mod:`repro.xpath.relevance` computes ``Relev(N)``
(Section 3.1). :mod:`repro.xpath.fragments` classifies expressions into
Core XPath (Definition 12) and the Extended Wadler Fragment (Section 4).
"""

from repro.xpath.ast import (
    BinaryOp,
    Expr,
    FunctionCall,
    Negate,
    NodeTest,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
    VariableRef,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.normalize import normalize
from repro.xpath.relevance import compute_relevance
from repro.xpath.rewrite import RewriteStats, rewrite
from repro.xpath.explain import explain, explain_text
from repro.xpath.unparse import unparse, dump_tree

__all__ = [
    "BinaryOp",
    "Expr",
    "FunctionCall",
    "Negate",
    "NodeTest",
    "NumberLiteral",
    "Path",
    "Step",
    "StringLiteral",
    "Union",
    "VariableRef",
    "parse_xpath",
    "normalize",
    "compute_relevance",
    "rewrite",
    "RewriteStats",
    "explain",
    "explain_text",
    "unparse",
    "dump_tree",
]
