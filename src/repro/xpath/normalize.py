"""Normalization: establish the paper's Section 2.2 assumptions.

The paper's semantics (and all four evaluation algorithms) assume a
*normalized* parse tree:

1. **Variables are gone** — "each variable is replaced by the (constant)
   value of the input variable binding".
2. **All type conversions are explicit** — ``boolean()``, ``number()``,
   ``string()`` calls appear wherever XPath 1.0's implicit conversion
   rules would fire: predicate truth tests, and/or operands, arithmetic
   operands, and function arguments per signature. A numeric predicate
   ``[e]`` becomes ``[position() = e]`` (W3C §2.4).
3. **``id`` chains over node-sets are axis steps** — Section 4's rewrite
   of ``id(id(...(π)...))`` to ``π/id/id/.../id``, treating ``id`` as a
   pseudo-axis. ``id(s)`` for scalar ``s`` stays a function call.
4. **Unions are lifted out of existential positions** —
   ``boolean(π1|π2)`` → ``boolean(π1) or boolean(π2)`` and
   ``(π1|π2) RelOp s`` → ``(π1 RelOp s) or (π2 RelOp s)``, as assumed by
   ``propagate_path_backwards`` ("we assume w.l.o.g. that all occurrences
   of '|' have been removed").

The pass is bottom-up and annotates every node's static ``value_type``
(every XPath 1.0 expression has one of the four types statically).
"""

from __future__ import annotations

from repro.errors import UnboundVariableError, XPathTypeError
from repro.functions.library import signature_for
from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NodeTest,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
    VariableRef,
)

_ARITHMETIC_OPS = frozenset({"+", "-", "*", "div", "mod"})
_COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})
_BOOLEAN_OPS = frozenset({"and", "or"})

_CONVERSION_FUNCTIONS = {"bool": "boolean", "num": "number", "str": "string"}


def _typed(expr: Expr, value_type: str) -> Expr:
    expr.value_type = value_type
    return expr


def _convert(expr: Expr, to_type: str) -> Expr:
    """Wrap ``expr`` in an explicit conversion call if its type differs."""
    if expr.value_type == to_type:
        return expr
    if to_type == "nset":
        raise XPathTypeError(
            f"a {expr.value_type} expression cannot be converted to a node-set"
        )
    call = FunctionCall(_CONVERSION_FUNCTIONS[to_type], [expr])
    return _typed(call, to_type)


def _self_node_path() -> Path:
    """``self::node()`` — the default argument of context-defaulting
    functions like ``string()``."""
    path = Path(steps=[Step("self", NodeTest("node"))])
    return _typed(path, "nset")


class _Normalizer:
    def __init__(self, variables: dict[str, object] | None):
        self.variables = variables or {}

    # ------------------------------------------------------------------

    def normalize(self, expr: Expr) -> Expr:
        if isinstance(expr, NumberLiteral):
            return _typed(expr, "num")
        if isinstance(expr, StringLiteral):
            return _typed(expr, "str")
        if isinstance(expr, ConstantNodeSet):
            return _typed(expr, "nset")
        if isinstance(expr, VariableRef):
            return self._substitute_variable(expr)
        if isinstance(expr, Negate):
            operand = _convert(self.normalize(expr.operand), "num")
            expr.operand = operand
            return _typed(expr, "num")
        if isinstance(expr, BinaryOp):
            return self._normalize_binary(expr)
        if isinstance(expr, Union):
            left = self.normalize(expr.left)
            right = self.normalize(expr.right)
            if left.value_type != "nset" or right.value_type != "nset":
                raise XPathTypeError("operands of '|' must be node-sets")
            expr.left, expr.right = left, right
            return _typed(expr, "nset")
        if isinstance(expr, Path):
            return self._normalize_path(expr)
        if isinstance(expr, FunctionCall):
            return self._normalize_call(expr)
        raise XPathTypeError(f"cannot normalize node {expr!r}")

    # ------------------------------------------------------------------

    def _substitute_variable(self, ref: VariableRef) -> Expr:
        if ref.name not in self.variables:
            raise UnboundVariableError(ref.name)
        value = self.variables[ref.name]
        if isinstance(value, bool):
            return _typed(FunctionCall("true" if value else "false", []), "bool")
        if isinstance(value, (int, float)):
            return _typed(NumberLiteral(float(value)), "num")
        if isinstance(value, str):
            return _typed(StringLiteral(value), "str")
        if isinstance(value, (set, frozenset, list, tuple)):
            return _typed(ConstantNodeSet(value), "nset")
        raise XPathTypeError(f"unsupported variable binding type for ${ref.name}: {type(value)}")

    def _normalize_binary(self, expr: BinaryOp) -> Expr:
        left = self.normalize(expr.left)
        right = self.normalize(expr.right)
        if expr.op in _BOOLEAN_OPS:
            expr.left = _convert(left, "bool")
            expr.right = _convert(right, "bool")
            return _typed(expr, "bool")
        if expr.op in _ARITHMETIC_OPS:
            expr.left = _convert(left, "num")
            expr.right = _convert(right, "num")
            return _typed(expr, "num")
        if expr.op in _COMPARISON_OPS:
            # Figure 1 defines comparison on all type pairs; no conversion
            # is inserted. Lift unions out first (Section 4 / Section 6
            # pseudo-code assumption).
            lifted = self._lift_union_comparison(expr.op, left, right)
            if lifted is not None:
                return lifted
            expr.left, expr.right = left, right
            return _typed(expr, "bool")
        raise XPathTypeError(f"unknown binary operator {expr.op!r}")

    def _lift_union_comparison(self, op: str, left: Expr, right: Expr) -> Expr | None:
        """``(π1|π2) RelOp e`` → ``(π1 RelOp e) or (π2 RelOp e)`` (both
        sides checked). Sound because node-set comparisons are existential
        over the set, and a union is the union of its branches."""
        if isinstance(left, Union):
            # Rebuild explicitly to avoid sharing subtrees between branches.
            return self._make_or(
                self._normalize_binary(BinaryOp(op, left.left, right)),
                self._normalize_binary(BinaryOp(op, left.right, _clone(right))),
            )
        if isinstance(right, Union):
            return self._make_or(
                self._normalize_binary(BinaryOp(op, left, right.left)),
                self._normalize_binary(BinaryOp(op, _clone(left), right.right)),
            )
        return None

    def _make_or(self, left: Expr, right: Expr) -> Expr:
        return _typed(BinaryOp("or", left, right), "bool")

    def _normalize_path(self, path: Path) -> Expr:
        if path.primary is not None:
            primary = self.normalize(path.primary)
            if primary.value_type != "nset":
                raise XPathTypeError(
                    "a filter expression followed by predicates or '/' must be a node-set, "
                    f"got {primary.value_type}"
                )
            path.primary = primary
        path.primary_predicates = [self._normalize_predicate(p) for p in path.primary_predicates]
        for step in path.steps:
            step.predicates = [self._normalize_predicate(p) for p in step.predicates]
            step.value_type = "nset"
        return _typed(path, "nset")

    def _normalize_predicate(self, expr: Expr) -> Expr:
        """W3C §2.4: a numeric predicate ``[e]`` means
        ``[position() = e]``; anything else is wrapped in ``boolean()``."""
        normalized = self.normalize(expr)
        if normalized.value_type == "num":
            position = _typed(FunctionCall("position", []), "num")
            return _typed(BinaryOp("=", position, normalized), "bool")
        if normalized.value_type == "bool":
            return self._lift_boolean_union(normalized)
        return self._lift_boolean_union(_convert(normalized, "bool"))

    def _lift_boolean_union(self, expr: Expr) -> Expr:
        """``boolean(π1|π2)`` → ``boolean(π1) or boolean(π2)``."""
        if (
            isinstance(expr, FunctionCall)
            and expr.name == "boolean"
            and len(expr.args) == 1
            and isinstance(expr.args[0], Union)
        ):
            union = expr.args[0]
            return self._make_or(
                self._lift_boolean_union(_typed(FunctionCall("boolean", [union.left]), "bool")),
                self._lift_boolean_union(_typed(FunctionCall("boolean", [union.right]), "bool")),
            )
        return expr

    def _normalize_call(self, call: FunctionCall) -> Expr:
        signature = signature_for(call.name)
        signature.check_arity(len(call.args))
        args = [self.normalize(a) for a in call.args]
        if not args and signature.defaults_to_context:
            args = [_self_node_path()]
        # Section 4 rewrite: id over a node-set becomes the id pseudo-axis.
        if call.name == "id" and args and args[0].value_type == "nset":
            return self._rewrite_id_axis(args[0])
        converted: list[Expr] = []
        for index, arg in enumerate(args):
            param_index = min(index, len(signature.params) - 1)
            param = signature.params[param_index]
            if param == "object":
                converted.append(arg)
            elif param == "nset":
                if arg.value_type != "nset":
                    raise XPathTypeError(
                        f"argument {index + 1} of {call.name}() must be a node-set"
                    )
                converted.append(arg)
            else:
                converted.append(_convert(arg, param))
        call.args = converted
        result = _typed(call, signature.returns)
        if call.name == "boolean":
            return self._lift_boolean_union(result)
        return result

    def _rewrite_id_axis(self, arg: Expr) -> Expr:
        """``id(π)`` ≡ π extended with one ``id``-axis step (Section 4)."""
        id_step = Step("id", NodeTest("node"))
        id_step.value_type = "nset"
        if isinstance(arg, Path):
            arg.steps.append(id_step)
            return _typed(arg, "nset")
        # Union / constant node-set primary: root a new path at it.
        return _typed(Path(primary=arg, steps=[id_step]), "nset")


def _clone(expr: Expr) -> Expr:
    """Deep-copy an already-normalized subtree with fresh uids.

    Needed by the union-lifting rewrites, which duplicate the scalar side
    of a comparison into both branches; sharing one AST object between two
    parse-tree positions would confuse ``table(N)`` bookkeeping.
    """
    if isinstance(expr, NumberLiteral):
        return _typed(NumberLiteral(expr.value), "num")
    if isinstance(expr, StringLiteral):
        return _typed(StringLiteral(expr.value), "str")
    if isinstance(expr, ConstantNodeSet):
        return _typed(ConstantNodeSet(expr.nodes), "nset")
    if isinstance(expr, Negate):
        return _typed(Negate(_clone(expr.operand)), expr.value_type)
    if isinstance(expr, BinaryOp):
        return _typed(BinaryOp(expr.op, _clone(expr.left), _clone(expr.right)), expr.value_type)
    if isinstance(expr, Union):
        return _typed(Union(_clone(expr.left), _clone(expr.right)), expr.value_type)
    if isinstance(expr, FunctionCall):
        return _typed(FunctionCall(expr.name, [_clone(a) for a in expr.args]), expr.value_type)
    if isinstance(expr, Path):
        clone = Path(
            absolute=expr.absolute,
            primary=_clone(expr.primary) if expr.primary is not None else None,
            primary_predicates=[_clone(p) for p in expr.primary_predicates],
            steps=[_clone_step(s) for s in expr.steps],
        )
        return _typed(clone, expr.value_type)
    raise XPathTypeError(f"cannot clone node {expr!r}")


def _clone_step(step: Step) -> Step:
    clone = Step(step.axis, step.node_test, [_clone(p) for p in step.predicates])
    clone.value_type = "nset"
    return clone


def normalize(expr: Expr, variables: dict[str, object] | None = None) -> Expr:
    """Normalize a freshly parsed expression (see module docstring).

    Args:
        expr: AST from :func:`repro.xpath.parser.parse_xpath`.
        variables: variable bindings (`$x` values): Python bool/float/str
            or an iterable of nodes.

    Returns the normalized, statically typed AST (shares mutated nodes
    with the input — reparse rather than reuse the raw AST).
    """
    return _Normalizer(variables).normalize(expr)
