"""Command-line XPath tool: ``repro-xpath`` / ``python -m repro``.

Examples::

    repro-xpath --file doc.xml "//book[price > 20]/title"
    repro-xpath --xml "<a><b/></a>" --explain "/child::a/child::b"
    repro-xpath --file doc.xml --compare "//a[position() = last()]"

``--explain`` prints the normalized parse tree with static types and
``Relev`` sets plus fragment classification; ``--compare`` runs all
polynomial algorithms (and, for small inputs, the naive baseline) and
reports agreement — a one-shot differential check.
"""

from __future__ import annotations

import argparse
import sys

from repro.engine import ALGORITHMS, XPathEngine
from repro.errors import ReproError
from repro.xml.document import Node
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize_node
from repro.xpath.explain import explain_text
from repro.xpath.unparse import dump_tree, unparse


def _render_node(node: Node, style: str) -> str:
    if style == "path":
        return node.path()
    if style == "xml":
        return serialize_node(node)
    return node.string_value


def _render_result(result, style: str) -> str:
    if isinstance(result, list):
        if not result:
            return "(empty node-set)"
        return "\n".join(_render_node(node, style) for node in result)
    if isinstance(result, bool):
        return "true" if result else "false"
    return str(result)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath",
        description="Evaluate an XPath 1.0 query with the Gottlob/Koch/Pichler algorithms.",
    )
    parser.add_argument("query", help="XPath 1.0 query (abbreviated syntax accepted)")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", "-f", help="XML document file")
    source.add_argument("--xml", help="inline XML document string")
    parser.add_argument(
        "--algorithm",
        "-a",
        choices=ALGORITHMS,
        default="auto",
        help="evaluation algorithm (default: auto fragment dispatch)",
    )
    parser.add_argument(
        "--output",
        "-o",
        choices=("path", "xml", "value"),
        default="path",
        help="node rendering: debug path, serialized XML, or string value",
    )
    parser.add_argument(
        "--strip-whitespace",
        action="store_true",
        help="drop whitespace-only text nodes while parsing",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the normalized parse tree, Relev sets, fragment classification, "
        "and the per-subexpression evaluation plan",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="apply the semantics-preserving rewrite pass before evaluation",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run every algorithm and check they agree",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.file:
            with open(args.file, encoding="utf-8") as handle:
                source = handle.read()
        else:
            source = args.xml
        document = parse_document(source, keep_whitespace_text=not args.strip_whitespace)
        engine = XPathEngine(document, optimize=args.optimize)
        compiled = engine.compile(args.query)

        if args.explain:
            print("normalized query:", unparse(compiled.ast))
            print("result type:     ", compiled.result_type)
            core = "yes" if compiled.is_core_xpath else f"no ({compiled.core_violation})"
            wadler = (
                "yes" if compiled.is_extended_wadler else f"no ({compiled.wadler_violation})"
            )
            print("Core XPath:      ", core)
            print("Extended Wadler: ", wadler)
            print("bottom-up paths: ", compiled.bottomup_path_count)
            print("auto algorithm:  ", compiled.best_algorithm())
            if compiled.rewrite_stats is not None:
                print("rewrites applied:", compiled.rewrite_stats.total())
            print("parse tree:")
            print(dump_tree(compiled.ast, indent="    "))
            print("evaluation plan (per-subexpression strategy, Corollary 11):")
            print(explain_text(compiled.ast))
            print()

        if args.compare:
            candidates = ["topdown", "mincontext", "optmincontext"]
            if len(document.nodes) <= 40:
                candidates = ["naive", "bottomup"] + candidates
            if compiled.is_core_xpath:
                candidates.append("corexpath")
            outcomes = {}
            for name in candidates:
                outcomes[name] = engine.evaluate(compiled, algorithm=name)
            rendered = {name: _render_result(value, args.output) for name, value in outcomes.items()}
            agree = len(set(rendered.values())) == 1
            for name, text in rendered.items():
                print(f"--- {name} ---")
                print(text)
            print("AGREE" if agree else "DISAGREE", file=sys.stderr)
            return 0 if agree else 2

        result = engine.evaluate(compiled, algorithm=args.algorithm)
        print(_render_result(result, args.output))
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
