"""Command-line XPath tool: ``repro-xpath`` / ``python -m repro``.

Three modes:

* the default (legacy) mode evaluates one query against one document;
* ``repro-xpath plan QUERY`` compiles a query and prints its *logical*
  plan — normalized form, fragment classification, and the algorithm the
  static ``auto`` dispatch selects — without needing a document.
  ``plan --explain`` additionally prints stage 2 of the two-stage
  compilation: the per-document *physical* specialization — the document
  profile (``|dom|``, depth, fanout, text ratio), the cost-model
  estimate for every candidate evaluator, the chosen algorithm, and the
  rationale (which profile/plan features drove the choice). Give
  ``plan`` a real document via ``--xml``/``--file`` to specialize for
  it; without one, two representative profiles (a small and a large
  document) are specialized so the decision surface is still visible.
  ``plan --explain-batch QUERY...`` accepts several queries and prints
  the *batch-shared step DAG* the service would build for them — which
  step prefixes unify, which plans consume them, and which plans stay
  independent (and why);
* ``repro-xpath batch`` evaluates many queries against many documents
  through :class:`repro.service.QueryService`, sharing the compiled-plan
  cache and per-document caches, and can report cache statistics.
  Per-document specialization is on by default; ``--no-specialize``
  reproduces the static document-blind fragment dispatch exactly.
  Batch-step sharing (the shared-prefix DAG) is likewise on by default
  for ``auto`` batches; ``--no-share`` reproduces fully independent
  per-cell evaluation byte-identically, stats included.
  ``--workers N --backend {serial,thread,process,async}`` shards the
  documents across workers; ``--backend async --stream`` prints each
  (document, query) result as its shard completes instead of waiting for
  the whole batch. ``--snapshot-store PATH`` pulls documents from a
  :class:`repro.xml.store.DocumentStore` instead of (or alongside)
  ``--xml``/``--file`` — snapshot-backed documents skip the XML parse
  and arrive with their node index pre-seeded;
* ``repro-xpath store {snapshot,list,migrate}`` manages a document
  store: ``snapshot`` parses a document and persists it as a binary
  snapshot sidecar (format v2), ``list`` prints the catalog, and
  ``migrate`` rewrites legacy v1 inline entries as snapshot sidecars;
* ``repro-xpath serve`` runs the long-lived serving daemon
  (:mod:`repro.serve`): line-delimited JSON over TCP, per-client
  quotas, cost-priced admission control, per-query deadlines, and
  graceful drain on SIGTERM. ``repro-xpath client`` is the matching
  one-shot client: register documents, run queries, print results —
  with typed server errors mapped onto the same exit-code families.

Examples::

    repro-xpath --file doc.xml "//book[price > 20]/title"
    repro-xpath --xml "<a><b/></a>" --explain "/child::a/child::b"
    repro-xpath --file doc.xml --compare "//a[position() = last()]"
    repro-xpath plan "//a[position() = last()]"
    repro-xpath plan --explain --file doc.xml "//book[price > 20]/title"
    repro-xpath batch --xml "<a><b/></a>" --xml "<a/>" -q "//b" -q "count(//b)" --stats
    repro-xpath batch -f big.xml -f small.xml -q "//b" --workers 2 \\
        --backend async --stream
    repro-xpath store snapshot --store cat.json --name books --file books.xml
    repro-xpath batch --snapshot-store cat.json -q "//book/title"

``--explain`` prints the normalized parse tree with static types and
``Relev`` sets plus fragment classification; ``--compare`` runs all
polynomial algorithms (and, for small inputs, the naive baseline) and
reports agreement — a one-shot differential check.

Exit codes are distinct per error family, so scripts can tell a bad
query from a bad document from a bad invocation:

* 0 — success (and, for ``--compare``, agreement);
* 1 — any other library error (:data:`EXIT_ERROR`);
* 2 — bad invocation, unknown algorithm, or ``--compare`` disagreement
  (:data:`EXIT_USAGE`);
* 3 — unparsable/ill-typed query, including unbound variables
  (:data:`EXIT_QUERY`);
* 4 — malformed XML document, or an unregistered document name over the
  serving protocol (:data:`EXIT_DOCUMENT`);
* 5 — fragment violation, e.g. ``corexpath`` forced onto a query outside
  Core XPath (:data:`EXIT_FRAGMENT`);
* 6 — document-store failure, including corrupt snapshot sidecars
  (:data:`EXIT_STORE`);
* 7 — refused by the serving daemon: admission overload, rate limit,
  quota, or a draining server (:data:`EXIT_OVERLOAD`);
* 8 — query deadline exceeded (:data:`EXIT_DEADLINE`);
* 9 — serving protocol or transport failure (:data:`EXIT_SERVE`).

The class-level table ``_ERROR_EXITS`` and the wire-code table
``_CODE_EXITS`` are kept coherent: for every library error,
``error_exit_code(error) == _CODE_EXITS[error_code(error)]`` — a
query that fails remotely exits exactly as it would have locally.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.axes import KERNEL_MODES, kernel_mode_forced, vector_backend
from repro.engine import ALGORITHMS, XPathEngine
from repro.errors import (
    DeadlineExceededError,
    DocumentFrozenError,
    DocumentNotFinalizedError,
    DocumentStoreError,
    FragmentViolationError,
    OverloadError,
    QuotaExceededError,
    ReproError,
    ServeError,
    UnboundVariableError,
    UnknownAlgorithmError,
    XMLSyntaxError,
    XPathSyntaxError,
    XPathTypeError,
)
from repro.service import (
    EXECUTOR_BACKENDS,
    SHARD_STRATEGIES,
    AsyncQueryService,
    QueryService,
    compile_plan,
    resolve_algorithm,
)
from repro.stats import axis_kernel_stats
from repro.xml.document import Node
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize_node
from repro.xpath.explain import explain_text
from repro.xpath.unparse import dump_tree, unparse


#: Exit codes, one per error family (see the module docstring).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_QUERY = 3
EXIT_DOCUMENT = 4
EXIT_FRAGMENT = 5
EXIT_STORE = 6
EXIT_OVERLOAD = 7
EXIT_DEADLINE = 8
EXIT_SERVE = 9

#: Most-specific-first mapping from error class to exit code (subclasses
#: before their bases, mirroring :data:`repro.errors.ERROR_CODES`).
_ERROR_EXITS = (
    (XPathSyntaxError, EXIT_QUERY),
    (XPathTypeError, EXIT_QUERY),
    (UnboundVariableError, EXIT_QUERY),
    (XMLSyntaxError, EXIT_DOCUMENT),
    (DocumentFrozenError, EXIT_DOCUMENT),
    (DocumentNotFinalizedError, EXIT_DOCUMENT),
    (FragmentViolationError, EXIT_FRAGMENT),
    (UnknownAlgorithmError, EXIT_USAGE),
    (DocumentStoreError, EXIT_STORE),
    (DeadlineExceededError, EXIT_DEADLINE),
    (OverloadError, EXIT_OVERLOAD),
    (QuotaExceededError, EXIT_OVERLOAD),
    (ServeError, EXIT_SERVE),
)

#: Every stable protocol code (:data:`repro.errors.PROTOCOL_CODES`)
#: mapped onto an exit code. Kept coherent with ``_ERROR_EXITS`` — the
#: taxonomy test asserts ``error_exit_code(e) == _CODE_EXITS[
#: error_code(e)]`` for every library error class — so a remote failure
#: relayed by the client exits exactly as the local failure would.
_CODE_EXITS = {
    "QUERY_SYNTAX": EXIT_QUERY,
    "UNKNOWN_FUNCTION": EXIT_QUERY,
    "WRONG_ARITY": EXIT_QUERY,
    "QUERY_TYPE": EXIT_QUERY,
    "UNBOUND_VARIABLE": EXIT_QUERY,
    "XML_SYNTAX": EXIT_DOCUMENT,
    "DOCUMENT_FROZEN": EXIT_DOCUMENT,
    "DOCUMENT_NOT_FINALIZED": EXIT_DOCUMENT,
    "UNKNOWN_DOCUMENT": EXIT_DOCUMENT,
    "EVALUATION": EXIT_ERROR,
    "INTERNAL": EXIT_ERROR,
    "ERROR": EXIT_ERROR,
    "SNAPSHOT_CORRUPT": EXIT_STORE,
    "DOCUMENT_STORE": EXIT_STORE,
    "FRAGMENT_VIOLATION": EXIT_FRAGMENT,
    "UNKNOWN_ALGORITHM": EXIT_USAGE,
    "UNKNOWN_VERB": EXIT_USAGE,
    "DEADLINE": EXIT_DEADLINE,
    "RATE_LIMITED": EXIT_OVERLOAD,
    "OVERLOAD": EXIT_OVERLOAD,
    "QUOTA": EXIT_OVERLOAD,
    "SHUTTING_DOWN": EXIT_OVERLOAD,
    "PROTOCOL": EXIT_SERVE,
    "SERVE": EXIT_SERVE,
    "FRAME_TOO_LARGE": EXIT_SERVE,
}


def error_exit_code(error: ReproError) -> int:
    """The exit code for a library error: distinct nonzero codes per
    family, :data:`EXIT_ERROR` for anything unclassified. Errors
    relayed from a server (:class:`~repro.errors.RemoteError`) carry
    their stable protocol code and map through :data:`_CODE_EXITS`."""
    protocol_code = getattr(error, "protocol_code", None)
    if protocol_code is not None:
        return _CODE_EXITS.get(protocol_code, EXIT_ERROR)
    for error_class, code in _ERROR_EXITS:
        if isinstance(error, error_class):
            return code
    return EXIT_ERROR


def _fail(message: str, code: int) -> int:
    """Print a one-line error and return the exit code."""
    print(f"error: {message}", file=sys.stderr)
    return code


def _render_node(node: Node, style: str) -> str:
    if style == "path":
        return node.path()
    if style == "xml":
        return serialize_node(node)
    return node.string_value


def _render_result(result, style: str) -> str:
    if isinstance(result, list):
        if not result:
            return "(empty node-set)"
        return "\n".join(_render_node(node, style) for node in result)
    if isinstance(result, bool):
        return "true" if result else "false"
    return str(result)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath",
        description="Evaluate an XPath 1.0 query with the Gottlob/Koch/Pichler algorithms.",
        epilog=(
            "Subcommands: 'repro-xpath plan QUERY' compiles and prints a query "
            "plan; 'repro-xpath batch ...' evaluates many queries x many "
            "documents through the plan cache; 'repro-xpath store ...' manages "
            "a binary-snapshot document store; 'repro-xpath serve' runs the "
            "serving daemon and 'repro-xpath client' talks to it (each has "
            "its own --help). They are recognized only as the first argument "
            "— to evaluate a query literally named like one, put an option "
            "first (repro-xpath --xml '<r/>' plan) or write it as child::plan."
        ),
    )
    parser.add_argument("query", help="XPath 1.0 query (abbreviated syntax accepted)")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", "-f", help="XML document file")
    source.add_argument("--xml", help="inline XML document string")
    parser.add_argument(
        "--algorithm",
        "-a",
        choices=ALGORITHMS,
        default="auto",
        help="evaluation algorithm (default: auto fragment dispatch)",
    )
    parser.add_argument(
        "--output",
        "-o",
        choices=("path", "xml", "value"),
        default="path",
        help="node rendering: debug path, serialized XML, or string value",
    )
    parser.add_argument(
        "--strip-whitespace",
        action="store_true",
        help="drop whitespace-only text nodes while parsing",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the normalized parse tree, Relev sets, fragment classification, "
        "and the per-subexpression evaluation plan",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="apply the semantics-preserving rewrite pass before evaluation",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run every algorithm and check they agree",
    )
    return parser


# ----------------------------------------------------------------------
# plan subcommand
# ----------------------------------------------------------------------


def build_plan_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath plan",
        description="Compile a query and print its logical plan (stage 1; no "
        "document needed). --explain adds stage 2: the per-document physical "
        "specialization — profile, per-candidate cost estimates, chosen "
        "algorithm, and rationale. --explain-batch accepts several queries "
        "and prints the batch-shared step DAG the service would build.",
    )
    parser.add_argument(
        "query",
        nargs="+",
        help="XPath 1.0 query to compile (several only with --explain-batch)",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="apply the semantics-preserving rewrite pass",
    )
    parser.add_argument(
        "--tree",
        action="store_true",
        help="also print the normalized parse tree and per-subexpression strategies",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the physical specialization stage: document profile, "
        "cost-model estimates per candidate algorithm, the chosen algorithm, "
        "and the rationale (profile features that drove the choice)",
    )
    parser.add_argument(
        "--explain-batch",
        action="store_true",
        help="print the batch-shared step DAG for the given queries: the "
        "materialized step prefixes, their parent links and consumers, and "
        "each plan's residual (or why it evaluates independently)",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--file", "-f", help="XML document to specialize for (implies --explain)"
    )
    source.add_argument(
        "--xml", help="inline XML document to specialize for (implies --explain)"
    )
    return parser


def plan_main(argv: list[str]) -> int:
    args = build_plan_parser().parse_args(argv)
    queries = args.query
    if len(queries) > 1 and not args.explain_batch:
        return _fail(
            "multiple queries require --explain-batch "
            "(plan prints one query's logical plan)",
            EXIT_USAGE,
        )
    # Giving a document *is* asking what runs on it — never ignore it.
    if args.xml or args.file:
        args.explain = True
    plans = []
    for query in queries:
        try:
            plans.append(compile_plan(query, optimize=args.optimize))
        except ReproError as error:
            message = (
                str(error) if len(queries) == 1 else f"query {query!r}: {error}"
            )
            return _fail(message, error_exit_code(error))
    if args.explain_batch:
        from repro.service.batchplan import build_batch_plan

        print(build_batch_plan(plans).describe())
        return 0
    plan = plans[0]
    core = "yes" if plan.is_core_xpath else f"no ({plan.core_violation})"
    wadler = "yes" if plan.is_extended_wadler else f"no ({plan.wadler_violation})"
    print("query:           ", plan.source)
    print("normalized query:", unparse(plan.ast))
    print("result type:     ", plan.result_type)
    print("Core XPath:      ", core)
    print("Extended Wadler: ", wadler)
    print("bottom-up paths: ", plan.bottomup_path_count)
    print("algorithm:       ", plan.algorithm, "(static fragment dispatch)")
    if plan.rewrite_stats is not None:
        print("rewrites applied:", plan.rewrite_stats.total())
    if args.explain:
        code = _print_specialization(args, plan)
        if code != 0:
            return code
    if args.tree:
        print("parse tree:")
        print(dump_tree(plan.ast, indent="    "))
        print("evaluation plan (per-subexpression strategy, Corollary 11):")
        print(explain_text(plan.ast))
    return 0


def _print_specialization(args, plan) -> int:
    """The ``plan --explain`` stage-2 section: specialize the logical
    plan for the given document, or for the representative small/large
    profiles when no document was supplied."""
    from repro.service.specialize import (
        REPRESENTATIVE_PROFILES,
        PlanSpecializer,
        document_profile,
    )

    specializer = PlanSpecializer()
    if args.xml or args.file:
        try:
            if args.file:
                with open(args.file, encoding="utf-8") as handle:
                    source = handle.read()
            else:
                source = args.xml
            document = parse_document(source)
        except OSError as error:
            return _fail(str(error), EXIT_ERROR)
        except ReproError as error:
            return _fail(str(error), error_exit_code(error))
        targets = [("given document", document_profile(document))]
    else:
        targets = list(REPRESENTATIVE_PROFILES)
    print("physical specialization (stage 2, cost-driven):")
    for label, profile in targets:
        physical = specializer.specialize(plan, profile)
        print(f"  [{label}]")
        for line in physical.describe().splitlines():
            print(f"    {line}")
    return 0


# ----------------------------------------------------------------------
# batch subcommand
# ----------------------------------------------------------------------


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath batch",
        description="Evaluate many queries against many documents through the "
        "plan-caching query service.",
    )
    parser.add_argument(
        "--query",
        "-q",
        action="append",
        default=[],
        metavar="QUERY",
        help="a query to evaluate (repeatable)",
    )
    parser.add_argument(
        "--queries-file",
        help="file with one query per line (blank lines and # comments skipped)",
    )
    parser.add_argument(
        "--xml",
        action="append",
        default=[],
        metavar="XML",
        help="an inline XML document (repeatable)",
    )
    parser.add_argument(
        "--file",
        "-f",
        action="append",
        default=[],
        metavar="PATH",
        help="an XML document file (repeatable)",
    )
    parser.add_argument(
        "--snapshot-store",
        metavar="PATH",
        help="a DocumentStore catalog to load documents from — snapshot-"
        "backed entries skip the XML parse and arrive with their node "
        "index pre-seeded",
    )
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="NAME",
        help="with --snapshot-store: load only this named document "
        "(repeatable; default: every document in the store)",
    )
    lazy_group = parser.add_mutually_exclusive_group()
    lazy_group.add_argument(
        "--lazy",
        dest="lazy",
        action="store_true",
        default=True,
        help="with --snapshot-store: decode documents column-only and "
        "materialize Node objects per result (default)",
    )
    lazy_group.add_argument(
        "--eager",
        dest="lazy",
        action="store_false",
        help="with --snapshot-store: rebuild the full boxed node tree at "
        "load time (the pre-lazy behavior)",
    )
    parser.add_argument(
        "--algorithm",
        "-a",
        choices=ALGORITHMS,
        default="auto",
        help="evaluation algorithm for every query (default: auto)",
    )
    parser.add_argument(
        "--output",
        "-o",
        choices=("path", "xml", "value"),
        default="path",
        help="node rendering: debug path, serialized XML, or string value",
    )
    parser.add_argument(
        "--strip-whitespace",
        action="store_true",
        help="drop whitespace-only text nodes while parsing",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="apply the semantics-preserving rewrite pass when compiling plans",
    )
    parser.add_argument(
        "--specialize",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="choose the evaluator per (query, document) with the cost-driven "
        "specializer (default); --no-specialize reproduces the static "
        "document-blind fragment dispatch exactly",
    )
    parser.add_argument(
        "--share",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="unify common step prefixes across the batch's queries and "
        "evaluate each shared (prefix, document) node-set once (default; "
        "applies to --algorithm auto); --no-share reproduces fully "
        "independent per-cell evaluation byte-identically, stats included",
    )
    parser.add_argument(
        "--plan-capacity",
        type=int,
        default=256,
        help="LRU capacity of the compiled-plan cache (default: 256)",
    )
    parser.add_argument(
        "--workers",
        "-w",
        type=int,
        default=1,
        help="shard the documents across this many workers (default: 1, "
        "no sharding)",
    )
    parser.add_argument(
        "--shard-by",
        choices=SHARD_STRATEGIES,
        default="round-robin",
        help="document partitioning strategy for --workers > 1 "
        "(size-balanced weighs documents by node count)",
    )
    parser.add_argument(
        "--backend",
        choices=EXECUTOR_BACKENDS,
        default="thread",
        help="worker backend for --workers > 1 (process gives true "
        "parallelism — documents are rebuilt per worker; async runs a "
        "coroutine scheduler and enables --stream)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="with --backend async: print each result as its shard "
        "completes (completion order) instead of waiting for the batch",
    )
    parser.add_argument(
        "--kernel-mode",
        choices=KERNEL_MODES,
        default=None,
        help="force the axis-kernel dispatch tier for the whole batch: "
        "auto (predicted-cost dispatch, the process default), indexed "
        "(scalar index kernels only), vector (block-vectorized column "
        "programs), or scan (Definition-1 scans — the A/B baseline); "
        "results are byte-identical in every mode",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print plan-cache, result-cache, batch-plan, specializer, and "
        "axis-kernel statistics after the batch",
    )
    return parser


def _load_batch_queries(args) -> list[str]:
    queries = list(args.query)
    if args.queries_file:
        with open(args.queries_file, encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    queries.append(stripped)
    return queries


def _print_batch_stats(
    plan_stats: dict,
    result_stats: dict,
    shards_line: str | None,
    batch_plan: dict | None = None,
):
    """The --stats footer, shared by the barrier and streaming paths."""
    if shards_line is not None:
        print(shards_line, file=sys.stderr)
    print(
        "plan cache:   "
        f"hits={plan_stats['hits']} misses={plan_stats['misses']} "
        f"evictions={plan_stats['evictions']} "
        f"hit rate={plan_stats['hit_rate']:.1%}",
        file=sys.stderr,
    )
    print(
        "result cache: "
        f"hits={result_stats['hits']} misses={result_stats['misses']} "
        f"hit rate={result_stats['hit_rate']:.1%}",
        file=sys.stderr,
    )
    if batch_plan:
        print(
            "batch plan:   "
            f"prefixes={batch_plan['prefix_nodes']} "
            f"shared plans={batch_plan['shared_plans']}/"
            f"{batch_plan['sharable_plans']} "
            f"shared evals={batch_plan['shared_evaluations']} "
            f"memo hits={batch_plan['memo_hits']} "
            f"fallbacks={batch_plan['fallback_cells']} "
            f"steps saved={batch_plan['steps_saved']}",
            file=sys.stderr,
        )


def _stream_batch(args, queries: list[str], documents: list, labels: list[str]) -> int:
    """Drive the async streaming front end: results print as their shard
    completes (completion order, not batch order — every block is
    labeled, so the output is self-describing)."""
    async_service = AsyncQueryService(
        plan_capacity=args.plan_capacity,
        optimize=args.optimize,
        specialize=args.specialize,
    )
    stream = async_service.stream_many(
        queries,
        documents,
        algorithm=args.algorithm,
        workers=args.workers,
        shard_by=args.shard_by,
        share=args.share,
    )

    async def drive() -> None:
        async for item in stream:
            print(
                f"=== {labels[item.document_index]} :: {item.query} "
                f"[{item.algorithm}] ==="
            )
            print(_render_result(item.value, args.output))

    try:
        asyncio.run(drive())
    except ReproError as error:
        return _fail(str(error), error_exit_code(error))
    if args.stats:
        _print_batch_stats(
            stream.plan_stats,
            stream.result_stats,
            f"shards:       {len(stream.shards)} "
            f"(backend=async --stream, strategy={args.shard_by}, "
            "stats are exact sums over shards)",
            stream.batch_plan,
        )
    return 0


def batch_main(argv: list[str]) -> int:
    parser = build_batch_parser()
    args = parser.parse_args(argv)
    if args.kernel_mode is not None:
        with kernel_mode_forced(args.kernel_mode):
            return _batch_main(args)
    return _batch_main(args)


def _batch_main(args) -> int:
    try:
        queries = _load_batch_queries(args)
    except OSError as error:
        return _fail(str(error), EXIT_ERROR)
    if not queries:
        return _fail("no queries given (use -q or --queries-file)", EXIT_USAGE)
    if not args.xml and not args.file and not args.snapshot_store:
        return _fail(
            "no documents given (use --xml, --file, or --snapshot-store)",
            EXIT_USAGE,
        )
    if args.doc and not args.snapshot_store:
        return _fail("--doc requires --snapshot-store", EXIT_USAGE)
    if args.plan_capacity < 1:
        return _fail("--plan-capacity must be >= 1", EXIT_USAGE)
    if args.workers < 1:
        return _fail("--workers must be >= 1", EXIT_USAGE)
    if args.stream and args.backend != "async":
        return _fail("--stream requires --backend async", EXIT_USAGE)
    labels = []
    documents = []
    for inline in args.xml:
        label = f"xml[{len(documents)}]"
        try:
            documents.append(
                parse_document(inline, keep_whitespace_text=not args.strip_whitespace)
            )
        except ReproError as error:
            return _fail(f"document {label}: {error}", error_exit_code(error))
        labels.append(label)
    for path in args.file:
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            documents.append(
                parse_document(source, keep_whitespace_text=not args.strip_whitespace)
            )
        except OSError as error:
            return _fail(str(error), EXIT_ERROR)
        except ReproError as error:
            return _fail(f"document {path}: {error}", error_exit_code(error))
        labels.append(path)
    if args.snapshot_store:
        from repro.xml.store import DocumentStore

        try:
            store = DocumentStore(args.snapshot_store)
            names = args.doc if args.doc else store.names()
            for name in names:
                documents.append(store.load(name, lazy=args.lazy))
                labels.append(f"store:{name}")
        except ReproError as error:
            return _fail(str(error), error_exit_code(error))
    # Compile every query up front so an unparsable query mid-list fails
    # with a one-line message *naming the query* (and, for sharded runs,
    # before any worker spawns). Validation uses a throwaway compile, not
    # the service's cache, so the batch's --stats still report the real
    # compile misses.
    for query in dict.fromkeys(queries):  # dedupe, keep first-error order
        try:
            resolve_algorithm(compile_plan(query, optimize=args.optimize), args.algorithm)
        except ReproError as error:
            return _fail(f"query {query!r}: {error}", error_exit_code(error))
    if args.stream:
        return _stream_batch(args, queries, documents, labels)
    service = QueryService(
        plan_capacity=args.plan_capacity,
        optimize=args.optimize,
        specialize=args.specialize,
    )
    try:
        batch = service.evaluate_many(
            queries,
            documents,
            algorithm=args.algorithm,
            workers=args.workers,
            shard_by=args.shard_by,
            backend=args.backend,
            share=args.share,
        )
    except ReproError as error:
        return _fail(str(error), error_exit_code(error))
    for doc_index, label in enumerate(labels):
        for query_index, query in enumerate(queries):
            algorithm = batch.algorithms[query_index]
            print(f"=== {label} :: {query} [{algorithm}] ===")
            print(_render_result(batch.value(doc_index, query_index), args.output))
    if args.stats:
        shards_line = None
        if args.workers > 1:
            shards_line = (
                f"shards:       {batch.workers} "
                f"(backend={args.backend}, strategy={args.shard_by}, "
                "stats are exact sums over shards)"
            )
        _print_batch_stats(
            batch.plan_stats, batch.result_stats, shards_line, batch.batch_plan
        )
        # Stage-2 memo counters live on the driving service; sharded
        # batches specialize inside per-shard workers instead. The axis
        # kernel counters are process-global for the same reason the
        # node-index cache is — per document, not per service — so they
        # too only describe in-process (workers == 1) evaluation.
        if args.workers == 1:
            specialize_stats = service.cache_stats().get("specialize_cache")
            if specialize_stats is not None:
                print(
                    "specializer:  "
                    f"hits={specialize_stats['hits']} "
                    f"misses={specialize_stats['misses']} "
                    f"hit rate={specialize_stats['hit_rate']:.1%}",
                    file=sys.stderr,
                )
            kernel_stats = axis_kernel_stats.snapshot()
            print(
                "axis kernels: "
                f"index builds={kernel_stats['index_builds']} "
                f"adoptions={kernel_stats['index_adoptions']} "
                f"fused={kernel_stats['fused_hits']} "
                f"fallback scans={kernel_stats['fallback_scans']}",
                file=sys.stderr,
            )
            print(
                "lazy decode:  "
                f"lazy documents={kernel_stats['lazy_documents']} "
                f"nodes materialized={kernel_stats['nodes_materialized']}",
                file=sys.stderr,
            )
            print(
                "vector:       "
                f"programs={kernel_stats['vector_program_runs']} "
                f"ops={kernel_stats['vector_ops']} "
                f"backend={vector_backend()}",
                file=sys.stderr,
            )
    return 0


# ----------------------------------------------------------------------
# store subcommand
# ----------------------------------------------------------------------


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath store",
        description="Manage a binary-snapshot document store: persist parsed "
        "documents as format-v2 snapshot sidecars that later loads (and "
        "'batch --snapshot-store') reconstruct without re-parsing.",
    )
    parser.add_argument(
        "action",
        choices=("snapshot", "list", "migrate"),
        help="snapshot: parse a document and persist it; list: print the "
        "catalog (name, storage format, node count, and bytes on disk vs "
        "decoded column bytes per document); migrate: rewrite legacy v1 "
        "inline entries as v2 snapshot sidecars",
    )
    parser.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="the store's catalog file (created if missing)",
    )
    parser.add_argument(
        "--name",
        help="name to store the document under (snapshot action)",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--file", "-f", help="XML document file to snapshot")
    source.add_argument("--xml", help="inline XML document string to snapshot")
    parser.add_argument(
        "--strip-whitespace",
        action="store_true",
        help="drop whitespace-only text nodes while parsing",
    )
    return parser


def store_main(argv: list[str]) -> int:
    args = build_store_parser().parse_args(argv)
    from repro.xml.store import DocumentStore

    try:
        store = DocumentStore(args.store)
    except ReproError as error:
        return _fail(str(error), error_exit_code(error))
    if args.action == "snapshot":
        if not args.name:
            return _fail("store snapshot requires --name", EXIT_USAGE)
        if not args.xml and not args.file:
            return _fail("store snapshot requires --xml or --file", EXIT_USAGE)
        try:
            if args.file:
                with open(args.file, encoding="utf-8") as handle:
                    source = handle.read()
            else:
                source = args.xml
            document = parse_document(
                source, keep_whitespace_text=not args.strip_whitespace
            )
            sidecar = store.save_snapshot(args.name, document)
        except OSError as error:
            return _fail(str(error), EXIT_ERROR)
        except ReproError as error:
            return _fail(str(error), error_exit_code(error))
        print(f"{args.name}: {len(document.nodes)} nodes -> {sidecar}")
        return EXIT_OK
    if args.action == "list":
        try:
            for name in store.names():
                entry = store._entry(name)
                kind = (
                    "snapshot v2"
                    if entry.get("format") == 2
                    else "legacy v1 inline"
                )
                sizes = store.column_sizes(name)
                print(
                    f"{name}\t{kind}\tnodes={sizes['nodes']}\t"
                    f"disk={sizes['disk_bytes']}B\t"
                    f"columns={sizes['column_bytes']}B"
                )
        except ReproError as error:
            return _fail(str(error), error_exit_code(error))
        return EXIT_OK
    try:
        migrated = store.migrate()
    except ReproError as error:
        return _fail(str(error), error_exit_code(error))
    for name in migrated:
        print(f"migrated: {name}")
    print(f"{len(migrated)} document(s) migrated")
    return EXIT_OK


# ----------------------------------------------------------------------
# serve subcommand
# ----------------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath serve",
        description="Run the serving daemon: line-delimited JSON over TCP "
        "with per-client quotas, cost-priced admission control, per-query "
        "deadlines, and graceful drain on SIGTERM (see repro.serve).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8727,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    parser.add_argument(
        "--max-documents",
        type=int,
        default=64,
        help="per-client registered-document cap",
    )
    parser.add_argument(
        "--max-registered-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="per-client registered source-byte budget",
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=32,
        help="per-client concurrent-query cap",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-client sustained queries/second (default: unlimited)",
    )
    parser.add_argument(
        "--burst", type=int, default=8, help="token-bucket burst for --rate"
    )
    parser.add_argument(
        "--queue-high",
        type=int,
        default=64,
        help="in-flight depth at which admission rejects outright",
    )
    parser.add_argument(
        "--queue-degrade",
        type=int,
        default=16,
        help="in-flight depth at which admission starts degrading",
    )
    parser.add_argument(
        "--max-cost-seconds",
        type=float,
        default=5.0,
        help="admission budget for requests without their own deadline",
    )
    parser.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="deadline applied to requests that do not carry one",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        help="seconds in-flight work gets to finish after SIGTERM",
    )
    parser.add_argument(
        "--batch-workers",
        type=int,
        default=2,
        help="shard workers per BATCH request",
    )
    return parser


def serve_main(argv: list[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    from repro.serve.admission import AdmissionController
    from repro.serve.daemon import XPathDaemon, run_daemon
    from repro.serve.quotas import ClientQuota

    if args.queue_degrade > args.queue_high:
        return _fail(
            "--queue-degrade must not exceed --queue-high", EXIT_USAGE
        )
    service = QueryService()
    daemon = XPathDaemon(
        service=service,
        host=args.host,
        port=args.port,
        quota=ClientQuota(
            max_documents=args.max_documents,
            max_registered_bytes=args.max_registered_bytes,
            max_in_flight=args.max_in_flight,
            rate=args.rate,
            burst=args.burst,
        ),
        admission=AdmissionController(
            service,
            queue_high=args.queue_high,
            queue_degrade=args.queue_degrade,
            max_cost_seconds=args.max_cost_seconds,
        ),
        default_deadline_seconds=(
            None
            if args.default_deadline_ms is None
            else args.default_deadline_ms / 1000.0
        ),
        batch_workers=args.batch_workers,
        drain_grace=args.drain_grace,
    )

    def ready(started: XPathDaemon) -> None:
        print(
            f"repro-xpath serve: listening on {started.host}:{started.port}",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(run_daemon(daemon, ready=ready))
    except KeyboardInterrupt:
        pass
    except ReproError as error:
        return _fail(str(error), error_exit_code(error))
    except OSError as error:
        return _fail(str(error), EXIT_SERVE)
    return EXIT_OK


# ----------------------------------------------------------------------
# client subcommand
# ----------------------------------------------------------------------


def build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xpath client",
        description="One-shot client for the serving daemon: register "
        "documents, run queries, print results. Typed server errors map "
        "onto the same exit-code families as local failures.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="daemon address")
    parser.add_argument("--port", type=int, required=True, help="daemon port")
    parser.add_argument(
        "--client",
        help="client identity (quotas and registrations are per identity; "
        "default: one identity per connection)",
    )
    parser.add_argument(
        "--register",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register an XML file under NAME before querying (repeatable)",
    )
    parser.add_argument(
        "--register-xml",
        action="append",
        default=[],
        metavar="NAME=XML",
        help="register an inline XML string under NAME (repeatable)",
    )
    parser.add_argument(
        "--query",
        "-q",
        action="append",
        default=[],
        metavar="QUERY",
        help="a query to evaluate (repeatable)",
    )
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="NAME",
        help="a registered document to query (repeatable; default: every "
        "document registered by this invocation)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query deadline in milliseconds",
    )
    parser.add_argument(
        "--output",
        "-o",
        choices=("path", "xml", "value"),
        default="path",
        help="node rendering: debug path, serialized XML, or string value",
    )
    parser.add_argument(
        "--no-retry",
        action="store_true",
        help="surface OVERLOAD/RATE_LIMITED refusals immediately instead "
        "of honoring the server's retry_after backoff hints",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="socket timeout in seconds"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the daemon's per-client and global counters afterwards",
    )
    return parser


def _render_response_payload(payload: dict) -> str:
    """Render a QUERY response's result payload like the local modes."""
    if payload.get("kind") == "node-set":
        items = payload.get("items", [])
        return "\n".join(items) if items else "(empty node-set)"
    if payload.get("kind") == "boolean":
        return "true" if payload.get("value") else "false"
    return str(payload.get("value"))


def client_main(argv: list[str]) -> int:
    args = build_client_parser().parse_args(argv)
    import json

    from repro.serve.client import ServeClient

    registrations = []
    for spec, inline in [(s, False) for s in args.register] + [
        (s, True) for s in args.register_xml
    ]:
        name, separator, value = spec.partition("=")
        if not separator or not name:
            return _fail(
                f"bad registration {spec!r} (expected NAME=PATH or NAME=XML)",
                EXIT_USAGE,
            )
        registrations.append((name, value, inline))
    if not args.query and not registrations and not args.stats:
        return _fail(
            "nothing to do (use --register/--register-xml, -q, or --stats)",
            EXIT_USAGE,
        )
    try:
        client = ServeClient(
            host=args.host,
            port=args.port,
            client=args.client,
            timeout=args.timeout,
            max_retries=0 if args.no_retry else 4,
        )
    except OSError as error:
        return _fail(str(error), EXIT_SERVE)
    try:
        with client:
            registered = []
            for name, value, inline in registrations:
                if inline:
                    source = value
                else:
                    with open(value, encoding="utf-8") as handle:
                        source = handle.read()
                client.register(name, source)
                registered.append(name)
            doc_names = args.doc if args.doc else registered
            if args.query and not doc_names:
                return _fail(
                    "no documents to query (use --register or --doc)",
                    EXIT_USAGE,
                )
            for doc_name in doc_names:
                for query in args.query:
                    response = client.query(
                        query,
                        doc_name,
                        deadline_ms=args.deadline_ms,
                        output=args.output,
                        retry=not args.no_retry,
                    )
                    print(
                        f"=== {doc_name} :: {query} "
                        f"[{response.get('algorithm', '?')}] ==="
                    )
                    print(_render_response_payload(response))
            if args.stats:
                print(json.dumps(client.stats(), indent=2), file=sys.stderr)
    except OSError as error:
        return _fail(str(error), EXIT_SERVE)
    except ReproError as error:
        return _fail(str(error), error_exit_code(error))
    return EXIT_OK


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Subcommands are recognized only in first position, so queries that
    # are literally "plan"/"batch"/"store" stay reachable: lead with any
    # option (repro-xpath --xml '<r/>' plan) or spell it as child::plan.
    if argv and argv[0] == "plan":
        return plan_main(argv[1:])
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        return client_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        if args.file:
            with open(args.file, encoding="utf-8") as handle:
                source = handle.read()
        else:
            source = args.xml
        document = parse_document(source, keep_whitespace_text=not args.strip_whitespace)
        engine = XPathEngine(document, optimize=args.optimize)
        compiled = engine.compile(args.query)

        if args.explain:
            print("normalized query:", unparse(compiled.ast))
            print("result type:     ", compiled.result_type)
            core = "yes" if compiled.is_core_xpath else f"no ({compiled.core_violation})"
            wadler = (
                "yes" if compiled.is_extended_wadler else f"no ({compiled.wadler_violation})"
            )
            print("Core XPath:      ", core)
            print("Extended Wadler: ", wadler)
            print("bottom-up paths: ", compiled.bottomup_path_count)
            print("auto algorithm:  ", compiled.best_algorithm())
            if compiled.rewrite_stats is not None:
                print("rewrites applied:", compiled.rewrite_stats.total())
            print("parse tree:")
            print(dump_tree(compiled.ast, indent="    "))
            print("evaluation plan (per-subexpression strategy, Corollary 11):")
            print(explain_text(compiled.ast))
            print()

        if args.compare:
            candidates = ["topdown", "mincontext", "optmincontext"]
            if len(document.nodes) <= 40:
                candidates = ["naive", "bottomup"] + candidates
            if compiled.is_core_xpath:
                candidates.append("corexpath")
            outcomes = {}
            for name in candidates:
                outcomes[name] = engine.evaluate(compiled, algorithm=name)
            rendered = {name: _render_result(value, args.output) for name, value in outcomes.items()}
            agree = len(set(rendered.values())) == 1
            for name, text in rendered.items():
                print(f"--- {name} ---")
                print(text)
            print("AGREE" if agree else "DISAGREE", file=sys.stderr)
            return 0 if agree else 2

        result = engine.evaluate(compiled, algorithm=args.algorithm)
        print(_render_result(result, args.output))
        return 0
    except ReproError as error:
        return _fail(str(error), error_exit_code(error))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
