"""A synchronous client for the serving daemon.

:class:`ServeClient` speaks the line-delimited JSON protocol over a
plain blocking socket — one request, one response, correlated by ``id``
(the client never pipelines, so it needs no reader thread). Server
errors come back typed: serve-family codes reconstruct their real
exception classes (:class:`~repro.errors.OverloadError` with its
``retry_after`` hint, :class:`~repro.errors.DeadlineExceededError` with
the partial-result counts, ...) and everything else raises
:class:`~repro.errors.RemoteError` carrying the stable protocol code,
so CLI exit codes stay faithful across the wire.

Backpressure cooperation: when the server refuses with a retryable code
(``OVERLOAD`` or ``RATE_LIMITED`` *with* a ``retry_after`` hint, or an
in-flight ``QUOTA`` refusal), :meth:`query`/:meth:`batch` honor the
hint — sleeping ``max(hint, backoff)`` where backoff is jittered
exponential (``base * 2**attempt * uniform(0.5, 1.5)``) — up to
``max_retries`` times before surfacing the typed error. Refusals
without a hint (priced cost over the request's own deadline,
``SHUTTING_DOWN``) are never retried: the server said retrying cannot
help. The RNG and sleep are injectable for deterministic tests.
"""

from __future__ import annotations

import random
import socket
import time

from repro.errors import (
    DeadlineExceededError,
    OverloadError,
    ProtocolError,
    QuotaExceededError,
    RateLimitedError,
    RemoteError,
)
from repro.serve.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame

#: Serve-family wire codes that reconstruct their real exception class
#: client-side (everything else raises RemoteError with the code).
_CODE_ERRORS = {
    "OVERLOAD": OverloadError,
    "RATE_LIMITED": RateLimitedError,
    "QUOTA": QuotaExceededError,
    "PROTOCOL": ProtocolError,
}

#: Codes eligible for client-side retry — but only when the server
#: attached a retry_after hint (QUOTA in-flight refusals carry one;
#: registration-budget refusals do not).
_RETRYABLE_CODES = frozenset({"OVERLOAD", "RATE_LIMITED", "QUOTA"})


def response_error(error_payload: dict) -> Exception:
    """The typed exception for one wire error payload."""
    code = error_payload.get("code", "ERROR")
    message = error_payload.get("message", "")
    retry_after = error_payload.get("retry_after")
    if code == "DEADLINE":
        error = DeadlineExceededError(
            message,
            completed=error_payload.get("completed"),
            total=error_payload.get("total"),
        )
        # Batch deadline responses surface their partial result cells.
        error.cells = error_payload.get("cells")
        return error
    cls = _CODE_ERRORS.get(code)
    if cls is not None:
        if issubclass(cls, (OverloadError, QuotaExceededError)):
            return cls(message, retry_after=retry_after)
        return cls(message)
    return RemoteError(code, message)


class ServeClient:
    """One blocking connection to an :class:`~repro.serve.daemon.
    XPathDaemon`. Usable as a context manager (``BYE`` + close on
    exit)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        client: str | None = None,
        timeout: float | None = 30.0,
        max_retries: int = 4,
        backoff_base: float = 0.05,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ):
        self.host = host
        self.port = port
        self.client = client
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._request_id = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        #: Exact client-side response accounting (the zero-lost gate
        #: compares these against the daemon's counters).
        self.responses_received = 0
        self.retries = 0

    # -- context management ---------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        try:
            self.bye()
        except (ProtocolError, OSError):
            pass
        try:
            self._file.close()
        finally:
            self._sock.close()

    # -- framing --------------------------------------------------------

    def send_raw(self, data: bytes) -> None:
        """Ship raw bytes (the malformed-frame fault, client side)."""
        self._sock.sendall(data)

    def read_response(self) -> dict:
        line = self._file.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ProtocolError("connection closed by server")
        frame = decode_frame(line)
        self.responses_received += 1
        return frame

    def request(self, verb: str, **fields) -> dict:
        """One request/response exchange. Returns the ``ok`` response
        payload; raises the typed exception for an error response."""
        self._request_id += 1
        frame = {"verb": verb, "id": self._request_id}
        if self.client is not None:
            frame["client"] = self.client
        frame.update(fields)
        self._sock.sendall(encode_frame(frame))
        response = self.read_response()
        if response.get("id") not in (None, self._request_id):
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._request_id}"
            )
        if response.get("ok"):
            return response
        raise response_error({**response.get("error", {}), **{
            key: value
            for key, value in response.items()
            if key in ("completed", "total", "cells")
        }})

    def _retrying(self, verb: str, **fields) -> dict:
        """:meth:`request` plus the backpressure protocol: honor
        retry_after hints with jittered exponential backoff."""
        attempt = 0
        while True:
            try:
                return self.request(verb, **fields)
            except (OverloadError, QuotaExceededError) as error:
                hint = getattr(error, "retry_after", None)
                if hint is None or attempt >= self.max_retries:
                    raise
                backoff = self.backoff_base * (2**attempt) * self._rng.uniform(0.5, 1.5)
                self._sleep(max(hint, backoff))
                self.retries += 1
                attempt += 1

    # -- verbs ----------------------------------------------------------

    def ping(self) -> dict:
        return self.request("PING")

    def register(self, name: str, xml: str) -> dict:
        return self.request("REGISTER", name=name, xml=xml)

    def unregister(self, name: str) -> dict:
        return self.request("UNREGISTER", name=name)

    def query(
        self,
        query: str,
        doc: str,
        deadline_ms: float | None = None,
        output: str = "path",
        retry: bool = True,
    ) -> dict:
        fields = {"query": query, "doc": doc, "output": output}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        if retry:
            return self._retrying("QUERY", **fields)
        return self.request("QUERY", **fields)

    def batch(
        self,
        queries: list[str],
        docs: list[str] | None = None,
        deadline_ms: float | None = None,
        output: str = "path",
        retry: bool = True,
    ) -> dict:
        fields: dict = {"queries": queries, "output": output}
        if docs is not None:
            fields["docs"] = docs
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        if retry:
            return self._retrying("BATCH", **fields)
        return self.request("BATCH", **fields)

    def stats(self) -> dict:
        return self.request("STATS")["stats"]

    def bye(self) -> dict:
        return self.request("BYE")
