"""The wire protocol: line-delimited JSON frames over TCP.

One request or response per line, UTF-8 JSON objects terminated by
``\\n`` — trivially debuggable with ``nc`` and resynchronizable after a
malformed frame (the next newline starts a clean frame). Requests carry
a ``verb`` and an ``id`` the response echoes, so a client can pipeline
requests on one connection and correlate out-of-order responses.

Verbs (see :mod:`repro.serve.daemon` for semantics)::

    PING        {"verb": "PING", "id": 1}
    REGISTER    {"verb": "REGISTER", "id": 2, "name": "books", "xml": "<a/>"}
    UNREGISTER  {"verb": "UNREGISTER", "id": 3, "name": "books"}
    QUERY       {"verb": "QUERY", "id": 4, "query": "//b", "doc": "books",
                 "deadline_ms": 250, "output": "path"}
    BATCH       {"verb": "BATCH", "id": 5, "queries": ["//b", "count(//b)"],
                 "docs": ["books"], "deadline_ms": 1000}
    STATS       {"verb": "STATS", "id": 6}
    BYE         {"verb": "BYE", "id": 7}

Responses are ``{"id": ..., "ok": true, ...payload...}`` or
``{"id": ..., "ok": false, "error": {"code": CODE, "message": ...,
"retry_after": seconds-or-null}}`` where ``CODE`` is one of the stable
codes in :data:`repro.errors.PROTOCOL_CODES` — the same table the CLI
keys its exit codes on. ``retry_after`` is the server's backoff hint:
present on queue-pressure rejections (``OVERLOAD``, ``RATE_LIMITED``,
``QUOTA``), absent when retrying the same request cannot help (the
priced cost exceeds the request's own deadline).
"""

from __future__ import annotations

import json

from repro.errors import ProtocolError, ReproError, error_code

#: Hard per-frame byte bound (requests and responses). Registration
#: payloads dominate frame size; 32 MiB comfortably fits every document
#: the benchmarks ship while bounding a malicious client's buffer use.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: The request verbs the daemon understands.
VERBS = ("PING", "REGISTER", "UNREGISTER", "QUERY", "BATCH", "STATS", "BYE")


def encode_frame(payload: dict) -> bytes:
    """One frame: compact JSON + newline. Raises
    :class:`~repro.errors.ProtocolError` when the encoded frame would
    exceed :data:`MAX_FRAME_BYTES` (the receiver would reject it)."""
    line = json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return line


def decode_frame(line: bytes) -> dict:
    """Decode one received line into a frame dict. Raises
    :class:`~repro.errors.ProtocolError` for anything that is not a
    single JSON object: resynchronization is the caller's job (skip to
    the next newline), classification is ours."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"malformed frame: expected a JSON object, got {type(payload).__name__}"
        )
    return payload


def ok_response(request_id, **payload) -> dict:
    return {"id": request_id, "ok": True, **payload}


def error_response(
    request_id,
    code: str,
    message: str,
    retry_after: float | None = None,
    **payload,
) -> dict:
    """A typed error response. ``code`` must be a stable protocol code;
    ``retry_after`` (seconds) is the backoff hint clients honor."""
    error = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"id": request_id, "ok": False, "error": error, **payload}


def error_to_response(request_id, error: ReproError) -> dict:
    """Map a library error onto the wire via the stable code table."""
    return error_response(
        request_id,
        error_code(error),
        str(error),
        retry_after=getattr(error, "retry_after", None),
    )
