"""Deterministic fault injection for the serving daemon.

Every failure mode the daemon promises to survive is triggerable on
demand, keyed by query substring so a test (or the EXP-SERVE soak) can
aim a fault at exactly one request in a busy workload:

* **slow evaluator** — ``delay_matching``/``delay_seconds`` sleeps
  inside the worker-thread evaluation, after admission: the way a
  mispriced query blows a deadline in production;
* **worker death** — ``die_matching`` raises inside the evaluation,
  modelling a worker crash; the daemon must convert it into a typed
  ``EVALUATION`` error response, never a lost response;
* **mid-stream disconnect** — ``disconnect_matching`` makes the daemon
  drop the connection right before writing the matching response; the
  client sees EOF, the daemon's counters stay reconciled;
* **malformed frames** are injected from the *client* side (send any
  non-JSON line) — no server seam needed; the protocol resynchronizes
  at the next newline.

The injector also counts ``evaluations_started`` — the proof the
admission tests lean on that a rejected request never reached
evaluation.
"""

from __future__ import annotations

import threading
import time


class FaultInjector:
    """The daemon's fault seam; inert by default.

    Matching is plain substring-in-query, so faults are deterministic
    under any concurrency: the same request always hits the same fault.
    """

    def __init__(
        self,
        delay_matching: str | None = None,
        delay_seconds: float = 0.0,
        die_matching: str | None = None,
        disconnect_matching: str | None = None,
    ):
        self.delay_matching = delay_matching
        self.delay_seconds = delay_seconds
        self.die_matching = die_matching
        self.disconnect_matching = disconnect_matching
        self.evaluations_started = 0
        self.faults_injected = 0
        self._lock = threading.Lock()

    def before_evaluate(self, query: str) -> None:
        """Called inside the evaluation thread, after admission. Sleeps
        (slow evaluator) or raises (worker death) on a match."""
        with self._lock:
            self.evaluations_started += 1
        if self.delay_matching is not None and self.delay_matching in query:
            with self._lock:
                self.faults_injected += 1
            time.sleep(self.delay_seconds)
        if self.die_matching is not None and self.die_matching in query:
            with self._lock:
                self.faults_injected += 1
            raise RuntimeError(
                f"fault injection: worker died evaluating {query!r}"
            )

    def should_disconnect(self, query: str) -> bool:
        """Called right before a response is queued: a match makes the
        daemon drop the connection instead (mid-stream disconnect)."""
        if self.disconnect_matching is not None and self.disconnect_matching in query:
            with self._lock:
                self.faults_injected += 1
            return True
        return False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "evaluations_started": self.evaluations_started,
                "faults_injected": self.faults_injected,
            }
