"""Admission control: price work before doing it, refuse it typed.

The paper's complexity theorems give every (query, document) cell a
computable cost *shape*; the service layer already turned that shape
into numbers — :func:`repro.service.specialize.cost_units` estimates
abstract units per candidate algorithm, :class:`repro.stats.TimingStats`
holds the observed seconds-per-unit EMA per algorithm, and
:class:`repro.service.shard.ShardTimingHistory` holds observed
per-document seconds. The :class:`AdmissionController` composes those
oracles into a pre-evaluation gate:

* **admit** — the priced cost fits the remaining deadline and the queue
  is shallow: evaluate normally (``auto`` specialization, batch sharing
  on);
* **degrade** — the priced cost busts the budget or the queue passed the
  degrade watermark, but the *cheapest admissible* algorithm still
  fits: force that algorithm and drop batch sharing (shared-prefix
  bookkeeping costs latency the request no longer has);
* **reject** — the queue passed the high watermark (typed ``OVERLOAD``
  with a ``retry_after`` hint) or even the cheapest algorithm cannot
  make the deadline (typed ``OVERLOAD`` with *no* hint: retrying the
  same request cannot help).

Everything here is O(candidates) arithmetic over memoized profiles — no
evaluation ever starts for a rejected request, which is what keeps the
daemon's p99 bounded under overload (the EXP-SERVE gate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.service.specialize import cost_units, document_profile


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict for one request (single query or batch).

    ``algorithm`` is ``"auto"`` for admits and the forced cheapest
    admissible evaluator for single-query degrades; ``share`` is False
    whenever the request was degraded. ``retry_after`` is the backoff
    hint for rejections (``None`` when retrying cannot help).
    """

    action: str  # "admit" | "degrade" | "reject"
    algorithm: str = "auto"
    share: bool = True
    priced_seconds: float = 0.0
    reason: str = ""
    retry_after: float | None = None

    @property
    def admitted(self) -> bool:
        return self.action != "reject"

    @property
    def degraded(self) -> bool:
        return self.action == "degrade"


class AdmissionController:
    """Prices (query, document) cells and gates them against deadlines
    and queue depth. One instance per daemon, sharing the daemon
    service's specializer timings and shard history so every served
    evaluation sharpens the next admission decision."""

    #: Seed seconds-per-unit before any timing observations exist.
    #: Deliberately conservative (admission should start strict and
    #: relax as real rates come in); the EMA replaces it after
    #: ``MIN_OBSERVATIONS`` evaluations per algorithm.
    DEFAULT_SECONDS_PER_UNIT = 2e-7
    #: Observations an algorithm needs before its observed rate replaces
    #: the seed (mirrors the specializer's own threshold).
    MIN_OBSERVATIONS = 3
    #: Weight of the per-document shard history in the price floor.
    HISTORY_WEIGHT = 0.25

    def __init__(
        self,
        service,
        queue_high: int = 64,
        queue_degrade: int = 16,
        max_cost_seconds: float = 5.0,
        seconds_per_unit: float | None = None,
    ):
        if queue_degrade > queue_high:
            raise ValueError(
                f"degrade watermark {queue_degrade} above high watermark {queue_high}"
            )
        self.service = service
        self.queue_high = queue_high
        self.queue_degrade = queue_degrade
        self.max_cost_seconds = max_cost_seconds
        self.seconds_per_unit = (
            self.DEFAULT_SECONDS_PER_UNIT if seconds_per_unit is None else seconds_per_unit
        )

    # -- pricing --------------------------------------------------------

    def _rate(self, algorithm: str) -> float:
        """Observed seconds-per-unit for an algorithm, or the seed."""
        specializer = self.service.specializer
        if specializer is None:
            return self.seconds_per_unit
        timings = specializer.timings
        if timings.observation_count(algorithm) < self.MIN_OBSERVATIONS:
            return self.seconds_per_unit
        rate = timings.rate(algorithm)
        return rate if rate is not None else self.seconds_per_unit

    @staticmethod
    def _candidates(plan) -> list[str]:
        """The algorithms legal for a plan regardless of profile — the
        degrade pool. ``corexpath`` joins only inside Core XPath
        (forcing it elsewhere is a fragment violation, not a degrade)."""
        candidates = ["mincontext", "optmincontext"]
        if plan.is_core_xpath:
            candidates.append("corexpath")
        return candidates

    def _history_floor(self, document) -> float:
        """A per-document price floor from the shard timing history: a
        document whose past evaluations ran slow raises every price on
        it, whatever the unit model claims."""
        history = getattr(self.service, "shard_history", None)
        if history is None:
            return 0.0
        predicted = history.predicted_weights([document])
        if not predicted:
            return 0.0
        return self.HISTORY_WEIGHT * predicted[0]

    def price(self, plan, document, algorithm: str = "auto") -> float:
        """Priced seconds for one (query, document) cell: model units ×
        per-algorithm rate, floored by the document's shard history.
        ``auto`` prices the cheapest candidate (what specialization
        would pick, modulo guarantee clamps — admission wants a lower
        bound it can trust, not the exact selection)."""
        profile = document_profile(document)
        if algorithm == "auto":
            model = min(
                cost_units(plan, profile, name) * self._rate(name)
                for name in self._candidates(plan)
            )
        else:
            model = cost_units(plan, profile, algorithm) * self._rate(algorithm)
        return max(model, self._history_floor(document))

    def cheapest(self, plan, documents) -> tuple[str, float]:
        """The cheapest admissible forced algorithm for a plan across
        documents, with its total price — the degrade target."""
        best_name, best_price = None, math.inf
        for name in self._candidates(plan):
            total = sum(self.price(plan, document, name) for document in documents)
            if total < best_price:
                best_name, best_price = name, total
        return best_name, best_price

    # -- the gate -------------------------------------------------------

    def _backoff(self, queue_depth: int) -> float:
        """Queue-pressure retry hint, proportional to the overshoot."""
        over = max(queue_depth - self.queue_degrade, 1)
        return min(0.05 * over, 2.0)

    def decide(
        self,
        plans,
        documents,
        deadline_seconds: float | None = None,
        queue_depth: int = 0,
    ) -> AdmissionDecision:
        """Gate one request — a single plan or a whole batch (every plan
        × every document) — **before any evaluation starts**.

        Single-query degrades force the cheapest admissible algorithm;
        batch degrades drop sharing and keep per-cell ``auto`` (the
        streaming scheduler evaluates one algorithm choice per cell, so
        a batch-wide forced algorithm could only over-price cells).
        """
        plans = list(plans)
        documents = list(documents)
        if queue_depth >= self.queue_high:
            return AdmissionDecision(
                action="reject",
                reason=(
                    f"queue depth {queue_depth} at or above the high "
                    f"watermark {self.queue_high}"
                ),
                retry_after=self._backoff(queue_depth),
            )
        auto_price = sum(
            self.price(plan, document)
            for plan in plans
            for document in documents
        )
        budget = self.max_cost_seconds
        if deadline_seconds is not None:
            budget = min(budget, deadline_seconds)
        crowded = queue_depth >= self.queue_degrade
        if auto_price <= budget and not crowded:
            return AdmissionDecision(
                action="admit", priced_seconds=auto_price, reason="within budget"
            )
        if len(plans) == 1:
            algorithm, degraded_price = self.cheapest(plans[0], documents)
        else:
            algorithm, degraded_price = "auto", auto_price
        if degraded_price <= budget:
            reason = (
                f"queue depth {queue_depth} past the degrade watermark "
                f"{self.queue_degrade}"
                if crowded and auto_price <= budget
                else (
                    f"priced {auto_price:.4f}s over the {budget:.4f}s budget; "
                    f"cheapest admissible fits at {degraded_price:.4f}s"
                )
            )
            return AdmissionDecision(
                action="degrade",
                algorithm=algorithm,
                share=False,
                priced_seconds=degraded_price,
                reason=reason,
            )
        return AdmissionDecision(
            action="reject",
            priced_seconds=degraded_price,
            reason=(
                f"priced cost {degraded_price:.4f}s exceeds the "
                f"{budget:.4f}s budget even degraded"
            ),
            # No hint on purpose: the same request would be refused again.
            retry_after=None,
        )
