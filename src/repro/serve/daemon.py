"""The serving daemon: an asyncio TCP front end over the query service.

One :class:`XPathDaemon` owns a shared :class:`~repro.service.service.
QueryService` (plan cache, sessions, specializer timings), an
:class:`~repro.serve.admission.AdmissionController` priced from that
service's timing histories, per-client :class:`~repro.serve.quotas.
ClientState`, and exact per-client + global :class:`~repro.stats.
ServeStats`. Connections speak the line-delimited JSON protocol of
:mod:`repro.serve.protocol`; requests on one connection are handled
concurrently (pipelining) with responses correlated by ``id`` and
delivered through a bounded per-connection response queue (backpressure
propagates to the evaluation tasks, never unbounded buffering).

The robustness contract, in the order a request meets it:

1. **decode** — malformed lines get a typed ``PROTOCOL`` error and the
   connection resynchronizes at the next newline; oversized frames get
   ``FRAME_TOO_LARGE`` and a close.
2. **quotas** — the client's token bucket (``RATE_LIMITED`` +
   ``retry_after``) and in-flight cap (``QUOTA``) fence static resource
   use before any pricing work.
3. **admission** — the controller prices the (query, document) cells
   from the specializer's cost model × observed per-algorithm rates ×
   per-document shard history and admits, degrades (cheapest admissible
   algorithm, sharing dropped), or rejects with typed ``OVERLOAD`` —
   all *before evaluation starts*.
4. **deadlines** — admitted work runs under ``asyncio.wait_for`` (single
   queries) or a deadline-armed :class:`~repro.service.async_service.
   BatchStream` (batches): expiry always yields a typed ``DEADLINE``
   response — with the partial cells for batches — never a hang.
   Worker threads already evaluating cannot be interrupted, only
   abandoned; their results are dropped and their timing observations
   still sharpen future admissions.
5. **drain** — SIGTERM stops admission (``SHUTTING_DOWN``), lets
   in-flight work finish inside ``drain_grace`` (stragglers are
   cancelled into ``DEADLINE`` responses), flushes every response
   queue, and only then closes: zero lost responses, counters
   reconciled (``admitted == completed + deadlined + failed`` holds
   through the shutdown).

Every failure mode is deterministically testable through the
:class:`~repro.serve.faults.FaultInjector` seam.
"""

from __future__ import annotations

import asyncio
import math
import signal
import time

from repro.errors import (
    DeadlineExceededError,
    OverloadError,
    ProtocolError,
    QuotaExceededError,
    RateLimitedError,
    ReproError,
)
from repro.serve.admission import AdmissionController
from repro.serve.faults import FaultInjector
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_response,
    error_to_response,
    ok_response,
)
from repro.serve.quotas import ClientQuota, ClientState
from repro.service.async_service import AsyncQueryService
from repro.service.service import QueryService
from repro.stats import ServeStats
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize_node


def render_value(value, style: str = "path") -> dict:
    """An XPath result as a JSON-safe payload: node-sets become rendered
    item lists (``path``/``value``/``xml`` styles, matching the CLI),
    scalars keep their type tag."""
    if isinstance(value, list):
        if style == "xml":
            items = [serialize_node(node) for node in value]
        elif style == "value":
            items = [node.string_value for node in value]
        else:
            items = [node.path() for node in value]
        return {"kind": "node-set", "count": len(value), "items": items}
    if isinstance(value, bool):
        return {"kind": "boolean", "value": value}
    if isinstance(value, (int, float)):
        return {"kind": "number", "value": float(value)}
    return {"kind": "string", "value": str(value)}


def _consume_result(future) -> None:
    """Swallow an abandoned evaluation's outcome (result, exception, or
    cancellation) so the event loop never logs it as unretrieved."""
    if not future.cancelled():
        future.exception()


class _Connection:
    """One client connection: reader, writer, the bounded response
    queue, and the set of in-flight request tasks."""

    def __init__(self, reader, writer, default_client: str, queue_size: int):
        self.reader = reader
        self.writer = writer
        self.default_client = default_client
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self.tasks: set[asyncio.Task] = set()
        self.dead = False

    async def send(self, frame: dict) -> None:
        """Queue one response frame (drops silently once the transport
        died — the handler's counters already recorded the outcome)."""
        if not self.dead:
            await self.queue.put(frame)

    async def close_queue(self) -> None:
        await self.queue.put(None)


class XPathDaemon:
    """The long-lived serving daemon. ``port=0`` binds an ephemeral port
    (read :attr:`port` after :meth:`start`)."""

    def __init__(
        self,
        service: QueryService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        quota: ClientQuota | None = None,
        admission: AdmissionController | None = None,
        injector: FaultInjector | None = None,
        default_deadline_seconds: float | None = None,
        batch_workers: int = 2,
        response_queue_size: int = 256,
        drain_grace: float = 5.0,
        client_retention_seconds: float = 900.0,
        max_retained_clients: int = 1024,
    ):
        self.service = service if service is not None else QueryService()
        self.async_service = AsyncQueryService(self.service)
        self.host = host
        self.port = port
        self.quota = quota if quota is not None else ClientQuota()
        self.admission = (
            admission if admission is not None else AdmissionController(self.service)
        )
        self.injector = injector if injector is not None else FaultInjector()
        self.default_deadline_seconds = default_deadline_seconds
        self.batch_workers = batch_workers
        self.response_queue_size = response_queue_size
        self.drain_grace = drain_grace
        self.client_retention_seconds = client_retention_seconds
        self.max_retained_clients = max_retained_clients
        #: Global exact counters; per-client instances in _client_stats.
        self.stats = ServeStats(name="serve")
        self._clients: dict[str, ClientState] = {}
        self._client_stats: dict[str, ServeStats] = {}
        #: Counters of evicted clients, folded here so the exact
        #: ``global == sum(clients)`` identity survives eviction.
        self._evicted_stats = ServeStats(name="serve_evicted")
        self._connections: set[_Connection] = set()
        self._connection_serial = 0
        self._in_flight = 0
        self.draining = False
        self._drain_task: asyncio.Task | None = None
        self._drained = asyncio.Event()
        self._server: asyncio.Server | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.host,
            port=self.port,
            limit=MAX_FRAME_BYTES + 2,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self, signals=(signal.SIGTERM, signal.SIGINT)) -> None:
        """SIGTERM/SIGINT trigger the graceful drain (idempotent)."""
        loop = asyncio.get_running_loop()
        for signum in signals:
            loop.add_signal_handler(signum, self.initiate_drain)

    def initiate_drain(self) -> None:
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self.drain())

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish or deadline-out the
        in-flight work within ``drain_grace``, flush every response
        queue, close. Zero admitted queries lose their response."""
        self.draining = True
        if self._server is not None:
            # Stop accepting. wait_closed() is deferred until after the
            # teardown loop below: on Python >= 3.12.1 it also waits for
            # every client connection, so awaiting it here would hang
            # the drain for as long as any client stays connected.
            self._server.close()
        pending = {task for conn in self._connections for task in conn.tasks}
        if pending:
            done, stragglers = await asyncio.wait(pending, timeout=self.drain_grace)
            for task in stragglers:
                # The handler converts this cancel into a typed DEADLINE
                # response (drained) before finishing — see _run_query.
                task.cancel()
            if stragglers:
                await asyncio.wait(stragglers, timeout=self.drain_grace)
        for conn in list(self._connections):
            await self._teardown_connection(conn, cancel_tasks=False)
        if self._server is not None:
            try:
                await asyncio.wait_for(
                    self._server.wait_closed(), timeout=self.drain_grace
                )
            except asyncio.TimeoutError:
                pass
        self._drained.set()

    async def wait_closed(self) -> None:
        await self._drained.wait()

    # -- client bookkeeping ---------------------------------------------

    def _client(self, frame: dict, conn: _Connection) -> tuple[ClientState, ServeStats]:
        name = frame.get("client")
        if not isinstance(name, str) or not name:
            name = conn.default_client
        state = self._clients.get(name)
        if state is None:
            self._evict_idle_clients()
            state = ClientState(name=name, quota=self.quota)
            self._clients[name] = state
            self._client_stats[name] = ServeStats(name=f"serve_client_{name}")
        state.touch()
        return state, self._client_stats[name]

    def _evict_client(self, name: str) -> None:
        """Drop one client's retained state (registrations included),
        folding its counters into the ``(evicted)`` bucket so the exact
        ``global == sum(clients)`` identity keeps holding."""
        self._clients.pop(name, None)
        stats = self._client_stats.pop(name, None)
        if stats is not None:
            self._evicted_stats.absorb_snapshot(stats.snapshot())

    def _evict_idle_clients(self) -> None:
        """Bound retained client state: drop named clients idle past the
        retention window, then oldest-idle ones beyond the retained-client
        cap. Live connections' default identities and clients with work
        in flight are never touched; anonymous ``conn:N`` state is evicted
        separately at connection teardown. A connected client that stays
        completely silent past the window loses its registrations too —
        periodic PINGs keep it resident."""
        now = time.monotonic()
        live = {conn.default_client for conn in self._connections}
        idle = sorted(
            (state.last_active, name)
            for name, state in self._clients.items()
            if name not in live and state.in_flight == 0
        )
        over_cap = len(self._clients) - self.max_retained_clients
        for index, (last_active, name) in enumerate(idle):
            if index < over_cap or now - last_active >= self.client_retention_seconds:
                self._evict_client(name)

    def stats_snapshot(self) -> dict:
        """The STATS payload: exact global + per-client counters (evicted
        clients' counters aggregated under ``(evicted)``), live gauges,
        and the fault injector's evaluation counts."""
        clients = {
            name: stats.snapshot() for name, stats in self._client_stats.items()
        }
        evicted = self._evicted_stats.snapshot()
        if any(evicted.values()):
            clients["(evicted)"] = evicted
        return {
            "global": self.stats.snapshot(),
            "clients": clients,
            "gauges": {
                name: state.gauges() for name, state in self._clients.items()
            },
            "in_flight": self._in_flight,
            "draining": self.draining,
            "faults": self.injector.snapshot(),
        }

    # -- connection handling --------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        self._connection_serial += 1
        conn = _Connection(
            reader,
            writer,
            default_client=f"conn:{self._connection_serial}",
            queue_size=self.response_queue_size,
        )
        self._connections.add(conn)
        writer_task = asyncio.ensure_future(self._write_loop(conn))
        conn.writer_task = writer_task
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.stats.request()
                    self.stats.malformed_frame()
                    await conn.send(
                        error_response(
                            None,
                            "FRAME_TOO_LARGE",
                            f"frame exceeds the {MAX_FRAME_BYTES}-byte limit",
                        )
                    )
                    break  # cannot resynchronize a partially-read line
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = decode_frame(line)
                except ReproError as error:
                    self.stats.request()
                    self.stats.malformed_frame()
                    await conn.send(error_to_response(None, error))
                    continue
                if frame.get("verb") == "BYE":
                    self.stats.request()
                    if conn.tasks:
                        await asyncio.wait(set(conn.tasks))
                    await conn.send(ok_response(frame.get("id"), bye=True))
                    break
                task = asyncio.ensure_future(self._handle_frame(conn, frame))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        except ConnectionError:
            pass
        finally:
            await self._teardown_connection(conn)

    async def _teardown_connection(self, conn: _Connection, cancel_tasks: bool = True) -> None:
        if conn not in self._connections:
            return
        self._connections.discard(conn)
        if cancel_tasks and conn.tasks:
            # The client is gone mid-flight: cancelled handlers record
            # their queries as failed, keeping admitted == completed +
            # deadlined + failed exact (see _run_query).
            for task in set(conn.tasks):
                task.cancel()
            await asyncio.wait(set(conn.tasks), timeout=self.drain_grace)
        await conn.close_queue()
        try:
            await asyncio.wait_for(conn.writer_task, timeout=self.drain_grace)
        except asyncio.TimeoutError:
            conn.writer_task.cancel()
        conn.dead = True
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        # The anonymous per-connection identity can never be addressed
        # again (serials are unique): retaining it would leak one
        # ClientState + ServeStats per connection for the daemon's life.
        state = self._clients.get(conn.default_client)
        if state is not None and state.in_flight == 0:
            self._evict_client(conn.default_client)

    async def _write_loop(self, conn: _Connection) -> None:
        """Drain the bounded response queue onto the socket; on a broken
        transport keep consuming (and dropping) so handlers never block
        on a queue nobody reads."""
        while True:
            frame = await conn.queue.get()
            if frame is None:
                return
            if conn.dead:
                continue
            try:
                data = encode_frame(frame)
            except ReproError as error:
                # An oversized response (giant node-set) degrades to a
                # typed error frame; the connection stays usable.
                data = encode_frame(
                    error_response(frame.get("id"), "FRAME_TOO_LARGE", str(error))
                )
            try:
                conn.writer.write(data)
                await conn.writer.drain()
            except (ConnectionError, OSError):
                conn.dead = True

    async def _drop_connection(self, conn: _Connection) -> None:
        """Fault injection: hard mid-stream disconnect."""
        conn.dead = True
        try:
            conn.writer.close()
        except (ConnectionError, OSError):
            pass

    # -- request dispatch -----------------------------------------------

    async def _handle_frame(self, conn: _Connection, frame: dict) -> None:
        request_id = frame.get("id")
        verb = frame.get("verb")
        self.stats.request()
        client, client_stats = self._client(frame, conn)
        client_stats.request()
        if verb == "PING":
            await conn.send(ok_response(request_id, pong=True, draining=self.draining))
        elif verb == "STATS":
            await conn.send(ok_response(request_id, stats=self.stats_snapshot()))
        elif verb == "REGISTER":
            await self._handle_register(conn, frame, client, client_stats)
        elif verb == "UNREGISTER":
            await self._handle_unregister(conn, frame, client, client_stats)
        elif verb == "QUERY":
            await self._handle_query(conn, frame, client, client_stats)
        elif verb == "BATCH":
            await self._handle_batch(conn, frame, client, client_stats)
        else:
            await conn.send(
                error_response(
                    request_id, "UNKNOWN_VERB", f"unknown verb {verb!r}"
                )
            )

    async def _handle_register(self, conn, frame, client, client_stats) -> None:
        request_id = frame.get("id")
        if self.draining:
            await conn.send(
                error_response(
                    request_id, "SHUTTING_DOWN", "daemon is draining"
                )
            )
            return
        name = frame.get("name")
        xml = frame.get("xml")
        if not isinstance(name, str) or not name or not isinstance(xml, str):
            await conn.send(
                error_response(
                    request_id,
                    "PROTOCOL",
                    "REGISTER needs a non-empty string 'name' and a string 'xml'",
                )
            )
            return
        source_bytes = len(xml.encode("utf-8"))
        try:
            client.check_register(name, source_bytes)
            document = await asyncio.to_thread(parse_document, xml)
        except ReproError as error:
            await conn.send(error_to_response(request_id, error))
            return
        client.register(name, document, source_bytes)
        await conn.send(
            ok_response(
                request_id,
                name=name,
                nodes=len(document.nodes),
                **client.gauges(),
            )
        )

    async def _handle_unregister(self, conn, frame, client, client_stats) -> None:
        request_id = frame.get("id")
        if self.draining:
            await conn.send(
                error_response(request_id, "SHUTTING_DOWN", "daemon is draining")
            )
            return
        name = frame.get("name")
        if not isinstance(name, str) or not client.unregister(name):
            await conn.send(
                error_response(
                    request_id, "UNKNOWN_DOCUMENT", f"no document {name!r} registered"
                )
            )
            return
        await conn.send(ok_response(request_id, name=name, **client.gauges()))

    # -- QUERY ----------------------------------------------------------

    def _deadline_seconds(self, frame: dict) -> float | None:
        """The request's deadline in seconds. Raises a typed
        :class:`~repro.errors.ProtocolError` on a non-numeric
        ``deadline_ms`` — untrusted wire input must never escape as a
        bare ``ValueError`` that would eat the response."""
        deadline_ms = frame.get("deadline_ms")
        if deadline_ms is None:
            return self.default_deadline_seconds
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise ProtocolError(
                f"'deadline_ms' must be a number, got {type(deadline_ms).__name__}"
            )
        if not math.isfinite(deadline_ms):
            raise ProtocolError(f"'deadline_ms' must be finite, got {deadline_ms!r}")
        return max(float(deadline_ms), 0.0) / 1000.0

    def _reject(self, client_stats: ServeStats, reason: str) -> None:
        self.stats.reject(reason)
        client_stats.reject(reason)

    def _admission_gate(self, frame, client, client_stats):
        """The shared pre-evaluation pipeline for QUERY and BATCH: count
        the query, then drain/rate/slot checks. Returns an error frame to
        send, or ``None`` to proceed (the in-flight slot is then held and
        must be released by the caller)."""
        request_id = frame.get("id")
        self.stats.query()
        client_stats.query()
        if self.draining:
            self._reject(client_stats, "draining")
            return error_response(
                request_id, "SHUTTING_DOWN", "daemon is draining; not admitting"
            )
        try:
            client.check_rate()
        except RateLimitedError as error:
            self._reject(client_stats, "rate")
            return error_to_response(request_id, error)
        try:
            client.acquire_slot()
        except QuotaExceededError as error:
            self._reject(client_stats, "quota")
            return error_to_response(request_id, error)
        return None

    async def _handle_query(self, conn, frame, client, client_stats) -> None:
        refusal = self._admission_gate(frame, client, client_stats)
        if refusal is not None:
            await conn.send(refusal)
            return
        try:
            await self._run_query(conn, frame, client, client_stats)
        finally:
            client.release_slot()

    async def _run_query(self, conn, frame, client, client_stats) -> None:
        request_id = frame.get("id")
        query = frame.get("query")
        doc_name = frame.get("doc")
        try:
            deadline_seconds = self._deadline_seconds(frame)
        except ProtocolError as error:
            self.stats.request_error()
            client_stats.request_error()
            await conn.send(error_to_response(request_id, error))
            return
        document = client.document(doc_name) if isinstance(doc_name, str) else None
        if not isinstance(query, str) or document is None:
            self.stats.request_error()
            client_stats.request_error()
            if not isinstance(query, str):
                await conn.send(
                    error_response(request_id, "PROTOCOL", "QUERY needs a string 'query'")
                )
            else:
                await conn.send(
                    error_response(
                        request_id,
                        "UNKNOWN_DOCUMENT",
                        f"no document {doc_name!r} registered for client "
                        f"{client.name!r}",
                    )
                )
            return
        try:
            plan = self.service.plan(query)
        except ReproError as error:
            self.stats.request_error()
            client_stats.request_error()
            await conn.send(error_to_response(request_id, error))
            return
        decision = self.admission.decide(
            [plan], [document], deadline_seconds, self._in_flight
        )
        if not decision.admitted:
            self._reject(client_stats, "overload")
            await conn.send(
                error_to_response(
                    request_id,
                    OverloadError(decision.reason, retry_after=decision.retry_after),
                )
            )
            return
        self.stats.admit(degraded=decision.degraded)
        client_stats.admit(degraded=decision.degraded)
        self._in_flight += 1
        started = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(
                None, self._evaluate_sync, plan, document, decision.algorithm, query
            )
            if deadline_seconds is not None:
                value = await asyncio.wait_for(
                    asyncio.shield(future), deadline_seconds
                )
            else:
                value = await future
        except asyncio.TimeoutError:
            # The worker thread cannot be interrupted; abandon its result
            # (and swallow its eventual exception) but answer *now*.
            future.add_done_callback(_consume_result)
            self.stats.deadline(drained=self.draining)
            client_stats.deadline(drained=self.draining)
            await conn.send(
                error_response(
                    request_id,
                    "DEADLINE",
                    f"deadline of {deadline_seconds * 1000:.0f}ms exceeded",
                    elapsed_ms=(time.monotonic() - started) * 1000.0,
                )
            )
            return
        except asyncio.CancelledError:
            future.add_done_callback(_consume_result)
            if self.draining:
                # Drain-grace straggler: deadline it out, respond, finish.
                self.stats.deadline(drained=True)
                client_stats.deadline(drained=True)
                await conn.send(
                    error_response(
                        request_id,
                        "DEADLINE",
                        "drain grace expired with the query still running",
                        elapsed_ms=(time.monotonic() - started) * 1000.0,
                    )
                )
                return
            # Client went away mid-flight: no one to answer, but the
            # counters must still reconcile.
            self.stats.fail()
            client_stats.fail()
            raise
        except ReproError as error:
            self.stats.fail(drained=self.draining)
            client_stats.fail(drained=self.draining)
            await conn.send(error_to_response(request_id, error))
            return
        except Exception as error:  # worker death: typed, never lost
            self.stats.fail(drained=self.draining)
            client_stats.fail(drained=self.draining)
            await conn.send(
                error_response(request_id, "EVALUATION", f"evaluation failed: {error}")
            )
            return
        finally:
            self._in_flight -= 1
        self.stats.complete(drained=self.draining)
        client_stats.complete(drained=self.draining)
        if self.injector.should_disconnect(query):
            await self._drop_connection(conn)
            return
        payload = render_value(value, frame.get("output", "path"))
        await conn.send(
            ok_response(
                request_id,
                query=query,
                doc=doc_name,
                algorithm=decision.algorithm,
                degraded=decision.degraded,
                priced_ms=decision.priced_seconds * 1000.0,
                elapsed_ms=(time.monotonic() - started) * 1000.0,
                **payload,
            )
        )

    def _evaluate_sync(self, plan, document, algorithm: str, query: str):
        """Runs in a worker thread: the fault seam, then the service
        (whose timing observations feed the admission oracle)."""
        self.injector.before_evaluate(query)
        return self.service.evaluate(plan, document, algorithm=algorithm)

    # -- BATCH ----------------------------------------------------------

    async def _handle_batch(self, conn, frame, client, client_stats) -> None:
        refusal = self._admission_gate(frame, client, client_stats)
        if refusal is not None:
            await conn.send(refusal)
            return
        try:
            await self._run_batch(conn, frame, client, client_stats)
        finally:
            client.release_slot()

    async def _run_batch(self, conn, frame, client, client_stats) -> None:
        request_id = frame.get("id")
        queries = frame.get("queries")
        doc_names = frame.get("docs") or client.document_names()
        try:
            deadline_seconds = self._deadline_seconds(frame)
        except ProtocolError as error:
            self.stats.request_error()
            client_stats.request_error()
            await conn.send(error_to_response(request_id, error))
            return
        if (
            not isinstance(queries, list)
            or not queries
            or not all(isinstance(query, str) for query in queries)
            or not isinstance(doc_names, list)
            or not doc_names
        ):
            self.stats.request_error()
            client_stats.request_error()
            await conn.send(
                error_response(
                    request_id,
                    "PROTOCOL",
                    "BATCH needs a non-empty string list 'queries' and "
                    "registered documents ('docs' or prior REGISTERs)",
                )
            )
            return
        documents = []
        for name in doc_names:
            document = client.document(name) if isinstance(name, str) else None
            if document is None:
                self.stats.request_error()
                client_stats.request_error()
                await conn.send(
                    error_response(
                        request_id,
                        "UNKNOWN_DOCUMENT",
                        f"no document {name!r} registered for client {client.name!r}",
                    )
                )
                return
            documents.append(document)
        try:
            plans = [self.service.plan(query) for query in queries]
        except ReproError as error:
            self.stats.request_error()
            client_stats.request_error()
            await conn.send(error_to_response(request_id, error))
            return
        decision = self.admission.decide(
            plans, documents, deadline_seconds, self._in_flight
        )
        if not decision.admitted:
            self._reject(client_stats, "overload")
            await conn.send(
                error_to_response(
                    request_id,
                    OverloadError(decision.reason, retry_after=decision.retry_after),
                )
            )
            return
        self.stats.admit(degraded=decision.degraded)
        client_stats.admit(degraded=decision.degraded)
        started = time.monotonic()
        style = frame.get("output", "path")
        cells = []
        total = len(queries) * len(documents)
        stream = None
        self._in_flight += 1
        try:
            stream = self.async_service.stream_many(
                queries,
                documents,
                algorithm=decision.algorithm,
                workers=max(1, min(self.batch_workers, len(documents))),
                share=decision.share,
                deadline_seconds=deadline_seconds,
            )
            async for item in stream:
                cells.append(
                    {
                        "doc": doc_names[item.document_index],
                        "query": item.query,
                        "algorithm": item.algorithm,
                        **render_value(item.value, style),
                    }
                )
        except DeadlineExceededError:
            self.stats.deadline(drained=self.draining)
            client_stats.deadline(drained=self.draining)
            await conn.send(
                error_response(
                    request_id,
                    "DEADLINE",
                    f"batch deadline exceeded with {len(cells)} of {total} "
                    "cells complete",
                    cells=cells,
                    completed=len(cells),
                    total=total,
                    elapsed_ms=(time.monotonic() - started) * 1000.0,
                )
            )
            return
        except asyncio.CancelledError:
            if stream is not None:
                await stream.aclose()
            if self.draining:
                self.stats.deadline(drained=True)
                client_stats.deadline(drained=True)
                await conn.send(
                    error_response(
                        request_id,
                        "DEADLINE",
                        "drain grace expired with the batch still running",
                        cells=cells,
                        completed=len(cells),
                        total=total,
                    )
                )
                return
            self.stats.fail()
            client_stats.fail()
            raise
        except ReproError as error:
            self.stats.fail(drained=self.draining)
            client_stats.fail(drained=self.draining)
            await conn.send(error_to_response(request_id, error))
            return
        except Exception as error:  # worker death: typed, never lost
            self.stats.fail(drained=self.draining)
            client_stats.fail(drained=self.draining)
            await conn.send(
                error_response(request_id, "EVALUATION", f"evaluation failed: {error}")
            )
            return
        finally:
            self._in_flight -= 1
        self.stats.complete(drained=self.draining)
        client_stats.complete(drained=self.draining)
        await conn.send(
            ok_response(
                request_id,
                cells=cells,
                completed=len(cells),
                total=total,
                degraded=decision.degraded,
                shared=decision.share,
                priced_ms=decision.priced_seconds * 1000.0,
                elapsed_ms=(time.monotonic() - started) * 1000.0,
            )
        )


async def run_daemon(daemon: XPathDaemon, ready=None) -> None:
    """Start a daemon, install signal handlers, and serve until drained
    (the ``repro-xpath serve`` main loop)."""
    await daemon.start()
    daemon.install_signal_handlers()
    if ready is not None:
        ready(daemon)
    await daemon.wait_closed()
