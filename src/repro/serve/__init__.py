"""``repro.serve`` — the serving daemon, and why it admits before it works.

The paper's result is that Core XPath evaluation is *predictable*:
cost is a polynomial of measurable quantities (document size, query
size, fragment), not a surprise discovered mid-evaluation. This package
turns that predictability into an operational contract. A long-lived
daemon (:class:`~repro.serve.daemon.XPathDaemon`) fronts one shared
:class:`~repro.service.service.QueryService` over a line-delimited JSON
TCP protocol (:mod:`repro.serve.protocol`), and every request walks the
same gauntlet **before any evaluation starts**:

1. **Quotas** (:mod:`repro.serve.quotas`) — static per-client fences:
   registered-document count and byte budget, an in-flight cap, and a
   token-bucket query rate. Refusals are typed (``QUOTA``,
   ``RATE_LIMITED``) and carry ``retry_after`` hints when waiting helps.
2. **Admission** (:mod:`repro.serve.admission`) — the dynamic gate. Each
   (query, document) cell is priced from the specializer's cost model
   (abstract units per candidate algorithm) times the observed
   seconds-per-unit rate, floored by the document's shard-timing
   history; the price is compared against the request's remaining
   deadline and the daemon's queue depth. The verdict is admit, degrade
   (force the cheapest admissible algorithm and drop batch sharing —
   reduced service beats refusal), or a typed ``OVERLOAD`` rejection.
   Because rejection happens at pricing time, an overloaded daemon's
   refusal latency — and hence its p99 — stays bounded no matter what
   is thrown at it; the :class:`~repro.serve.faults.FaultInjector`'s
   ``evaluations_started`` counter is the auditable proof that rejected
   work never ran.
3. **Deadlines** — admitted work runs under cooperative cancellation:
   ``asyncio.wait_for`` for single queries, a deadline-armed
   :class:`~repro.service.async_service.BatchStream` for batches.
   Expiry always produces a typed ``DEADLINE`` response (with the
   partial cells, for batches) — never a hang, never a silent drop.
4. **Drain** — SIGTERM flips the daemon into draining: new work is
   refused with ``SHUTTING_DOWN``, in-flight work finishes (or is
   deadlined out) within the grace window, response queues are flushed,
   and the exact per-client counters (:class:`~repro.stats.ServeStats`)
   still reconcile: ``admitted == completed + deadlined + failed``,
   with zero admitted queries losing their response.

:class:`~repro.serve.client.ServeClient` is the matching client: typed
errors reconstructed from stable protocol codes, and jittered
exponential backoff that honors the server's ``retry_after`` hints.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.client import ServeClient
from repro.serve.daemon import XPathDaemon, run_daemon
from repro.serve.faults import FaultInjector
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    VERBS,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
)
from repro.serve.quotas import ClientQuota, ClientState, TokenBucket

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ClientQuota",
    "ClientState",
    "FaultInjector",
    "MAX_FRAME_BYTES",
    "ServeClient",
    "TokenBucket",
    "VERBS",
    "XPathDaemon",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "run_daemon",
]
