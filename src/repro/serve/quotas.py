"""Per-client quotas: registration budgets, in-flight caps, query rate.

Quotas are the daemon's *static* resource fences, checked before the
dynamic admission controller ever prices a query: a client may hold at
most ``max_documents`` registered documents totalling
``max_registered_bytes`` of source, run at most ``max_in_flight``
queries concurrently, and issue queries no faster than the
``rate``/``burst`` token bucket allows. Every check is cheap (O(1)
arithmetic) and every refusal is typed — ``QUOTA`` or ``RATE_LIMITED``
with a ``retry_after`` hint when waiting can help.

The token bucket takes an injectable monotonic ``clock`` so the tests
drive it deterministically; the daemon uses ``time.monotonic``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import QuotaExceededError, RateLimitedError


@dataclass(frozen=True)
class ClientQuota:
    """The per-client limits, one frozen instance per daemon.

    ``rate`` is sustained queries/second and ``burst`` the bucket
    capacity; ``rate=None`` disables rate limiting. The other limits are
    always enforced (set them large rather than off: an unbounded client
    is exactly what admission control exists to prevent).
    """

    max_documents: int = 64
    max_registered_bytes: int = 64 * 1024 * 1024
    max_in_flight: int = 32
    rate: float | None = None
    burst: int = 8


class TokenBucket:
    """The classic token bucket, lock-protected and clock-injectable.

    ``try_take()`` either consumes one token or reports the seconds
    until one accrues — the ``retry_after`` hint a rate-limited client
    receives. Refill is computed lazily from elapsed time, so an idle
    bucket costs nothing.
    """

    def __init__(self, rate: float, burst: int, clock=time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_take(self) -> float | None:
        """Take one token. Returns ``None`` on success, else the seconds
        until the next token accrues (never 0: a failed take always
        carries a positive wait)."""
        now = self._clock()
        with self._lock:
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return max((1.0 - self._tokens) / self.rate, 1e-9)


@dataclass
class ClientState:
    """One client's registrations, rate bucket, and live gauges.

    Clients are identified by the ``client`` field of their frames (one
    default identity per connection), so a client's documents survive
    reconnects and its quotas span every connection it opens. Counter
    *events* live in the client's :class:`~repro.stats.ServeStats`;
    this class holds only the current-state gauges quota checks read.
    """

    name: str
    quota: ClientQuota
    clock: object = time.monotonic
    documents: dict = field(default_factory=dict)
    registered_bytes: int = 0
    in_flight: int = 0
    #: Monotonic instant of the client's last frame — the idle measure
    #: the daemon's retention sweep evicts on.
    last_active: float = 0.0
    bucket: TokenBucket | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self):
        self.last_active = self.clock()
        if self.quota.rate is not None:
            self.bucket = TokenBucket(
                self.quota.rate, self.quota.burst, clock=self.clock
            )

    def touch(self) -> None:
        """Mark the client active now (called on every frame it sends)."""
        self.last_active = self.clock()

    # -- registration ---------------------------------------------------

    def check_register(self, name: str, source_bytes: int) -> None:
        """Raise a typed :class:`~repro.errors.QuotaExceededError` when
        registering ``source_bytes`` more would bust a budget."""
        with self._lock:
            replacing = name in self.documents
            if not replacing and len(self.documents) >= self.quota.max_documents:
                raise QuotaExceededError(
                    f"client {self.name!r} already holds "
                    f"{len(self.documents)} registered documents "
                    f"(max_documents={self.quota.max_documents})"
                )
            budget = self.registered_bytes + source_bytes
            if replacing:
                budget -= self.documents[name][1]
            if budget > self.quota.max_registered_bytes:
                raise QuotaExceededError(
                    f"registering {source_bytes} bytes would put client "
                    f"{self.name!r} at {budget} registered bytes "
                    f"(max_registered_bytes={self.quota.max_registered_bytes})"
                )

    def register(self, name: str, document, source_bytes: int) -> None:
        with self._lock:
            if name in self.documents:
                self.registered_bytes -= self.documents[name][1]
            self.documents[name] = (document, source_bytes)
            self.registered_bytes += source_bytes

    def unregister(self, name: str) -> bool:
        with self._lock:
            entry = self.documents.pop(name, None)
            if entry is None:
                return False
            self.registered_bytes -= entry[1]
            return True

    def document(self, name: str):
        with self._lock:
            entry = self.documents.get(name)
            return entry[0] if entry is not None else None

    def document_names(self) -> list[str]:
        with self._lock:
            return list(self.documents)

    # -- query-time checks ----------------------------------------------

    def check_rate(self) -> None:
        """Consume one rate token or raise a typed
        :class:`~repro.errors.RateLimitedError` with the wait hint."""
        if self.bucket is None:
            return
        wait = self.bucket.try_take()
        if wait is not None:
            raise RateLimitedError(
                f"client {self.name!r} exceeded its query rate "
                f"({self.quota.rate}/s, burst {self.quota.burst})",
                retry_after=wait,
            )

    def acquire_slot(self) -> None:
        """Claim one in-flight slot or raise a typed
        :class:`~repro.errors.QuotaExceededError` (retryable: slots free
        as queries finish)."""
        with self._lock:
            if self.in_flight >= self.quota.max_in_flight:
                raise QuotaExceededError(
                    f"client {self.name!r} has {self.in_flight} queries "
                    f"in flight (max_in_flight={self.quota.max_in_flight})",
                    retry_after=0.05,
                )
            self.in_flight += 1

    def release_slot(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def gauges(self) -> dict:
        with self._lock:
            return {
                "documents": len(self.documents),
                "registered_bytes": self.registered_bytes,
                "in_flight": self.in_flight,
            }
