"""OPTMINCONTEXT — Algorithm 8 (Section 5).

The combined query processor: first evaluate every subexpression of
shape ``boolean(π)`` / ``π RelOp s`` (context-free ``s``) *bottom-up*,
innermost first, via :mod:`repro.core.bottomup_paths`; then run
MINCONTEXT, which skips the precomputed subexpressions. Consequences
(Corollary 11 / Theorem 13):

* subexpressions in the Extended Wadler Fragment are evaluated in
  ``O(|D|·|e|²)`` space and ``O(|D|²·|e|²)`` time — their node-set parts
  never materialize a ``dom × 2^dom`` relation;
* Core XPath path subexpressions take ``O(|D|·|π|)`` — after
  normalization their predicates are ``boolean(π')`` nodes, all of which
  are bottom-up eligible, so only linear set sweeps remain (whole-query
  Core XPath is additionally short-circuited to
  :class:`repro.core.corexpath.CoreXPathEvaluator` by the engine);
* everything else falls back to MINCONTEXT's Theorem-7 bounds.
"""

from __future__ import annotations

from repro import stats
from repro.core.bottomup_paths import eval_bottomup_path
from repro.core.context import Context
from repro.core.mincontext import MinContextEvaluator
from repro.xml.document import Document
from repro.xpath.ast import Expr
from repro.xpath.fragments import find_bottomup_paths


class OptMinContextEvaluator:
    """Algorithm 8. Single-use per query, like MINCONTEXT."""

    def __init__(self, document: Document):
        self.document = document
        #: Exposed for inspection/tests: the MINCONTEXT instance whose
        #: tables the bottom-up pass pre-fills.
        self.mincontext = MinContextEvaluator(document)

    def evaluate(self, expr: Expr, context: Context):
        # Step 1: evaluate all bottom-up location paths, innermost first.
        for node in find_bottomup_paths(expr):
            stats.count("optmincontext_bottomup_paths")
            eval_bottomup_path(self.mincontext, node)
        # Step 2: MINCONTEXT (precomputed subexpressions are skipped).
        return self.mincontext.evaluate(expr, context)
