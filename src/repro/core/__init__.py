"""Evaluation algorithms.

Five interchangeable evaluators over the same normalized AST:

* :mod:`repro.core.naive` — the *contemporary engine* baseline the paper's
  introduction measures against (exponential in ``|Q|``).
* :mod:`repro.core.bottomup` — strict bottom-up context-value tables
  (``E↑`` of [11], ``O(|D|³)`` table entries, Section 2.3).
* :mod:`repro.core.topdown` — the vectorized top-down semantics ``E↓``
  of Definition 2 (``O(|D|⁵·|Q|²)`` time / ``O(|D|⁴·|Q|²)`` space).
* :mod:`repro.core.mincontext` — the paper's MINCONTEXT (Sections 3/6):
  ``O(|D|⁴·|Q|²)`` time, ``O(|D|²·|Q|²)`` space.
* :mod:`repro.core.optmincontext` — OPTMINCONTEXT (Section 5):
  MINCONTEXT plus bottom-up evaluation of eligible location paths
  (Section 4) and the linear-time Core XPath fast path (Theorem 13,
  :mod:`repro.core.corexpath`).
"""

from repro.core.context import Context

__all__ = ["Context"]
