"""Strict bottom-up context-value-table evaluation (``E↑`` of [11]).

Section 2.3 recalls the principle: for every parse-tree node, compute the
*complete* context-value table — all valid (context, value) combinations
— from the children's tables, in one post-order pass. Scalar-typed
expressions are tabulated over the full context domain

    C = {⟨cn, cp, cs⟩ | cn ∈ dom, 1 ≤ cp ≤ cs ≤ |dom|},

i.e. ``Θ(|D|³)`` rows per table — exactly the bound the paper quotes when
it notes that with strict bottom-up evaluation "this bound even
deteriorates to |dom|³" (Section 3.1). Node-set expressions are
tabulated per context node (``dom × 2^dom``), as in [11].

This evaluator exists as the reference point for the space experiment
EXP-X2 (its ``Θ(|D|³)`` live cells versus MINCONTEXT's ``O(|D|)``-per-
node tables) and as one more independent oracle for the differential
tests. It is only practical on small documents — which is the point.
"""

from __future__ import annotations

from repro import stats
from repro.core.common import apply_operator, matches_node_test, step_candidates
from repro.core.context import Context
from repro.errors import EvaluationError
from repro.xml.document import Document, Node
from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
)


class BottomUpEvaluator:
    """Full-table ``E↑`` evaluation. Single-use per query."""

    def __init__(self, document: Document):
        self.document = document
        #: uid → table. Scalar tables: {(cn, cp, cs): value}; node-set
        #: tables: {cn: frozenset-of-nodes}.
        self.tables: dict[int, dict] = {}

    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr, context: Context):
        """Tabulate every subexpression, then read off the answer."""
        self._build(expr)
        if expr.value_type == "nset":
            return self.document.in_document_order(self.tables[expr.uid][context.node])
        return self.tables[expr.uid][context.triple()]

    # ------------------------------------------------------------------

    def _context_triples(self):
        size = len(self.document.nodes)
        for cn in self.document.nodes:
            for cs in range(1, size + 1):
                for cp in range(1, cs + 1):
                    yield (cn, cp, cs)

    def _scalar_table(self, expr: Expr, row) -> None:
        table = {}
        for triple in self._context_triples():
            table[triple] = row(triple)
        self.tables[expr.uid] = table
        stats.count("bottomup_table_rows", len(table))
        stats.table_cells_allocated(sum(stats.cell_weight(v) for v in table.values()))

    def _nset_table(self, expr: Expr, row) -> None:
        table = {}
        for cn in self.document.nodes:
            table[cn] = row(cn)
        self.tables[expr.uid] = table
        stats.count("bottomup_table_rows", len(table))
        stats.table_cells_allocated(sum(stats.cell_weight(v) for v in table.values()))

    # ------------------------------------------------------------------

    def _build(self, expr: Expr) -> None:
        """Post-order table construction."""
        if isinstance(expr, Path):
            if expr.primary is not None:
                self._build(expr.primary)
            for predicate in expr.primary_predicates:
                self._build(predicate)
            for step in expr.steps:
                for predicate in step.predicates:
                    self._build(predicate)
            self._build_path_table(expr)
            return
        for child in expr.children():
            self._build(child)
        if isinstance(expr, NumberLiteral):
            self._scalar_table(expr, lambda triple: expr.value)
        elif isinstance(expr, StringLiteral):
            self._scalar_table(expr, lambda triple: expr.value)
        elif isinstance(expr, ConstantNodeSet):
            self._nset_table(expr, lambda cn: set(expr.nodes))
        elif isinstance(expr, FunctionCall) and expr.name == "position":
            self._scalar_table(expr, lambda triple: float(triple[1]))
        elif isinstance(expr, FunctionCall) and expr.name == "last":
            self._scalar_table(expr, lambda triple: float(triple[2]))
        elif isinstance(expr, Union):
            left = self.tables[expr.left.uid]
            right = self.tables[expr.right.uid]
            self._nset_table(expr, lambda cn: left[cn] | right[cn])
        elif isinstance(expr, (FunctionCall, BinaryOp, Negate)):
            self._build_operator_table(expr)
        else:  # pragma: no cover - exhaustive over normalized node types
            raise EvaluationError(f"bottom-up evaluator cannot handle {expr!r}")

    def _child_value(self, child: Expr, triple):
        table = self.tables[child.uid]
        if child.value_type == "nset":
            return table[triple[0]]
        return table[triple]

    def _build_operator_table(self, expr: Expr) -> None:
        children = expr.children()
        if expr.value_type == "nset":
            # id(scalar) is the one operator with a node-set result.
            self._nset_table(
                expr,
                lambda cn: apply_operator(
                    self.document,
                    expr,
                    [self._child_value(c, (cn, 1, 1)) for c in children],
                    cn,
                ),
            )
            return
        self._scalar_table(
            expr,
            lambda triple: apply_operator(
                self.document,
                expr,
                [self._child_value(c, triple) for c in children],
                triple[0],
            ),
        )

    # ------------------------------------------------------------------

    def _build_path_table(self, path: Path) -> None:
        if path.absolute:
            start = {cn: {self.document.root} for cn in self.document.nodes}
        elif path.primary is not None:
            primary = self.tables[path.primary.uid]
            start = {}
            for cn in self.document.nodes:
                selected = set(primary[cn])
                for predicate in path.primary_predicates:
                    selected = self._filter_document_order(selected, predicate)
                start[cn] = selected
        else:
            start = {cn: {cn} for cn in self.document.nodes}
        # One shared per-origin step relation serves every context node.
        for step in path.steps:
            relation = self._step_relation(step)
            start = {
                cn: set().union(*(relation[y] for y in reachable)) if reachable else set()
                for cn, reachable in start.items()
            }
        self._nset_table(path, lambda cn: start[cn])

    def _step_relation(self, step: Step) -> dict[Node, set[Node]]:
        relation: dict[Node, set[Node]] = {}
        for origin in self.document.nodes:
            candidates = step_candidates(self.document, step.axis, origin, step.node_test)
            for predicate in step.predicates:
                table = self.tables[predicate.uid]
                size = len(candidates)
                candidates = [
                    node
                    for position, node in enumerate(candidates, start=1)
                    if table[(node, position, size)]
                ]
            relation[origin] = set(candidates)
        return relation

    def _filter_document_order(self, nodes: set[Node], predicate: Expr) -> set[Node]:
        table = self.tables[predicate.uid]
        ordered = self.document.in_document_order(nodes)
        size = len(ordered)
        return {
            node
            for position, node in enumerate(ordered, start=1)
            if table[(node, position, size)]
        }
