"""MINCONTEXT — the paper's main algorithm (Sections 3 and 6).

Combines the three ideas of Section 3.1 on top of the context-value-table
principle:

1. **Restriction to the relevant context.** Every table is projected to
   ``Relev(N)`` (computed by :mod:`repro.xpath.relevance`); a constant
   has a one-row table, ``self::* = 100`` a ``|dom|``-row table
   (Figure 5), never the ``|dom|³`` of strict bottom-up evaluation.
2. **Outermost location paths as node sets.** The outermost path is
   propagated as a plain subset of ``dom``
   (:meth:`MinContextEvaluator.eval_outermost_locpath`), not as a
   ``dom × 2^dom`` relation — Example 4.
3. **Looping over (cp, cs).** Tables are only ever *stored* for
   subexpressions independent of context position/size; predicates that
   use ``position()``/``last()`` are evaluated in a loop over the
   ``O(|dom|²)`` pairs of previous/current context node
   (:meth:`_eval_step_from_set`'s dependent branch — Example 5), with
   :meth:`eval_single_context` recomputing the position-dependent spine
   on the fly.

The four procedures map one-to-one onto the Section 6 pseudo-code:
``eval_outermost_locpath``, ``eval_by_cnode_only``,
``eval_single_context``, ``eval_inner_locpath``. Algorithm 6 is
:meth:`MinContextEvaluator.evaluate`.

Bound: ``O(|D|⁴·|Q|²)`` time and ``O(|D|²·|Q|²)`` space (Theorem 7).

Deviations from the printed pseudo-code (all documented in DESIGN.md /
EXPERIMENTS.md):

* Paths rooted at filter-expression primaries (full XPath 1.0 grammar,
  outside the paper's path grammar) are supported by evaluating the
  primary with the machinery for general expressions and then running
  the step machinery from its result.
* Tables are *merged* on re-entry rather than overwritten: a predicate
  subtree can legitimately be prepared for several candidate sets when
  its enclosing expression is itself evaluated in a (cp, cs) loop.

Instances are single-use: create one evaluator per query evaluation (the
engine does). OPTMINCONTEXT pre-fills ``tables`` for bottom-up-evaluated
subexpressions and records their uids in ``precomputed``.
"""

from __future__ import annotations

from repro import stats
from repro.core.common import (
    apply_operator,
    step_candidate_set,
    step_candidates,
)
from repro.core.context import WILDCARD, Context
from repro.errors import EvaluationError
from repro.xml.document import Document, Node
from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
)

_CPCS = frozenset({"cp", "cs"})


class MinContextEvaluator:
    """The MINCONTEXT query processor."""

    def __init__(self, document: Document):
        self.document = document
        #: uid → {projected-context-key: value}. Keys follow
        #: :func:`repro.xpath.relevance.project_context`.
        self.tables: dict[int, dict[tuple, object]] = {}
        #: uids whose tables were filled by OPTMINCONTEXT's bottom-up
        #: pass; eval_by_cnode_only skips them ("subexpressions that have
        #: already been evaluated bottom-up are not evaluated again").
        self.precomputed: set[int] = set()

    # ------------------------------------------------------------------
    # Algorithm 6
    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr, context: Context):
        """Algorithm 6 (MINCONTEXT). Node-set results come back as
        document-ordered lists."""
        if expr.value_type == "nset" and isinstance(expr, (Path, Union)):
            result = self.eval_outermost_locpath(expr, {context.node}, context)
            return self.document.in_document_order(result)
        self.eval_by_cnode_only(expr, {context.node})
        value = self.eval_single_context(expr, context.triple())
        if expr.value_type == "nset":
            return self.document.in_document_order(value)
        return value

    # ------------------------------------------------------------------
    # Table plumbing
    # ------------------------------------------------------------------

    def _key(self, node, cn, cp=WILDCARD, cs=WILDCARD) -> tuple:
        key = []
        relev = node.relev
        if "cn" in relev:
            key.append(cn)
        if "cp" in relev:
            key.append(cp)
        if "cs" in relev:
            key.append(cs)
        return tuple(key)

    def _store(self, node, rows: dict[tuple, object]) -> None:
        table = self.tables.setdefault(node.uid, {})
        fresh_keys = rows.keys() - table.keys()
        fresh_cells = sum(stats.cell_weight(rows[key]) for key in fresh_keys)
        table.update(rows)
        stats.count("mincontext_table_rows", len(fresh_keys))
        stats.table_cells_allocated(fresh_cells)

    def _lookup(self, node, cn):
        table = self.tables.get(node.uid)
        if table is None:
            raise EvaluationError(
                f"table for parse-tree node N{node.uid} was never prepared "
                "(eval_by_cnode_only must run before eval_single_context)"
            )
        key = self._key(node, cn)
        if key not in table:
            raise EvaluationError(
                f"table for parse-tree node N{node.uid} has no row for context node "
                f"{cn!r} — prepared with a different candidate set"
            )
        return table[key]

    # ------------------------------------------------------------------
    # eval_outermost_locpath (Section 6)
    # ------------------------------------------------------------------

    def eval_outermost_locpath(
        self, expr: Expr, X: set[Node], outer: Context
    ) -> set[Node]:
        """Evaluate an outermost location path as a plain node set.

        Handles the pseudo-code's four cases: ``/π`` (absolute start),
        ``π1|π2`` (union of branch results), ``π1/π2`` (the step loop),
        and ``χ::t[e1]...[eq]`` (:meth:`_eval_step_from_set`).
        """
        stats.count("outermost_path_evaluations")
        if isinstance(expr, Union):
            return self.eval_outermost_locpath(
                expr.left, X, outer
            ) | self.eval_outermost_locpath(expr.right, X, outer)
        if not isinstance(expr, Path):
            raise EvaluationError(f"not a location path: {expr!r}")
        if expr.absolute:
            current: set[Node] = {self.document.root}
        elif expr.primary is not None:
            current = self._primary_start_set(expr, X, outer)
        else:
            current = set(X)
        for step in expr.steps:
            current = self._eval_step_from_set(step, current)
        return current

    def _primary_start_set(self, path: Path, X: set[Node], outer: Context) -> set[Node]:
        """Start set for a filter-expression-rooted path (extension)."""
        primary = path.primary
        assert primary is not None
        self.eval_by_cnode_only(primary, X)
        value = self.eval_single_context(primary, outer.triple())
        selected = set(value)
        for predicate in path.primary_predicates:
            selected = self._filter_document_order(selected, predicate)
        return selected

    def _filter_document_order(self, nodes: set[Node], predicate: Expr) -> set[Node]:
        """Filter a node set by a predicate ranked in document order (the
        rule for predicates attached to filter expressions)."""
        self.eval_by_cnode_only(predicate, nodes)
        ordered = self.document.in_document_order(nodes)
        size = len(ordered)
        survivors = set()
        for position, node in enumerate(ordered, start=1):
            if self.eval_single_context(predicate, (node, position, size)):
                survivors.add(node)
        return survivors

    def _eval_step_from_set(self, step: Step, X: set[Node]) -> set[Node]:
        """One step, set-in/set-out (the pseudo-code's ``χ::t[e1]...[eq]``
        case of eval_outermost_locpath)."""
        Y = step_candidate_set(self.document, step.axis, X, step.node_test)
        for predicate in step.predicates:
            self.eval_by_cnode_only(predicate, Y)
        if all(not (_CPCS & p.relev) for p in step.predicates):
            # All predicates independent of position/size: one pass over Y.
            result = set()
            for y in Y:
                stats.count("mincontext_contexts_evaluated")
                if all(
                    self.eval_single_context(p, (y, WILDCARD, WILDCARD))
                    for p in step.predicates
                ):
                    result.add(y)
            return result
        # At least one predicate needs cp/cs: loop over all pairs of
        # previous/current context node (Example 5 / Theorem 7's loop).
        result = set()
        for x in X:
            candidates = step_candidates(self.document, step.axis, x, step.node_test)
            for predicate in step.predicates:
                size = len(candidates)
                survivors = []
                for position, z in enumerate(candidates, start=1):
                    stats.count("mincontext_contexts_evaluated")
                    if self.eval_single_context(predicate, (z, position, size)):
                        survivors.append(z)
                candidates = survivors
            result.update(candidates)
        return result

    # ------------------------------------------------------------------
    # eval_by_cnode_only (Section 6)
    # ------------------------------------------------------------------

    def eval_by_cnode_only(self, node: Expr, X: set[Node]) -> None:
        """Prepare ``table(M)`` for every M below ``node`` whose value
        does not depend on the current context position/size."""
        if node.uid in self.precomputed:
            return
        relev = node.relev
        if _CPCS & relev:
            # Position/size-dependent: only descend; this node's values
            # are produced on the fly by eval_single_context. Path
            # children are prepared, step predicates are prepared lazily
            # by the path-evaluation loops (which know candidate sets).
            for child in node.children():
                if isinstance(child, Step):
                    continue
                self.eval_by_cnode_only(child, X)
            return
        if isinstance(node, (Path, Union)):
            mapping = self.eval_inner_locpath(node, X)
            self._store(node, {self._key(node, x): nodes for x, nodes in mapping.items()})
            return
        if isinstance(node, (NumberLiteral, StringLiteral)):
            self._store(node, {(): node.value})
            return
        if isinstance(node, ConstantNodeSet):
            self._store(node, {(): set(node.nodes)})
            return
        # Op(e1, ..., ek) with Relev(N) ⊆ {'cn'}.
        children = node.children()
        for child in children:
            self.eval_by_cnode_only(child, X)
        rows: dict[tuple, object] = {}
        if "cn" in relev:
            row_nodes: list[Node | None] = list(X)
        else:
            row_nodes = [None]
        for cn in row_nodes:
            stats.count("mincontext_contexts_evaluated")
            values = [self._lookup(child, cn) for child in children]
            rows[self._key(node, cn)] = apply_operator(self.document, node, values, cn)
        self._store(node, rows)

    # ------------------------------------------------------------------
    # eval_single_context (Section 6)
    # ------------------------------------------------------------------

    def eval_single_context(self, node: Expr, triple: tuple):
        """Evaluate ``expr(N)`` for one context ``⟨cn, cp, cs⟩`` (wildcards
        allowed for irrelevant components)."""
        cn, cp, cs = triple
        relev = node.relev
        if not (_CPCS & relev):
            return self._lookup(node, cn)
        if isinstance(node, FunctionCall) and node.name == "position":
            if cp is WILDCARD:
                raise EvaluationError("position() evaluated under a wildcard position")
            return float(cp)
        if isinstance(node, FunctionCall) and node.name == "last":
            if cs is WILDCARD:
                raise EvaluationError("last() evaluated under a wildcard size")
            return float(cs)
        if isinstance(node, (Path, Union)):
            # Position/size-dependent path (via a filter primary).
            return self._eval_path_single(node, triple)
        children = node.children()
        values = [self.eval_single_context(child, triple) for child in children]
        return apply_operator(self.document, node, values, cn)

    def _eval_path_single(self, node: Expr, triple: tuple) -> set[Node]:
        if isinstance(node, Union):
            return self._eval_path_single(node.left, triple) | self._eval_path_single(
                node.right, triple
            )
        assert isinstance(node, Path)
        cn = triple[0]
        if node.absolute:
            current: set[Node] = {self.document.root}
        elif node.primary is not None:
            value = self.eval_single_context(node.primary, triple)
            current = set(value)
            for predicate in node.primary_predicates:
                current = self._filter_document_order(current, predicate)
        else:
            current = {cn}
        for step in node.steps:
            current = self._eval_step_from_set(step, current)
        return current

    # ------------------------------------------------------------------
    # eval_inner_locpath (Section 6)
    # ------------------------------------------------------------------

    def eval_inner_locpath(self, expr: Expr, X: set[Node]) -> dict[Node, set[Node]]:
        """Evaluate an inner location path as the relation
        ``table(N) ⊆ dom × 2^dom`` (context node → reachable set)."""
        stats.count("inner_path_evaluations")
        if isinstance(expr, Union):
            left = self.eval_inner_locpath(expr.left, X)
            right = self.eval_inner_locpath(expr.right, X)
            return {x: left.get(x, set()) | right.get(x, set()) for x in X}
        if isinstance(expr, ConstantNodeSet):
            return {x: set(expr.nodes) for x in X}
        if not isinstance(expr, Path):
            raise EvaluationError(f"not an inner location path: {expr!r}")
        if expr.absolute:
            root = self.document.root
            mapping: dict[Node, set[Node]] = {root: {root}}
            mapping = self._compose_steps(expr.steps, mapping)
            reachable = mapping.get(root, set())
            return {x: set(reachable) for x in X}
        if expr.primary is not None:
            self.eval_by_cnode_only(expr.primary, X)
            mapping = {}
            for x in X:
                selected = set(self._lookup(expr.primary, x))
                for predicate in expr.primary_predicates:
                    selected = self._filter_document_order(selected, predicate)
                mapping[x] = selected
            return self._compose_steps(expr.steps, mapping)
        return self._compose_steps(expr.steps, {x: {x} for x in X})

    def _compose_steps(
        self, steps: list[Step], mapping: dict[Node, set[Node]]
    ) -> dict[Node, set[Node]]:
        """``π1/π2`` composition: thread the origin→reachable relation
        through each step's per-origin relation."""
        for step in steps:
            origins: set[Node] = set()
            for reachable in mapping.values():
                origins.update(reachable)
            relation = self._inner_step_relation(step, origins)
            mapping = {
                x: set().union(*(relation[y] for y in reachable)) if reachable else set()
                for x, reachable in mapping.items()
            }
            stats.count(
                "mincontext_relation_cells", sum(len(v) for v in mapping.values())
            )
        return mapping

    def _inner_step_relation(self, step: Step, X: set[Node]) -> dict[Node, set[Node]]:
        """Per-origin step results (the pseudo-code's
        ``χ::t[e1]...[eq]`` case of eval_inner_locpath)."""
        Y = step_candidate_set(self.document, step.axis, X, step.node_test)
        for predicate in step.predicates:
            self.eval_by_cnode_only(predicate, Y)
        if all(not (_CPCS & p.relev) for p in step.predicates):
            passing = set()
            for y in Y:
                stats.count("mincontext_contexts_evaluated")
                if all(
                    self.eval_single_context(p, (y, WILDCARD, WILDCARD))
                    for p in step.predicates
                ):
                    passing.add(y)
            return {
                x: {
                    z
                    for z in step_candidates(self.document, step.axis, x, step.node_test)
                    if z in passing
                }
                for x in X
            }
        relation: dict[Node, set[Node]] = {}
        for x in X:
            candidates = step_candidates(self.document, step.axis, x, step.node_test)
            for predicate in step.predicates:
                size = len(candidates)
                survivors = []
                for position, z in enumerate(candidates, start=1):
                    stats.count("mincontext_contexts_evaluated")
                    if self.eval_single_context(predicate, (z, position, size)):
                        survivors.append(z)
                candidates = survivors
            relation[x] = set(candidates)
        return relation
