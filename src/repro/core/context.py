"""Evaluation contexts: the ``⟨cn, cp, cs⟩`` triples of Section 2.2.

The domain of contexts is ``C = {⟨cn, cp, cs⟩ | cn ∈ dom, 1 ≤ cp ≤ cs ≤
|dom|}``. MINCONTEXT additionally uses *wildcard* components (the "∗" of
the Section 6 pseudo-code) for context parts a subexpression provably
does not depend on; :data:`WILDCARD` is that marker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xml.document import Node

#: The "∗" of the pseudo-code: a context component that is irrelevant for
#: the expression being evaluated.
WILDCARD = "*"


@dataclass(frozen=True)
class Context:
    """One evaluation context.

    ``position``/``size`` may be :data:`WILDCARD` in MINCONTEXT-internal
    calls; public entry points always supply concrete integers.
    """

    node: Node
    position: int | str = 1
    size: int | str = 1

    def __post_init__(self):
        if isinstance(self.position, int) and isinstance(self.size, int):
            if not (1 <= self.position <= self.size):
                raise ValueError(
                    f"invalid context: position {self.position} not in 1..size {self.size}"
                )

    def triple(self) -> tuple:
        return (self.node, self.position, self.size)
