"""Top-down evaluation ``E↓``/``S↓`` — Definition 2 of the paper.

This is the better of the two algorithms of [11], recalled by the paper
as its baseline: ``O(|D|⁵·|Q|²)`` time and ``O(|D|⁴·|Q|²)`` space. Every
expression is evaluated *vectorized* over a list of contexts (the
``F⟨⟩`` construction), and location paths map lists of node sets to
lists of node sets (``S↓``), keeping for every step the full relation

    S = {(x, y) | x ∈ ∪ Xi, x χ y, y ∈ T(t)}

of previous/current context nodes — up to ``|dom|²`` pairs, each of
which may spawn a predicate context. The paper's Figure 4 tables are
exactly the artifacts of this algorithm on the running example; benchmark
EXP-F4 prints them from the hooks this module exposes
(:meth:`TopDownEvaluator.trace_tables`).
"""

from __future__ import annotations

from repro import stats
from repro.core.common import apply_operator, step_candidates
from repro.core.context import Context
from repro.errors import EvaluationError
from repro.xml.document import Document, Node
from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
)


class TopDownEvaluator:
    """Vectorized Definition-2 semantics.

    When ``record_tables=True`` every ``E↓`` call appends its
    (context, value) rows to ``self.tables[node.uid]`` — the
    context-value tables of Figure 4.
    """

    def __init__(self, document: Document, record_tables: bool = False):
        self.document = document
        self.record_tables = record_tables
        #: uid → list of (Context, value) rows, in evaluation order.
        self.tables: dict[int, list[tuple[Context, object]]] = {}

    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr, context: Context):
        """Evaluate for one outer context; node-sets are returned as
        document-ordered lists."""
        (value,) = self._eval(expr, [context])
        if expr.value_type == "nset":
            return self.document.in_document_order(value)
        return value

    # ------------------------------------------------------------------
    # E↓
    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, contexts: list[Context]) -> list:
        stats.count("topdown_contexts", len(contexts))
        values = self._eval_dispatch(expr, contexts)
        if self.record_tables:
            rows = self.tables.setdefault(expr.uid, [])
            rows.extend(zip(contexts, values))
        stats.table_cells_allocated(sum(stats.cell_weight(v) for v in values))
        return values

    def _eval_dispatch(self, expr: Expr, contexts: list[Context]) -> list:
        if isinstance(expr, NumberLiteral):
            return [expr.value] * len(contexts)
        if isinstance(expr, StringLiteral):
            return [expr.value] * len(contexts)
        if isinstance(expr, ConstantNodeSet):
            return [set(expr.nodes) for _ in contexts]
        if isinstance(expr, FunctionCall):
            if expr.name == "position":
                return [float(c.position) for c in contexts]
            if expr.name == "last":
                return [float(c.size) for c in contexts]
            return self._eval_operator(expr, contexts)
        if isinstance(expr, (BinaryOp, Negate)):
            return self._eval_operator(expr, contexts)
        if isinstance(expr, Union):
            left = self._eval(expr.left, contexts)
            right = self._eval(expr.right, contexts)
            # ∪⟨⟩: componentwise union (Section 2.2).
            return [l | r for l, r in zip(left, right)]
        if isinstance(expr, Path):
            return self._eval_path(expr, contexts)
        raise EvaluationError(f"top-down evaluator cannot handle {expr!r}")

    def _eval_operator(self, expr: Expr, contexts: list[Context]) -> list:
        """``E↓[[Op(e1..em)]] = F[[Op]]⟨⟩(E↓[[e1]], ..., E↓[[em]])``."""
        children = expr.children()
        child_values = [self._eval(child, contexts) for child in children]
        results = []
        for index, context in enumerate(contexts):
            arguments = [values[index] for values in child_values]
            results.append(
                apply_operator(self.document, expr, arguments, context.node)
            )
        return results

    # ------------------------------------------------------------------
    # S↓
    # ------------------------------------------------------------------

    def _eval_path(self, path: Path, contexts: list[Context]) -> list[set[Node]]:
        if path.absolute:
            current: list[set[Node]] = [{self.document.root} for _ in contexts]
        elif path.primary is not None:
            current = self._eval(path.primary, contexts)
            current = [set(s) for s in current]
            for predicate in path.primary_predicates:
                current = self._filter_sets_document_order(predicate, current)
        else:
            current = [{c.node} for c in contexts]
        for step in path.steps:
            current = self._eval_step(step, current)
        return current

    def _eval_step(self, step: Step, node_sets: list[set[Node]]) -> list[set[Node]]:
        """One location step of ``S↓``: build S, filter it through each
        predicate with freshly ranked contexts, project back per input."""
        union: set[Node] = set()
        for node_set in node_sets:
            union.update(node_set)
        # S as {x: proximity-ordered candidate list}; identical x's share.
        relation: dict[Node, list[Node]] = {}
        for x in sorted(union, key=lambda n: n.pre):
            relation[x] = step_candidates(self.document, step.axis, x, step.node_test)
        stats.count("topdown_relation_pairs", sum(len(v) for v in relation.values()))
        for predicate in step.predicates:
            relation = self._filter_relation(predicate, relation)
        results: list[set[Node]] = []
        for node_set in node_sets:
            reachable: set[Node] = set()
            for x in node_set:
                reachable.update(relation.get(x, ()))
            results.append(reachable)
        return results

    def _filter_relation(
        self, predicate: Expr, relation: dict[Node, list[Node]]
    ) -> dict[Node, list[Node]]:
        """Fix an order for S, evaluate the predicate vectorized over all
        pairs (Definition 2's ``t_j = ⟨y_j, idx_χ(y_j, S_j), |S_j|⟩``),
        and keep the surviving pairs."""
        order: list[tuple[Node, int]] = []  # (x, index within S_x)
        contexts: list[Context] = []
        for x, candidates in relation.items():
            size = len(candidates)
            for index, y in enumerate(candidates, start=1):
                order.append((x, index - 1))
                contexts.append(Context(y, index, size))
        if not contexts:
            return {x: [] for x in relation}
        truths = self._eval(predicate, contexts)
        filtered: dict[Node, list[Node]] = {x: [] for x in relation}
        for (x, candidate_index), keep in zip(order, truths):
            if keep:
                filtered[x].append(relation[x][candidate_index])
        return filtered

    def _filter_sets_document_order(
        self, predicate: Expr, node_sets: list[set[Node]]
    ) -> list[set[Node]]:
        """Predicates attached to a filter expression rank candidates in
        document order (the W3C rule for predicates outside steps)."""
        order: list[tuple[int, Node]] = []
        contexts: list[Context] = []
        for set_index, node_set in enumerate(node_sets):
            ordered = self.document.in_document_order(node_set)
            size = len(ordered)
            for position, node in enumerate(ordered, start=1):
                order.append((set_index, node))
                contexts.append(Context(node, position, size))
        if not contexts:
            return node_sets
        truths = self._eval(predicate, contexts)
        filtered: list[set[Node]] = [set() for _ in node_sets]
        for (set_index, node), keep in zip(order, truths):
            if keep:
                filtered[set_index].add(node)
        return filtered

    # ------------------------------------------------------------------

    def trace_tables(self, expr: Expr, context: Context):
        """Evaluate with table recording on and return
        ``{uid: [(Context, value), ...]}`` — the Figure 4 artifacts."""
        previous = self.record_tables
        self.record_tables = True
        self.tables = {}
        try:
            self.evaluate(expr, context)
        finally:
            self.record_tables = previous
        return self.tables
