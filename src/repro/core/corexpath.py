"""Linear-time evaluation of the Core XPath fragment (Definition 12).

Core XPath — location paths whose predicates are and/or/not combinations
of location paths — admits ``O(|D|·|Q|)`` evaluation (Theorem 13, proved
in [11]): since ``position()``/``last()`` are absent, no per-origin
ranking loop is ever needed. The strategy:

* a *predicate* denotes the set of context nodes where it holds; paths
  inside predicates are ∃-quantified, so their node set is computed by
  **backward propagation** through inverse axis functions (one
  ``O(|D|)`` set operation per step), and ``and``/``or``/``not`` are
  set intersection/union/complement;
* the *main* path is then a forward sweep: ``X_{i+1} = χ(X_i) ∩ T(t_i) ∩
  pred-sets``, again one ``O(|D|)`` operation per step.

Every set is a subset of ``dom`` — linear space. OPTMINCONTEXT routes
whole-query Core XPath here; benchmark EXP-T13 verifies the linear
scaling.
"""

from __future__ import annotations

from repro import stats
from repro.axes.axes import axis_set, inverse_axis_set
from repro.core.common import matches_node_test
from repro.core.context import Context
from repro.errors import FragmentViolationError
from repro.xml.document import Document, Node
from repro.xpath.ast import BinaryOp, Expr, FunctionCall, Path, Step
from repro.xpath.fragments import core_xpath_violation


class CoreXPathEvaluator:
    """Forward/backward set evaluation for Core XPath queries."""

    def __init__(self, document: Document):
        self.document = document

    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr, context: Context) -> list[Node]:
        """Evaluate a Core XPath query; raises
        :class:`repro.errors.FragmentViolationError` outside the fragment."""
        violation = core_xpath_violation(expr)
        if violation is not None:
            raise FragmentViolationError(f"not a Core XPath query: {violation}")
        assert isinstance(expr, Path)
        result = self._forward_path(expr, {context.node})
        return self.document.in_document_order(result)

    # ------------------------------------------------------------------

    def _forward_path(self, path: Path, start: set[Node]) -> set[Node]:
        current = {self.document.root} if path.absolute else set(start)
        for step in path.steps:
            current = self._forward_step(step, current)
        return current

    def _forward_step(self, step: Step, origins: set[Node]) -> set[Node]:
        stats.count("corexpath_steps")
        candidates = {
            y
            for y in axis_set(self.document, step.axis, origins)
            if matches_node_test(y, step.node_test, step.axis)
        }
        for predicate in step.predicates:
            candidates &= self._predicate_set(predicate)
        return candidates

    # ------------------------------------------------------------------

    def _predicate_set(self, predicate: Expr) -> set[Node]:
        """The set of context nodes at which the predicate holds."""
        if isinstance(predicate, BinaryOp) and predicate.op == "and":
            return self._predicate_set(predicate.left) & self._predicate_set(predicate.right)
        if isinstance(predicate, BinaryOp) and predicate.op == "or":
            return self._predicate_set(predicate.left) | self._predicate_set(predicate.right)
        if isinstance(predicate, FunctionCall) and predicate.name == "not":
            return set(self.document.nodes) - self._predicate_set(predicate.args[0])
        if isinstance(predicate, FunctionCall) and predicate.name == "boolean":
            return self._exists_set(predicate.args[0])
        raise FragmentViolationError(f"non-Core predicate: {predicate!r}")

    def _exists_set(self, path: Expr) -> set[Node]:
        """``{cn | path evaluates to a nonempty set at cn}`` by backward
        propagation (no positions in Core XPath, so one pass suffices)."""
        assert isinstance(path, Path)
        current = set(self.document.nodes)
        for step in reversed(path.steps):
            stats.count("corexpath_steps")
            if not current:
                return set()
            tested = {
                y for y in current if matches_node_test(y, step.node_test, step.axis)
            }
            for predicate in step.predicates:
                tested &= self._predicate_set(predicate)
            current = inverse_axis_set(self.document, step.axis, tested)
        if path.absolute:
            if self.document.root in current:
                return set(self.document.nodes)
            return set()
        return current
