"""Linear-time evaluation of the Core XPath fragment (Definition 12).

Core XPath — location paths whose predicates are and/or/not combinations
of location paths — admits ``O(|D|·|Q|)`` evaluation (Theorem 13, proved
in [11]): since ``position()``/``last()`` are absent, no per-origin
ranking loop is ever needed. The strategy:

* a *predicate* denotes the set of context nodes where it holds; paths
  inside predicates are ∃-quantified, so their node set is computed by
  **backward propagation** through inverse axis functions, and
  ``and``/``or``/``not`` are set intersection/union/complement;
* the *main* path is then a forward sweep: ``X_{i+1} = χ(X_i) ∩ T(t_i) ∩
  pred-sets``, one set operation per step.

Every node set in these sweeps is represented as a **sorted pre-order
int array** (document order is free, final ordering costs nothing) and
the boolean connectives are linear merges
(:func:`repro.xml.index.merge_union` /
:func:`~repro.xml.index.merge_intersection` /
:func:`~repro.xml.index.merge_difference`). Each step's ``χ(X) ∩ T(t)``
goes through the fused axis+name-test dispatch
(:func:`repro.axes.axes.axis_test_pres` /
:func:`~repro.axes.axes.inverse_axis_test_pres`): output-sensitive
NodeIndex kernels when the predicted output is small, the paper's
``O(|D|)`` Definition-1 scans otherwise — so a selective step costs
``O(|X|·log|D| + output)`` while the Theorem 13 worst case is preserved
unconditionally (the fallback guarantee lives in that dispatch; see
:mod:`repro.axes`). OPTMINCONTEXT routes whole-query Core XPath here;
benchmark EXP-T13 verifies the linear scaling, EXP-AXIS the
output-sensitive fast path.

Because pres thread end-to-end — context in, merges through, pres out —
the only place this evaluator touches a boxed ``Node`` in non-scan mode
is the final ``nodes[pre]`` materialization of the *result*. On a
column-only document (:class:`repro.xml.columns.ColumnDocument`,
``decode_snapshot(lazy=True)``) that means a whole Core XPath query
costs O(output) node objects; the scan-mode and non-Core paths iterate
``document.nodes`` and simply materialize what they touch — the eager
fallback, byte-identical either way.
"""

from __future__ import annotations

from repro import stats
from repro.axes import vec
from repro.axes.axes import (
    AXIS_PRINCIPAL_ATTRIBUTE,
    axis_test_pres,
    inverse_axis_test_pres,
    kernel_mode,
    matches_node_test,
)
from repro.core.context import Context
from repro.errors import FragmentViolationError
from repro.xml.document import Document, Node
from repro.xml.index import (
    merge_difference,
    merge_intersection,
    merge_union,
    node_index,
)
from repro.xpath.ast import BinaryOp, Expr, FunctionCall, Path, Step
from repro.xpath.fragments import core_xpath_violation


class CoreXPathEvaluator:
    """Forward/backward sorted-array evaluation for Core XPath queries."""

    def __init__(self, document: Document):
        self.document = document
        self._dom_pres: list[int] | None = None

    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr, context: Context) -> list[Node]:
        """Evaluate a Core XPath query; raises
        :class:`repro.errors.FragmentViolationError` outside the fragment."""
        violation = core_xpath_violation(expr)
        if violation is not None:
            raise FragmentViolationError(f"not a Core XPath query: {violation}")
        assert isinstance(expr, Path)
        result = self._forward_path(expr, [context.node.pre])
        nodes = self.document.nodes
        return [nodes[pre] for pre in result]

    def forward_from_pres(self, steps: list[Step], pres: list[int]) -> list[int]:
        """Forward-sweep a *relative* step suffix from an
        already-materialized sorted pre array.

        The batch-shared step DAG (:mod:`repro.service.batchplan`) splits
        an absolute path at a step boundary and resumes here: each step
        is a pure set function of its origin set (per-origin candidates,
        unioned), so ``forward(suffix, forward(prefix, {root}))`` equals
        the unsplit sweep. Steps must be Core — a non-Core predicate
        raises :class:`~repro.errors.FragmentViolationError`, exactly as
        :meth:`evaluate` would (callers fall back to independent
        evaluation, keeping the paper's bounds).
        """
        return self._sweep(steps, list(pres))

    def _all_pres(self) -> list[int]:
        """``dom`` as a sorted pre array (built once; callers treat the
        merge inputs as immutable, so sharing is safe)."""
        if self._dom_pres is None:
            self._dom_pres = list(range(len(self.document.nodes)))
        return self._dom_pres

    # ------------------------------------------------------------------

    def _forward_path(self, path: Path, start: list[int]) -> list[int]:
        current = [0] if path.absolute else list(start)
        return self._sweep(path.steps, current)

    def _sweep(self, steps: list[Step], current: list[int]) -> list[int]:
        """Forward-sweep a step chain: a tier-2 column program when the
        vector dispatch is engaged for this document (``vector`` mode,
        or ``auto`` on a wide-enough document), else the per-step scalar
        loop. Identical results and per-step accounting either way."""
        if steps and vec.sweep_engaged(self.document):
            program = vec.compile_forward_steps(steps)
            return vec.run_program(
                self.document,
                program,
                current,
                self._predicate_pres,
                on_step=self._count_step,
            )
        for step in steps:
            current = self._forward_step(step, current)
        return current

    @staticmethod
    def _count_step() -> None:
        stats.count("corexpath_steps")

    def _forward_step(self, step: Step, origins: list[int]) -> list[int]:
        stats.count("corexpath_steps")
        candidates = axis_test_pres(
            self.document, step.axis, origins, step.node_test
        )
        for predicate in step.predicates:
            if not candidates:
                break
            candidates = merge_intersection(candidates, self._predicate_pres(predicate))
        return candidates

    # ------------------------------------------------------------------

    def _predicate_pres(self, predicate: Expr) -> list[int]:
        """The set of context nodes at which the predicate holds."""
        if isinstance(predicate, BinaryOp) and predicate.op == "and":
            return merge_intersection(
                self._predicate_pres(predicate.left),
                self._predicate_pres(predicate.right),
            )
        if isinstance(predicate, BinaryOp) and predicate.op == "or":
            return merge_union(
                self._predicate_pres(predicate.left),
                self._predicate_pres(predicate.right),
            )
        if isinstance(predicate, FunctionCall) and predicate.name == "not":
            return merge_difference(
                self._all_pres(), self._predicate_pres(predicate.args[0])
            )
        if isinstance(predicate, FunctionCall) and predicate.name == "boolean":
            return self._exists_pres(predicate.args[0])
        raise FragmentViolationError(f"non-Core predicate: {predicate!r}")

    def _exists_pres(self, path: Expr) -> list[int]:
        """``{cn | path evaluates to a nonempty set at cn}`` by backward
        propagation (no positions in Core XPath, so one pass suffices)."""
        assert isinstance(path, Path)
        current = self._all_pres()
        if path.steps and vec.sweep_engaged(self.document):
            program = vec.compile_backward_steps(path.steps)
            current = vec.run_program(
                self.document,
                program,
                current,
                self._predicate_pres,
                on_step=self._count_step,
            )
        else:
            for step in reversed(path.steps):
                stats.count("corexpath_steps")
                if not current:
                    break
                tested = self._test_filter(current, step)
                for predicate in step.predicates:
                    tested = merge_intersection(
                        tested, self._predicate_pres(predicate)
                    )
                current = inverse_axis_test_pres(self.document, step.axis, tested)
        if path.absolute:
            if current and current[0] == 0:  # pre 0 is the document node
                return self._all_pres()
            return []
        return current

    def _test_filter(self, pres: list[int], step: Step) -> list[int]:
        """``pres ∩ T(t)`` — intersect with the index's test partition
        when kernels are enabled, else the per-node membership filter."""
        if kernel_mode() != "scan":
            partition = node_index(self.document).filter_partition(
                step.node_test,
                attribute_principal=step.axis in AXIS_PRINCIPAL_ATTRIBUTE,
            )
            if partition is None:  # node() matches every kind
                return pres
            return merge_intersection(pres, partition)
        nodes = self.document.nodes
        return [
            pre
            for pre in pres
            if matches_node_test(nodes[pre], step.node_test, step.axis)
        ]
