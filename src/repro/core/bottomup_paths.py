"""Bottom-up evaluation of existential location paths (Section 4).

A location path ``π`` inside ``boolean(π)`` or ``π RelOp s`` has
∃-semantics: only *whether* some node is reachable matters, never which.
The paper exploits this to avoid materializing the ``dom × 2^dom``
relation of eval_inner_locpath: compute the *initial node set* ``Y`` of
admissible targets, then propagate it backwards through the inverse axis
functions ``χ⁻¹`` (Definition 1), node test by node test, predicate by
predicate. The resulting set ``X`` of start nodes yields the boolean
table directly. Space per step: one node set — linear. This is the
engine of Theorem 10's ``O(|D|·|Q|²)`` space bound for the Extended
Wadler Fragment, and (without position predicates) of Theorem 13's
linear time for Core XPath.

Two procedures, mapping onto the Section 6 pseudo-code:

* :func:`eval_bottomup_path` — builds the initial set from the RelOp
  comparison (or ``dom`` for ``boolean``) and fills ``table(N)``.
* :func:`propagate_path_backwards` — walks the steps last-to-first.

Soundness fixes relative to the *printed* pseudo-code (documented in
DESIGN.md §5 and EXPERIMENTS.md):

* In the position-dependent branch, the printed code ranks candidates
  within ``Z = {z ∈ Y′ | xχz}`` — the propagated subset — but XPath
  positions count *all* test-passing candidates of ``x``. We compute
  positions over the full candidate list and intersect with the
  propagated set afterwards; on the paper's own Example 9 both readings
  give the same final answer, but on e.g. ``child::a[1] = 'v'`` the
  printed form would be wrong.
* At the top of an absolute path the printed code returns ``dom``
  whenever the propagated set is nonempty; the root must actually be a
  member (``boolean(/child::b)`` is false on an ``a``-rooted document
  even though ``child::b`` succeeds from other nodes).
"""

from __future__ import annotations

from repro import stats
from repro.axes.axes import fused_inverse_axis_set
from repro.core.common import matches_node_test, step_candidate_set, step_candidates
from repro.core.context import WILDCARD
from repro.core.mincontext import MinContextEvaluator
from repro.errors import EvaluationError
from repro.values.compare import compare_values
from repro.xml.document import Node
from repro.xpath.ast import BinaryOp, Expr, FunctionCall, Path, Step

_CPCS = frozenset({"cp", "cs"})


def eval_bottomup_path(mc: MinContextEvaluator, node: Expr) -> None:
    """Fill ``table(node)`` for a ``boolean(π)`` / ``π RelOp s`` node.

    Afterwards the node's uid is in ``mc.precomputed``: MINCONTEXT's
    eval_by_cnode_only will not re-evaluate it (Algorithm 8's proviso).
    The table covers *all* of ``dom``, so any later lookup succeeds.
    """
    if node.uid in mc.precomputed:
        return
    document = mc.document
    dom = set(document.nodes)

    if isinstance(node, FunctionCall) and node.name == "boolean":
        path = node.args[0]
        start_nodes = propagate_path_backwards(mc, path, dom)
        truths = {x: (x in start_nodes) for x in dom}
    elif isinstance(node, BinaryOp):
        path, op, scalar = _comparison_parts(node)
        mc.eval_by_cnode_only(scalar, set())
        scalar_value = mc.eval_single_context(scalar, (None, WILDCARD, WILDCARD))
        if scalar.value_type == "bool":
            # "π RelOp s with s of type bool is treated like
            # boolean(π) RelOp s" (Section 6).
            nonempty = propagate_path_backwards(mc, path, dom)
            truths = {
                x: compare_values(op, x in nonempty, "bool", scalar_value, "bool")
                for x in dom
            }
        else:
            initial = {
                y
                for y in dom
                if compare_values(op, [y], "nset", scalar_value, scalar.value_type)
            }
            start_nodes = propagate_path_backwards(mc, path, initial)
            truths = {x: (x in start_nodes) for x in dom}
    else:
        raise EvaluationError(f"not a bottom-up-eligible node: {node!r}")

    mc._store(node, {mc._key(node, x): value for x, value in truths.items()})
    mc.precomputed.add(node.uid)


def _comparison_parts(node: BinaryOp) -> tuple[Path, str, Expr]:
    """Split ``π RelOp s`` into (path, effective op, scalar), flipping the
    operator when the path is on the right."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
    if isinstance(node.left, Path) and node.left.steps:
        return node.left, node.op, node.right
    if isinstance(node.right, Path) and node.right.steps:
        return node.right, flipped[node.op], node.left
    raise EvaluationError(f"no location-path side in {node!r}")


def propagate_path_backwards(
    mc: MinContextEvaluator, path: Expr, targets: set[Node]
) -> set[Node]:
    """Propagate a target set backwards through ``π``: the returned set is
    ``{x ∈ dom | some y ∈ targets is reachable from x via π}``."""
    if not isinstance(path, Path):
        raise EvaluationError(f"not a location path: {path!r}")
    document = mc.document
    current = set(targets)
    for step in reversed(path.steps):
        if not current:
            return set()
        current = _propagate_step(mc, step, current)
        stats.count("bottomup_propagation_steps")
    if path.primary is not None:
        # Context-free primary start (id('k')/...): the path succeeds from
        # *every* context node iff the primary's value meets the
        # propagated set — mirroring the absolute-path case below.
        mc.eval_by_cnode_only(path.primary, set())
        start_nodes = mc.eval_single_context(path.primary, (None, WILDCARD, WILDCARD))
        if not current.isdisjoint(start_nodes):
            return set(document.nodes)
        return set()
    if path.absolute:
        # '/' at the top: the path restarts at the root, so the answer is
        # context-independent — all of dom iff the root can start it (for
        # the empty absolute path '/', iff the root itself is a target).
        if document.root in current:
            return set(document.nodes)
        return set()
    return current


def _propagate_step(mc: MinContextEvaluator, step: Step, targets: set[Node]) -> set[Node]:
    """One inverse location step: filter targets by node test and
    predicates, then apply ``χ⁻¹``."""
    document = mc.document
    tested = {y for y in targets if matches_node_test(y, step.node_test, step.axis)}
    if not tested:
        return set()
    if not step.predicates:
        return fused_inverse_axis_set(document, step.axis, tested)
    position_free = all(not (_CPCS & p.relev) for p in step.predicates)
    if position_free:
        for predicate in step.predicates:
            mc.eval_by_cnode_only(predicate, tested)
        passing = set()
        for y in tested:
            stats.count("mincontext_contexts_evaluated")
            if all(
                mc.eval_single_context(p, (y, WILDCARD, WILDCARD))
                for p in step.predicates
            ):
                passing.add(y)
        return fused_inverse_axis_set(document, step.axis, passing)
    # Position-dependent predicates: loop over the candidate origins and
    # rank each origin's full candidate list (soundness fix, see module
    # docstring), keeping origins with a surviving candidate in `tested`.
    origins = fused_inverse_axis_set(document, step.axis, tested)
    pool = step_candidate_set(document, step.axis, origins, step.node_test)
    for predicate in step.predicates:
        mc.eval_by_cnode_only(predicate, pool)
    result = set()
    for x in origins:
        candidates = step_candidates(document, step.axis, x, step.node_test)
        for predicate in step.predicates:
            size = len(candidates)
            survivors = []
            for position, z in enumerate(candidates, start=1):
                stats.count("mincontext_contexts_evaluated")
                if mc.eval_single_context(predicate, (z, position, size)):
                    survivors.append(z)
            candidates = survivors
        if any(z in tested for z in candidates):
            result.add(x)
    return result
