"""Shared evaluation primitives used by every algorithm.

Node-test matching (the paper's ``T`` function generalized to node
kinds), per-step candidate enumeration, and the generic application of an
operator node ``Op(e1, ..., ek)`` to already-evaluated child values —
Figure 1's ``F[[Op]]`` dispatched over the AST.

The step primitives here take and return boxed nodes (the per-context
algorithms rank candidates by proximity position), so on a lazy column
document (:mod:`repro.xml.columns`) they materialize exactly the
candidate sets they enumerate — the graceful eager fallback for the
evaluators that never went columnar; the pres-threading fast path lives
in :mod:`repro.core.corexpath`.
"""

from __future__ import annotations

import math

from repro import stats
from repro.axes.axes import axis_test_nodes, fused_axis_set, matches_node_test
from repro.errors import EvaluationError
from repro.functions.library import apply_function
from repro.values.compare import compare_values
from repro.values.numbers import xpath_divide, xpath_modulo
from repro.xml.document import Document, Node
from repro.xpath.ast import BinaryOp, Expr, FunctionCall, Negate, NodeTest

__all__ = [
    "apply_operator",
    "matches_node_test",
    "step_candidate_set",
    "step_candidates",
]

_COMPARISON_OPS = frozenset({"=", "!=", "<", "<=", ">", ">="})


def step_candidates(document: Document, axis: str, node: Node, test: NodeTest) -> list[Node]:
    """``χ({x}) ∩ T(t)`` in proximity order — one context node's
    candidates, the list predicates assign positions over. Routed through
    the fused per-node dispatch (:func:`repro.axes.axes.axis_test_nodes`):
    interval-axis enumerations become singleton partition range queries
    when the predicted output is small, the enumerate-then-filter walk
    otherwise — identical candidates in identical proximity order either
    way, so positional predicates rank the same lists."""
    return axis_test_nodes(document, axis, node, test)


def step_candidate_set(document: Document, axis: str, nodes, test: NodeTest) -> set[Node]:
    """``χ(X) ∩ T(t)`` as a set — the hot step primitive of MINCONTEXT /
    OPTMINCONTEXT. Routed through the fused axis+name-test dispatch
    (:func:`repro.axes.axes.fused_axis_set`): output-sensitive indexed
    kernels when the predicted output is small, the Definition-1
    ``O(|D|)`` scan otherwise — byte-identical either way."""
    return fused_axis_set(document, axis, nodes, test)


def apply_operator(
    document: Document,
    expr: Expr,
    values: list,
    context_node: Node | None = None,
):
    """Apply the operator at ``expr`` to its children's values.

    This is ``F[[Op]]`` (Figure 1) for compound nodes: arithmetic,
    comparisons (dispatched on the children's *static* types, as Figure
    1's typed signatures do), boolean connectives, unary minus, and core
    library calls. ``position``/``last`` are context accessors and must
    be handled by the caller, never passed here.
    """
    stats.count("operator_applications")
    if isinstance(expr, Negate):
        return -values[0]
    if isinstance(expr, BinaryOp):
        if expr.op == "and":
            return values[0] and values[1]
        if expr.op == "or":
            return values[0] or values[1]
        if expr.op in _COMPARISON_OPS:
            return compare_values(
                expr.op,
                values[0],
                expr.left.value_type,
                values[1],
                expr.right.value_type,
            )
        left, right = values
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if math.isnan(left) or math.isnan(right):
                return float("nan")
            return left * right
        if expr.op == "div":
            return xpath_divide(left, right)
        if expr.op == "mod":
            return xpath_modulo(left, right)
        raise EvaluationError(f"unknown operator {expr.op!r}")
    if isinstance(expr, FunctionCall):
        if expr.name in ("position", "last"):
            raise EvaluationError(
                f"{expr.name}() is a context accessor and cannot be applied as a value function"
            )
        return apply_function(document, expr.name, values, context_node)
    raise EvaluationError(f"cannot apply operator node {expr!r}")
