"""The naive evaluator: a faithful model of 2002-era XPath engines.

The paper's introduction rests on the experimental finding of [11] that
XALAN, XT, and IE6 take time *exponential in the query size*. The
mechanism identified there is per-context re-evaluation without sharing:
a location step maps a **list** of context nodes to the concatenation of
per-node result lists, so duplicates accumulate and every subexpression
is re-evaluated for every occurrence. On a two-``b`` document, the query

    //b/parent::a/child::b/parent::a/child::b/...

doubles the intermediate list at every ``parent/child`` pair — the
classic ``2^(|Q|/2)`` blow-up (benchmark EXP-X1 regenerates the curve).

This evaluator is *semantically correct* (the differential test suite
holds it to the same answers as MINCONTEXT): duplicates never change
node-set membership, per-context predicate groups see the right
positions, and the final node-set is deduplicated and document-ordered at
the boundary, exactly as real engines did. Only the *cost* is the
historical one.
"""

from __future__ import annotations

from repro import stats
from repro.axes.order import is_forward_axis
from repro.core.common import apply_operator, step_candidates
from repro.core.context import Context
from repro.errors import EvaluationError
from repro.xml.document import Document, Node
from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
)


class NaiveEvaluator:
    """Recursive interpreter with list-based node-set semantics."""

    def __init__(self, document: Document):
        self.document = document

    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr, context: Context):
        """Evaluate and return a boundary value: node-sets come back as a
        deduplicated, document-ordered list."""
        value = self._eval(expr, context)
        if expr.value_type == "nset":
            return self.document.in_document_order(set(value))
        return value

    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, context: Context):
        stats.count("naive_eval_calls")
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, ConstantNodeSet):
            return list(expr.nodes)
        if isinstance(expr, FunctionCall):
            if expr.name == "position":
                return float(context.position)
            if expr.name == "last":
                return float(context.size)
            values = [self._boundary(a, self._eval(a, context)) for a in expr.args]
            return apply_operator(self.document, expr, values, context.node)
        if isinstance(expr, (BinaryOp, Negate)):
            values = [self._boundary(c, self._eval(c, context)) for c in expr.children()]
            return apply_operator(self.document, expr, values, context.node)
        if isinstance(expr, Union):
            # Concatenation without deduplication: the naive hallmark.
            return self._eval(expr.left, context) + self._eval(expr.right, context)
        if isinstance(expr, Path):
            return self._eval_path(expr, context)
        raise EvaluationError(f"naive evaluator cannot handle {expr!r}")

    def _boundary(self, expr: Expr, value):
        """Deduplicate node-set values crossing into F[[Op]].

        Even 2002-era engines treated node-sets as *sets* at function
        boundaries (count/sum/string must not see duplicates); the
        historical blow-up lives purely in the per-context re-evaluation
        of location steps, which this method does not touch.
        """
        if expr.value_type == "nset" and isinstance(value, list):
            return list(dict.fromkeys(value))
        return value

    # ------------------------------------------------------------------

    def _eval_path(self, path: Path, context: Context) -> list[Node]:
        if path.absolute:
            current: list[Node] = [self.document.root]
        elif path.primary is not None:
            primary_value = self._eval(path.primary, context)
            # Filter-expression predicates rank the primary's *set* in
            # document order, so duplicates must not distort positions.
            current = self.document.in_document_order(set(primary_value))
            for predicate in path.primary_predicates:
                current = self._filter_by_predicate(current, predicate)
        else:
            current = [context.node]
        for step in path.steps:
            current = self._eval_step(step, current)
        return current

    def _eval_step(self, step: Step, origins: list[Node]) -> list[Node]:
        result: list[Node] = []
        for origin in origins:
            stats.count("naive_step_contexts")
            candidates = step_candidates(self.document, step.axis, origin, step.node_test)
            for predicate in step.predicates:
                candidates = self._filter_by_predicate(candidates, predicate)
            result.extend(candidates)
        return result

    def _filter_by_predicate(self, candidates: list[Node], predicate: Expr) -> list[Node]:
        """One predicate pass: each survivor list re-ranks the next pass."""
        size = len(candidates)
        survivors: list[Node] = []
        for position, candidate in enumerate(candidates, start=1):
            stats.count("naive_predicate_evaluations")
            value = self._eval(predicate, Context(candidate, position, size))
            if value:
                survivors.append(candidate)
        return survivors
