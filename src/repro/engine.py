"""Public engine facade.

:class:`XPathEngine` ties the pipeline together: parse → normalize
(variables substituted, conversions explicit) → relevance analysis →
fragment classification → algorithm dispatch. ``algorithm='auto'`` picks
the best algorithm the paper provides for the query's fragment:

* whole-query Core XPath (Definition 12)  → ``corexpath``  (Theorem 13)
* everything else                          → ``optmincontext`` (Thm 7/10)

The slower algorithms (``naive``, ``bottomup``, ``topdown``,
``mincontext``) remain selectable — the benchmark harness and the
differential test suite exercise all of them on the same queries.

Example::

    from repro import XPathEngine, parse_document

    doc = parse_document("<a><b id='1'/><b id='2'/></a>")
    engine = XPathEngine(doc)
    nodes = engine.evaluate("/child::a/child::b[position() = last()]")
    assert [n.xml_id for n in nodes] == ["2"]
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bottomup import BottomUpEvaluator
from repro.core.context import Context
from repro.core.corexpath import CoreXPathEvaluator
from repro.core.mincontext import MinContextEvaluator
from repro.core.naive import NaiveEvaluator
from repro.core.optmincontext import OptMinContextEvaluator
from repro.core.topdown import TopDownEvaluator
from repro.errors import FragmentViolationError, ReproError
from repro.xml.document import Document, Node
from repro.xpath.ast import Expr, Path
from repro.xpath.fragments import (
    core_xpath_violation,
    find_bottomup_paths,
    wadler_violation,
)
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance
from repro.xpath.rewrite import RewriteStats, rewrite

#: The selectable evaluation algorithms.
ALGORITHMS = (
    "auto",
    "naive",
    "bottomup",
    "topdown",
    "mincontext",
    "optmincontext",
    "corexpath",
)


@dataclass
class CompiledQuery:
    """A parsed, normalized, analyzed query, reusable across evaluations.

    Attributes:
        source: the original query string.
        ast: normalized AST with ``value_type`` and ``relev`` annotations.
        result_type: static type of the whole query.
        core_violation: why the query is outside Core XPath (None if in).
        wadler_violation: why it is outside the Extended Wadler Fragment.
        bottomup_path_count: number of subexpressions OPTMINCONTEXT will
            evaluate bottom-up.
    """

    source: str
    ast: Expr
    result_type: str
    core_violation: str | None
    wadler_violation: str | None
    bottomup_path_count: int
    variables: dict[str, object] = field(default_factory=dict, repr=False)
    #: What the optimizer pass did (None when the engine was built with
    #: optimize=False).
    rewrite_stats: RewriteStats | None = None

    @property
    def is_core_xpath(self) -> bool:
        return self.core_violation is None

    @property
    def is_extended_wadler(self) -> bool:
        return self.wadler_violation is None

    def best_algorithm(self) -> str:
        """The algorithm ``auto`` dispatches to."""
        if self.is_core_xpath:
            return "corexpath"
        return "optmincontext"


class XPathEngine:
    """Evaluate XPath 1.0 queries against one document."""

    def __init__(
        self,
        document: Document,
        variables: dict[str, object] | None = None,
        optimize: bool = False,
    ):
        if not document.is_finalized:
            raise ReproError("document must be finalized before building an engine")
        self.document = document
        self.variables = dict(variables or {})
        self.optimize = optimize
        self._cache: dict[str, CompiledQuery] = {}

    # ------------------------------------------------------------------

    def compile(self, query: str) -> CompiledQuery:
        """Parse + normalize (+ optionally rewrite) + analyze a query
        (cached per engine)."""
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        ast = normalize(parse_xpath(query), self.variables)
        compute_relevance(ast)
        rewrite_stats = None
        if self.optimize:
            rewrite_stats = RewriteStats()
            ast = rewrite(ast, rewrite_stats)
            compute_relevance(ast)
        compiled = CompiledQuery(
            source=query,
            ast=ast,
            result_type=ast.value_type or "nset",
            core_violation=core_xpath_violation(ast),
            wadler_violation=wadler_violation(ast),
            bottomup_path_count=len(find_bottomup_paths(ast)),
            variables=dict(self.variables),
            rewrite_stats=rewrite_stats,
        )
        self._cache[query] = compiled
        return compiled

    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: str | CompiledQuery,
        context_node: Node | None = None,
        context_position: int = 1,
        context_size: int = 1,
        algorithm: str = "auto",
    ):
        """Evaluate ``query`` for the context
        ``⟨context_node, context_position, context_size⟩``.

        Args:
            query: query string or a :meth:`compile` result.
            context_node: defaults to the document node (so absolute and
                relative queries both behave naturally at the top level).
            algorithm: one of :data:`ALGORITHMS`.

        Returns:
            A document-ordered ``list[Node]`` for node-set queries, or a
            ``float``/``str``/``bool`` scalar.
        """
        compiled = self.compile(query) if isinstance(query, str) else query
        if context_node is None:
            context_node = self.document.root
        context = Context(context_node, context_position, context_size)
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
        if algorithm == "auto":
            algorithm = compiled.best_algorithm()
        if algorithm == "corexpath":
            if not compiled.is_core_xpath:
                raise FragmentViolationError(
                    f"query is not in Core XPath: {compiled.core_violation}"
                )
            return CoreXPathEvaluator(self.document).evaluate(compiled.ast, context)
        if algorithm == "naive":
            return NaiveEvaluator(self.document).evaluate(compiled.ast, context)
        if algorithm == "topdown":
            return TopDownEvaluator(self.document).evaluate(compiled.ast, context)
        if algorithm == "bottomup":
            return BottomUpEvaluator(self.document).evaluate(compiled.ast, context)
        if algorithm == "mincontext":
            return MinContextEvaluator(self.document).evaluate(compiled.ast, context)
        return OptMinContextEvaluator(self.document).evaluate(compiled.ast, context)

    # ------------------------------------------------------------------

    def table(
        self,
        query: str | CompiledQuery,
        nodes=None,
        use_bottomup: bool = True,
    ) -> dict[Node, object]:
        """The context-value-table principle as a public API: evaluate the
        query *simultaneously for every context node* and return one
        ``{context_node: value}`` mapping.

        This is asymptotically cheaper than calling :meth:`evaluate` in a
        loop — exactly the paper's point (Section 2.3): shared tables are
        built once. Only queries independent of the context position/size
        qualify (``Relev ⊆ {'cn'}``); others raise
        :class:`repro.errors.ReproError` since ``cp``/``cs`` would be
        unbound.

        Args:
            query: query string or compiled query.
            nodes: restrict the table to these context nodes (defaults to
                every node of the document).
            use_bottomup: run OPTMINCONTEXT's bottom-up pass first
                (Algorithm 8) — cheaper for existential subexpressions.
        """
        compiled = self.compile(query) if isinstance(query, str) else query
        relev = compiled.ast.relev or frozenset()
        if "cp" in relev or "cs" in relev:
            raise ReproError(
                "table() needs a position/size-independent query "
                f"(Relev = {sorted(relev)})"
            )
        from repro.core.bottomup_paths import eval_bottomup_path
        from repro.xpath.fragments import find_bottomup_paths as _find

        context_nodes = list(nodes) if nodes is not None else list(self.document.nodes)
        evaluator = MinContextEvaluator(self.document)
        if use_bottomup:
            for node in _find(compiled.ast):
                eval_bottomup_path(evaluator, node)
        evaluator.eval_by_cnode_only(compiled.ast, set(context_nodes))
        result: dict[Node, object] = {}
        for context_node in context_nodes:
            value = evaluator.eval_single_context(
                compiled.ast, (context_node, 1, 1)
            )
            if compiled.result_type == "nset":
                value = self.document.in_document_order(value)
            result[context_node] = value
        return result

    def select(self, query: str | CompiledQuery, **kwargs) -> list[Node]:
        """Like :meth:`evaluate`, but asserts a node-set result."""
        result = self.evaluate(query, **kwargs)
        if not isinstance(result, list):
            raise ReproError(
                f"select() needs a node-set query, got a {type(result).__name__} result"
            )
        return result
