"""Public engine facade.

:class:`XPathEngine` is a thin per-document convenience wrapper over the
two-stage compiler: stage 1 (:mod:`repro.service.planner`) — parse →
normalize (variables substituted, conversions explicit) → relevance
analysis → fragment classification — produces the document-independent
:class:`LogicalPlan <repro.service.plan.LogicalPlan>`, and
``algorithm='auto'`` statically picks the best algorithm the paper
provides for the query's fragment:

* whole-query Core XPath (Definition 12)  → ``corexpath``  (Theorem 13)
* everything else                          → ``optmincontext`` (Thm 7/10)

Construct with ``specialize=True`` to route ``auto`` through stage 2
instead (:mod:`repro.service.specialize`): the cost-driven selector
reads this document's profile (node count, depth, fanout, text ratio)
and picks the cheapest evaluator whose guarantees hold — the same
per-document specialization :class:`repro.service.QueryService` applies
by default. Values are identical either way; only speed differs.

The slower algorithms (``naive``, ``bottomup``, ``topdown``,
``mincontext``) remain selectable — the benchmark harness and the
differential test suite exercise all of them on the same queries.

For serving many queries over many documents with plan/result caching,
use :class:`repro.service.QueryService`; the engine keeps only a simple
unbounded per-engine plan memo.

Example::

    from repro import XPathEngine, parse_document

    doc = parse_document("<a><b id='1'/><b id='2'/></a>")
    engine = XPathEngine(doc)
    nodes = engine.evaluate("/child::a/child::b[position() = last()]")
    assert [n.xml_id for n in nodes] == ["2"]
"""

from __future__ import annotations

from repro.core.context import Context
from repro.core.mincontext import MinContextEvaluator
from repro.errors import ReproError
from repro.service.plan import CompiledPlan, CompiledQuery
from repro.service.planner import (
    ALGORITHMS,
    QueryPlanner,
    make_evaluator,
    resolve_algorithm,
)
from repro.xml.document import Document, Node

__all__ = ["ALGORITHMS", "CompiledPlan", "CompiledQuery", "XPathEngine"]


class XPathEngine:
    """Evaluate XPath 1.0 queries against one document."""

    def __init__(
        self,
        document: Document,
        variables: dict[str, object] | None = None,
        optimize: bool = False,
        specialize: bool = False,
    ):
        if not document.is_finalized:
            raise ReproError("document must be finalized before building an engine")
        self.document = document
        self.variables = dict(variables or {})
        self.optimize = optimize
        # Off by default at the engine level: the single-document facade
        # is also the differential suites' oracle harness, where the
        # static dispatch is the reference behavior. The service layer
        # (QueryService) enables specialization by default.
        self.specialize = bool(specialize)
        self._specializer = None
        self._profile = None
        if self.specialize:
            from repro.service.specialize import PlanSpecializer

            self._specializer = PlanSpecializer()
        self._planner = QueryPlanner()
        self._cache: dict[str, CompiledPlan] = {}

    # ------------------------------------------------------------------

    def compile(self, query: str) -> CompiledPlan:
        """Parse + normalize (+ optionally rewrite) + analyze a query
        (cached per engine)."""
        cached = self._cache.get(query)
        if cached is not None:
            return cached
        compiled = self._planner.compile(query, self.variables, self.optimize)
        self._cache[query] = compiled
        return compiled

    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: str | CompiledPlan,
        context_node: Node | None = None,
        context_position: int = 1,
        context_size: int = 1,
        algorithm: str = "auto",
    ):
        """Evaluate ``query`` for the context
        ``⟨context_node, context_position, context_size⟩``.

        Args:
            query: query string or a :meth:`compile` result.
            context_node: defaults to the document node (so absolute and
                relative queries both behave naturally at the top level).
            algorithm: one of :data:`ALGORITHMS`; unknown names raise
                :class:`repro.errors.UnknownAlgorithmError`.

        Returns:
            A document-ordered ``list[Node]`` for node-set queries, or a
            ``float``/``str``/``bool`` scalar.
        """
        compiled = self.compile(query) if isinstance(query, str) else query
        if context_node is None:
            context_node = self.document.root
        context = Context(context_node, context_position, context_size)
        resolved = self._resolve(compiled, algorithm)
        return make_evaluator(self.document, resolved).evaluate(compiled.ast, context)

    def _resolve(self, compiled: CompiledPlan, algorithm: str) -> str:
        """Static fragment dispatch, or — with ``specialize=True`` — the
        stage-2 cost-driven choice for this document's profile."""
        if algorithm == "auto" and self._specializer is not None:
            if self._profile is None:
                from repro.service.specialize import document_profile

                self._profile = document_profile(self.document)
            return self._specializer.specialize(compiled, self._profile).algorithm
        return resolve_algorithm(compiled, algorithm)

    # ------------------------------------------------------------------

    def table(
        self,
        query: str | CompiledPlan,
        nodes=None,
        use_bottomup: bool = True,
    ) -> dict[Node, object]:
        """The context-value-table principle as a public API: evaluate the
        query *simultaneously for every context node* and return one
        ``{context_node: value}`` mapping.

        This is asymptotically cheaper than calling :meth:`evaluate` in a
        loop — exactly the paper's point (Section 2.3): shared tables are
        built once. Only queries independent of the context position/size
        qualify (``Relev ⊆ {'cn'}``); others raise
        :class:`repro.errors.ReproError` since ``cp``/``cs`` would be
        unbound.

        Args:
            query: query string or compiled query.
            nodes: restrict the table to these context nodes (defaults to
                every node of the document).
            use_bottomup: run OPTMINCONTEXT's bottom-up pass first
                (Algorithm 8) — cheaper for existential subexpressions.
        """
        compiled = self.compile(query) if isinstance(query, str) else query
        relev = compiled.ast.relev or frozenset()
        if "cp" in relev or "cs" in relev:
            raise ReproError(
                "table() needs a position/size-independent query "
                f"(Relev = {sorted(relev)})"
            )
        from repro.core.bottomup_paths import eval_bottomup_path
        from repro.xpath.fragments import find_bottomup_paths as _find

        context_nodes = list(nodes) if nodes is not None else list(self.document.nodes)
        evaluator = MinContextEvaluator(self.document)
        if use_bottomup:
            for node in _find(compiled.ast):
                eval_bottomup_path(evaluator, node)
        evaluator.eval_by_cnode_only(compiled.ast, set(context_nodes))
        result: dict[Node, object] = {}
        for context_node in context_nodes:
            value = evaluator.eval_single_context(
                compiled.ast, (context_node, 1, 1)
            )
            if compiled.result_type == "nset":
                value = self.document.in_document_order(value)
            result[context_node] = value
        return result

    def select(self, query: str | CompiledPlan, **kwargs) -> list[Node]:
        """Like :meth:`evaluate`, but asserts a node-set result."""
        result = self.evaluate(query, **kwargs)
        if not isinstance(result, list):
            raise ReproError(
                f"select() needs a node-set query, got a {type(result).__name__} result"
            )
        return result
