"""The async front end: ``await``-able evaluation over :class:`QueryService`.

:class:`AsyncQueryService` is the coroutine-facing face of the service
layer (ROADMAP: "an async front end over QueryService"). It owns a
thread-safe :class:`~repro.service.service.QueryService` and exposes

* ``await evaluate(query, document)`` — one evaluation, offloaded to a
  worker thread so the event loop never blocks on the GIL-bound work;
* ``await evaluate_many(queries, documents, workers=...)`` — the batch
  API on an :class:`~repro.service.scheduler.AsyncScheduler`
  (coroutine-per-shard, bounded semaphore, thread offload), returning
  the same merged :class:`~repro.service.service.BatchResult` as every
  sync backend: value-identical, stats exactly summed;
* ``stream_many(queries, documents, ...)`` — a :class:`BatchStream`,
  the async iterator that yields per-``(query, document)``
  :class:`StreamItem` results *as shards complete* instead of
  barriering on the slowest shard. On a skewed workload the first
  results arrive while the big shard is still evaluating — that
  time-to-first-result win is gated by ``benchmarks/bench_async_batch.py``
  (EXP-ASYNC).

Streaming keeps exact statistics incrementally: each completed shard's
counters are folded into running :class:`~repro.stats.CacheStats`
mergers (:meth:`~repro.stats.CacheStats.absorb_snapshot`), so at any
point mid-stream ``stream.plan_stats`` is the exact sum over the shards
seen so far, and after exhaustion :meth:`BatchStream.batch` returns a
``BatchResult`` indistinguishable from the barrier path's.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.errors import DeadlineExceededError
from repro.service.scheduler import (
    AsyncScheduler,
    PreparedBatch,
    merge_batch_plan_snapshots,
)
from repro.service.service import BatchResult, QueryService
from repro.stats import CacheStats
from repro.xml.document import Document, Node


@dataclass(frozen=True)
class StreamItem:
    """One streamed result cell: ``queries[query_index]`` evaluated on
    ``documents[document_index]``, plus which shard produced it. Cells
    arrive grouped by shard, shards in completion order."""

    document_index: int
    query_index: int
    query: str
    algorithm: str
    value: object
    shard_index: int


class BatchStream:
    """Async iterator over a sharded batch's results, in completion order.

    Iterate to drive the shards::

        stream = async_service.stream_many(queries, documents, workers=4)
        async for item in stream:          # StreamItem per (query, document)
            handle(item)
        batch = stream.batch()             # merged BatchResult, exact stats

    While (and after) iterating, ``plan_stats``/``result_stats`` hold the
    exact counter sums over the shards completed *so far* — the
    incremental form of the barrier merge. ``batch()`` is available once
    the stream is exhausted; breaking out early cancels the remaining
    shard tasks (see :meth:`AsyncScheduler.stream`).
    """

    def __init__(
        self,
        scheduler: AsyncScheduler,
        prepared: PreparedBatch,
        deadline: float | None = None,
    ):
        self._scheduler = scheduler
        self._prepared = prepared
        #: Absolute ``time.monotonic()`` deadline, or ``None`` for no
        #: deadline. Enforced cooperatively at every ``__anext__``: an
        #: expired deadline closes the stream (cancelling the remaining
        #: shard tasks and awaiting the cancellations) and raises a typed
        #: :class:`~repro.errors.DeadlineExceededError` carrying how many
        #: cells were yielded — callers keep every already-yielded
        #: partial result and never hang on the slow shard.
        self._deadline = deadline
        self._yielded = 0
        #: True once the deadline fired (the stream is closed then).
        self.deadline_exceeded = False
        self._generator = self._run()
        self._plan_stats = CacheStats(
            name="plan_cache", capacity=scheduler.service_config["plan_capacity"]
        )
        self._result_stats = CacheStats(name="result_cache")
        #: Per-shard batch-plan snapshots (summed lazily — ``{}`` until a
        #: shard actually shared something, matching the barrier merge).
        self._batch_plan_snapshots: list[dict] = []
        #: Per-shard report entries (same shape as ``BatchResult.shards``),
        #: appended as each shard completes.
        self.shards: list[dict] = []
        self._values: list[list[object] | None] = [None] * len(prepared.documents)
        self._exhausted = False

    # ------------------------------------------------------------------

    @property
    def queries(self) -> list[str]:
        return self._prepared.queries

    @property
    def algorithms(self) -> list[str]:
        """Resolved per-query algorithms (known up front: resolution is a
        pure function of the compiled plan, done in the prepare phase)."""
        return self._prepared.algorithms

    @property
    def plan_stats(self) -> dict:
        """Exact plan-cache counter sums over the shards completed so far."""
        return self._plan_stats.snapshot()

    @property
    def result_stats(self) -> dict:
        """Exact result-memo counter sums over the shards completed so far."""
        return self._result_stats.snapshot()

    @property
    def batch_plan(self) -> dict:
        """Exact batch-plan counter sums over the shards completed so far
        (``{}`` when no completed shard shared anything)."""
        return merge_batch_plan_snapshots(self._batch_plan_snapshots)

    def batch(self) -> BatchResult:
        """The merged :class:`BatchResult` — values in batch order, stats
        the exact shard sums. Only available after the stream has been
        fully consumed (a partial batch would have holes)."""
        if not self._exhausted:
            raise RuntimeError(
                "batch() needs the stream fully consumed; iterate it to the end first"
            )
        return BatchResult(
            queries=self._prepared.queries,
            document_count=len(self._prepared.documents),
            values=self._values,
            algorithms=self._prepared.algorithms,
            plan_stats=self.plan_stats,
            result_stats=self.result_stats,
            batch_plan=self.batch_plan,
            workers=len(self._prepared.shards),
            shards=list(self.shards),
        )

    # ------------------------------------------------------------------

    async def _run(self):
        inner = self._scheduler.stream(self._prepared)
        try:
            async for shard, outcome in inner:
                self._plan_stats.absorb_snapshot(outcome["plan_stats"])
                self._result_stats.absorb_snapshot(outcome["result_stats"])
                self._batch_plan_snapshots.append(outcome.get("batch_plan", {}))
                self._scheduler.record_timing(shard, outcome, self._prepared)
                self.shards.append(self._scheduler.shard_report(shard, outcome))
                for document_index, row in zip(shard.document_indices, outcome["values"]):
                    self._values[document_index] = row
                    for query_index, value in enumerate(row):
                        yield StreamItem(
                            document_index=document_index,
                            query_index=query_index,
                            query=self._prepared.queries[query_index],
                            algorithm=self._prepared.algorithms[query_index],
                            value=value,
                            shard_index=shard.index,
                        )
            self._exhausted = True
        finally:
            # ``async for`` never closes its iterator; on early exit
            # (break/aclose/deadline) the scheduler generator would stay
            # suspended with its shard tasks pending until loop shutdown.
            # Drive its finally (cancel + await the cancellations) now.
            await inner.aclose()

    def __aiter__(self) -> "BatchStream":
        return self

    @property
    def total_cells(self) -> int:
        return len(self._prepared.documents) * len(self._prepared.queries)

    async def __anext__(self) -> StreamItem:
        if (
            self._deadline is None
            or self._exhausted
            or self._yielded >= self.total_cells
        ):
            # With every cell already yielded the only remaining outcome
            # is StopAsyncIteration: a deadline lapsing just after the
            # last yield must not turn a fully-successful batch into a
            # DeadlineExceededError on its final __anext__.
            item = await self._generator.__anext__()
        else:
            remaining = self._deadline - time.monotonic()
            if remaining <= 0:
                await self._expire()
            try:
                item = await asyncio.wait_for(
                    self._generator.__anext__(), remaining
                )
            except asyncio.TimeoutError:
                await self._expire()
        self._yielded += 1
        return item

    async def _expire(self) -> None:
        """Deadline hit: close the stream (cancelling and awaiting the
        remaining shard tasks) and surface the typed marker."""
        self.deadline_exceeded = True
        await self.aclose()
        raise DeadlineExceededError(
            f"batch deadline exceeded after {self._yielded} of "
            f"{self.total_cells} result cells",
            completed=self._yielded,
            total=self.total_cells,
        )

    async def aclose(self) -> None:
        """Cancel the in-flight shards and close the stream."""
        await self._generator.aclose()


class AsyncQueryService:
    """Async facade over a (thread-safe) :class:`QueryService`.

    Pass an existing service to share its caches with synchronous
    callers, or construction keyword arguments to build a private one.
    Single evaluations go through the shared service's plan/result caches
    (offloaded to a thread); sharded batches build one fresh service per
    shard from the same configuration, exactly like the sync backends, so
    async results and statistics are comparable counter-for-counter.
    """

    def __init__(self, service: QueryService | None = None, **config):
        if service is not None and config:
            raise ValueError(
                "pass either an existing QueryService or constructor "
                "arguments for a new one, not both"
            )
        self.service = service if service is not None else QueryService(**config)

    # ------------------------------------------------------------------

    async def evaluate(
        self,
        query,
        document: Document,
        context_node: Node | None = None,
        context_position: int = 1,
        context_size: int = 1,
        algorithm: str = "auto",
        cached: bool = True,
    ):
        """One evaluation through the shared service's caches, offloaded
        to a worker thread (the evaluation work is GIL-bound Python; the
        event loop stays free while it runs)."""
        return await asyncio.to_thread(
            self.service.evaluate,
            query,
            document,
            context_node=context_node,
            context_position=context_position,
            context_size=context_size,
            algorithm=algorithm,
            cached=cached,
        )

    async def evaluate_many(
        self,
        queries,
        documents,
        algorithm: str = "auto",
        workers: int = 1,
        shard_by: str = "round-robin",
        max_concurrency: int | None = None,
        share: bool = True,
    ) -> BatchResult:
        """Every query against every document — the barrier form.

        ``workers <= 1`` offloads the whole sequential batch (through the
        shared service's caches) to one thread; ``workers > 1`` shards by
        document onto an :class:`AsyncScheduler` and merges, returning a
        ``BatchResult`` value-identical to every sync backend with stats
        that are the exact per-shard sums.

        Note that unsharded (``workers <= 1``) batches report per-batch
        stats as deltas of the shared service's lifetime counters, so
        *concurrent* unsharded batches on one service attribute each
        other's lookups (see :class:`QueryService`); sharded batches use
        fresh per-shard services and are exact under any concurrency.
        """
        if workers <= 1:
            return await asyncio.to_thread(
                self.service.evaluate_many,
                queries,
                documents,
                algorithm=algorithm,
                share=share,
            )
        scheduler = self._scheduler(workers, shard_by, max_concurrency)
        prepared = scheduler.prepare(queries, documents, algorithm, share=share)
        outcomes = await scheduler.dispatch_async(prepared)
        return scheduler.merge(prepared, outcomes)

    def stream_many(
        self,
        queries,
        documents,
        algorithm: str = "auto",
        workers: int = 2,
        shard_by: str = "round-robin",
        max_concurrency: int | None = None,
        share: bool = True,
        deadline_seconds: float | None = None,
    ) -> BatchStream:
        """The streaming form: a :class:`BatchStream` yielding results as
        shards complete. Query compilation and shard planning happen
        *here*, synchronously, so syntax/fragment errors surface before
        any iteration starts; no work is dispatched until the stream is
        first awaited.

        ``deadline_seconds`` arms a cooperative per-batch deadline
        (measured from this call): iteration past it raises a typed
        :class:`~repro.errors.DeadlineExceededError` after closing the
        stream — already-yielded cells stay valid partial results, and
        shard evaluations already offloaded to worker threads finish
        there with their results dropped (thread offloads cannot be
        interrupted, only abandoned)."""
        scheduler = self._scheduler(workers, shard_by, max_concurrency)
        prepared = scheduler.prepare(queries, documents, algorithm, share=share)
        deadline = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        return BatchStream(scheduler, prepared, deadline=deadline)

    # ------------------------------------------------------------------

    def _scheduler(
        self, workers: int, shard_by: str, max_concurrency: int | None
    ) -> AsyncScheduler:
        return AsyncScheduler(
            workers=workers,
            shard_by=shard_by,
            max_concurrency=max_concurrency,
            history=self.service.shard_history,
            **self.service.config(),
        )
