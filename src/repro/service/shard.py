"""Shard planning: partition a batch's documents across workers.

Sharding is *by document* — each document's evaluation is independent
(plans are shared read-only, sessions are per-document), so a batch of
``Q`` queries × ``D`` documents splits cleanly into per-worker sub-batches
of ``Q × D_i`` with no cross-shard coordination. The planner only decides
*which* documents go together; execution strategy (threads vs processes)
is :mod:`repro.service.executor`'s concern, which keeps this layer
reusable for an async front end later (a coroutine scheduler needs the
same shard plans).

Two strategies:

* ``round-robin`` — document ``i`` goes to shard ``i mod workers``.
  O(D), no document inspection; right when documents are similar in size
  or arrival order already interleaves big and small.
* ``size-balanced`` — greedy longest-processing-time assignment on each
  document's node count (``|dom|``, the measure
  :mod:`repro.xml.statistics` reports as ``total_nodes``): documents are
  sorted by weight (descending) and each goes to the currently lightest
  shard. The paper's bounds are polynomial in ``|D|``, so node count is
  the principled proxy for per-document cost; LPT keeps the makespan
  within 4/3 of optimal.

Both strategies are deterministic, and every shard records the original
document indices so the executor can merge per-shard results back into
batch order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.xml.document import Document

#: The selectable shard-planning strategies.
SHARD_STRATEGIES = ("round-robin", "size-balanced")


@dataclass(frozen=True)
class Shard:
    """One worker's slice of a batch.

    Attributes:
        index: the worker slot this shard is assigned to.
        document_indices: positions (into the batch's document list) of
            the documents this shard evaluates, in batch order.
        weight: total node count of the shard's documents (``size-balanced``)
            or the document count (``round-robin``) — whatever the planner
            balanced on, kept for reporting.
    """

    index: int
    document_indices: tuple[int, ...]
    weight: int


def document_weight(document: Document) -> int:
    """The cost proxy ``size-balanced`` sharding balances on: ``|dom|``,
    the total node count — identical to
    :class:`repro.xml.statistics.DocumentStatistics.total_nodes`, but
    read in O(1) from the finalized document's numbering instead of
    re-walking the tree per batch. Swap in a fuller
    :func:`~repro.xml.statistics.document_statistics` shape measure
    (depth, fanout, text volume) here if plain size ever mis-balances a
    workload."""
    return len(document)


def plan_shards(
    documents,
    workers: int,
    strategy: str = "round-robin",
) -> list[Shard]:
    """Partition ``documents`` into at most ``workers`` shards.

    Returns one :class:`Shard` per *non-empty* worker slot (fewer
    documents than workers means fewer shards, never empty ones). Raises
    ``ValueError`` for ``workers < 1`` or an unknown strategy.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; choose from {SHARD_STRATEGIES}"
        )
    document_list = list(documents)
    if strategy == "round-robin":
        buckets: list[list[int]] = [[] for _ in range(workers)]
        for index in range(len(document_list)):
            buckets[index % workers].append(index)
        return [
            Shard(index=slot, document_indices=tuple(indices), weight=len(indices))
            for slot, indices in enumerate(buckets)
            if indices
        ]
    # size-balanced: greedy LPT over |dom| weights. The heap is keyed by
    # (current weight, slot) so ties break deterministically.
    weights = [document_weight(document) for document in document_list]
    order = sorted(range(len(document_list)), key=lambda i: (-weights[i], i))
    heap = [(0, slot) for slot in range(workers)]
    heapq.heapify(heap)
    assigned: dict[int, list[int]] = {slot: [] for slot in range(workers)}
    totals: dict[int, int] = {slot: 0 for slot in range(workers)}
    for index in order:
        total, slot = heapq.heappop(heap)
        assigned[slot].append(index)
        totals[slot] = total + weights[index]
        heapq.heappush(heap, (totals[slot], slot))
    return [
        Shard(
            index=slot,
            document_indices=tuple(sorted(assigned[slot])),
            weight=totals[slot],
        )
        for slot in range(workers)
        if assigned[slot]
    ]
