"""Shard planning: partition a batch's documents across workers.

Sharding is *by document* — each document's evaluation is independent
(plans are shared read-only, sessions are per-document), so a batch of
``Q`` queries × ``D`` documents splits cleanly into per-worker sub-batches
of ``Q × D_i`` with no cross-shard coordination. The planner only decides
*which* documents go together; execution strategy (threads vs processes)
is :mod:`repro.service.executor`'s concern, which keeps this layer
reusable for an async front end later (a coroutine scheduler needs the
same shard plans).

Two strategies:

* ``round-robin`` — document ``i`` goes to shard ``i mod workers``.
  O(D), no document inspection; right when documents are similar in size
  or arrival order already interleaves big and small.
* ``size-balanced`` — greedy longest-processing-time assignment on each
  document's node count (``|dom|``, the measure
  :mod:`repro.xml.statistics` reports as ``total_nodes``): documents are
  sorted by weight (descending) and each goes to the currently lightest
  shard. The paper's bounds are polynomial in ``|D|``, so node count is
  the principled proxy for per-document cost; LPT keeps the makespan
  within 4/3 of optimal.

Node count is only a *proxy* — two same-size documents can cost very
different amounts under position-heavy queries. :class:`ShardTimingHistory`
closes the loop: sharded batches record their observed per-shard wall
times (apportioned to documents by node count), and on repeat batches
the scheduler passes the predicted per-document seconds to
:func:`plan_shards` as explicit ``weights``, replacing the node-count
LPT with an observed-cost LPT. Predictions are exponentially smoothed
and the whole path is deterministic given the same history.

All strategies are deterministic, and every shard records the original
document indices so the executor can merge per-shard results back into
batch order.
"""

from __future__ import annotations

import heapq
import threading
import weakref
from dataclasses import dataclass

from repro.xml.document import Document

#: The selectable shard-planning strategies.
SHARD_STRATEGIES = ("round-robin", "size-balanced")


@dataclass(frozen=True)
class Shard:
    """One worker's slice of a batch.

    Attributes:
        index: the worker slot this shard is assigned to.
        document_indices: positions (into the batch's document list) of
            the documents this shard evaluates, in batch order.
        weight: whatever the planner balanced on, kept for reporting —
            total node count (``size-balanced``), the document count
            (``round-robin``), or predicted seconds (``size-balanced``
            with :class:`ShardTimingHistory` weights).
    """

    index: int
    document_indices: tuple[int, ...]
    weight: float


def document_weight(document: Document) -> int:
    """The cost proxy ``size-balanced`` sharding balances on: ``|dom|``,
    the total node count — identical to
    :class:`repro.xml.statistics.DocumentStatistics.total_nodes`, but
    read in O(1) from the finalized document's numbering instead of
    re-walking the tree per batch. Swap in a fuller
    :func:`~repro.xml.statistics.document_statistics` shape measure
    (depth, fanout, text volume) here if plain size ever mis-balances a
    workload."""
    return len(document)


def plan_shards(
    documents,
    workers: int,
    strategy: str = "round-robin",
    weights=None,
) -> list[Shard]:
    """Partition ``documents`` into at most ``workers`` shards.

    ``weights`` (optional, one number per document) replaces the
    node-count cost proxy for the ``size-balanced`` LPT — this is how
    :class:`ShardTimingHistory` predictions reach the planner. It is
    ignored by ``round-robin``, which never inspects documents.

    Returns one :class:`Shard` per *non-empty* worker slot (fewer
    documents than workers means fewer shards, never empty ones). Raises
    ``ValueError`` for ``workers < 1``, an unknown strategy, or a
    ``weights`` list whose length does not match ``documents``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; choose from {SHARD_STRATEGIES}"
        )
    document_list = list(documents)
    if weights is not None:
        weights = list(weights)
        if len(weights) != len(document_list):
            raise ValueError(
                f"got {len(weights)} weights for {len(document_list)} documents"
            )
    if strategy == "round-robin":
        buckets: list[list[int]] = [[] for _ in range(workers)]
        for index in range(len(document_list)):
            buckets[index % workers].append(index)
        return [
            Shard(index=slot, document_indices=tuple(indices), weight=len(indices))
            for slot, indices in enumerate(buckets)
            if indices
        ]
    # size-balanced: greedy LPT over |dom| (or caller-supplied) weights.
    # The heap is keyed by (current weight, slot) so ties break
    # deterministically.
    if weights is None:
        weights = [document_weight(document) for document in document_list]
    order = sorted(range(len(document_list)), key=lambda i: (-weights[i], i))
    heap = [(0, slot) for slot in range(workers)]
    heapq.heapify(heap)
    assigned: dict[int, list[int]] = {slot: [] for slot in range(workers)}
    totals: dict[int, int] = {slot: 0 for slot in range(workers)}
    for index in order:
        total, slot = heapq.heappop(heap)
        assigned[slot].append(index)
        totals[slot] = total + weights[index]
        heapq.heappush(heap, (totals[slot], slot))
    return [
        Shard(
            index=slot,
            document_indices=tuple(sorted(assigned[slot])),
            weight=totals[slot],
        )
        for slot in range(workers)
        if assigned[slot]
    ]


class ShardTimingHistory:
    """Observed per-document evaluation seconds, fed back as LPT weights.

    The scheduler layer records each completed shard's wall time here
    (:meth:`observe_shard` apportions it to the shard's documents in
    proportion to node count); :meth:`predicted_weights` turns the
    history into per-document weight predictions for the next batch —
    the smoothed observation for known documents, a history-wide
    seconds-per-node rate × node count for unseen ones. Everything is
    deterministic given the same sequence of observations, so repeat
    batches over the same corpus re-plan identically.

    Documents are keyed weakly: history never pins a served tree in
    memory, and a collected document simply drops out of the history.
    Thread-safe — the async scheduler records from event-loop callbacks
    while other batches may be planning.
    """

    def __init__(self, smoothing: float = 0.5):
        #: EMA weight of the newest observation (1.0 = always replace).
        self.smoothing = smoothing
        self._seconds: "weakref.WeakKeyDictionary[Document, float]" = (
            weakref.WeakKeyDictionary()
        )
        self._lock = threading.Lock()

    def observe(self, document: Document, seconds: float) -> None:
        """Fold one per-document time estimate into the history."""
        with self._lock:
            previous = self._seconds.get(document)
            if previous is None:
                self._seconds[document] = seconds
            else:
                self._seconds[document] = (
                    previous + self.smoothing * (seconds - previous)
                )

    def observe_shard(self, documents, elapsed_seconds: float) -> None:
        """Apportion one shard's wall time across its documents in
        proportion to node count (the best per-document split available
        without per-document instrumentation inside workers)."""
        documents = list(documents)
        total_nodes = sum(document_weight(document) for document in documents)
        if not documents or elapsed_seconds <= 0.0:
            return
        for document in documents:
            share = (
                document_weight(document) / total_nodes
                if total_nodes
                else 1.0 / len(documents)
            )
            self.observe(document, elapsed_seconds * share)

    def predicted_weights(self, documents) -> list[float] | None:
        """Per-document predicted seconds for a batch, or ``None`` when
        no document in the batch has history (callers then fall back to
        the node-count proxy). Unseen documents are predicted from the
        history-wide seconds-per-node rate, so one cold document cannot
        capsize an otherwise-informed plan."""
        documents = list(documents)
        with self._lock:
            known = {
                index: self._seconds[document]
                for index, document in enumerate(documents)
                if document in self._seconds
            }
        if not known:
            return None
        known_nodes = sum(document_weight(documents[index]) for index in known)
        rate = sum(known.values()) / max(1, known_nodes)
        return [
            known.get(index, rate * document_weight(document))
            for index, document in enumerate(documents)
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._seconds)
