"""Sharded batch execution: evaluate a batch's shards concurrently.

:class:`ShardedExecutor` is the scaling step the service layer was built
for (ROADMAP: "sharding documents across workers"): it takes the same
``queries × documents`` batch as :meth:`QueryService.evaluate_many`,
splits the documents into shards (:mod:`repro.service.shard`), evaluates
each shard in its own worker with its own :class:`QueryService`, and
merges the per-shard :class:`BatchResult`\\ s — values back into batch
order, cache statistics by exact counter summation.

Backends
--------

* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor` over the
  in-process documents. Zero serialization cost, results are the
  original :class:`~repro.xml.document.Node` objects, and workers are
  seeded with the parent's compiled plans (plans are immutable and
  thread-shareable, so nothing is compiled twice). CPython's GIL
  serializes the pure-Python evaluation work, though, so this backend is
  about isolation and latency overlap (e.g. interleaving many small
  shards behind one slow one), not CPU parallelism.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` for
  true parallelism. Documents cross the process boundary as serialized
  markup (:func:`repro.xml.serializer.serialize`) and are rebuilt by each
  worker's parser; for data-model-canonical documents (no adjacent text
  nodes — every parser-produced document) the round trip is
  node-isomorphic, so pre-order numbering is identical on both sides and
  workers return node-sets as lists of ``Node.pre`` indices, which the
  parent decodes back into *its* documents' node objects. A shard
  containing a non-canonical (builder-constructed) document falls back
  to in-parent evaluation — correct, just not parallel — because its
  reparse would renumber nodes and the index decoding would rebind
  results to the wrong parents. Each process worker recompiles its
  queries (an AST is cheap to rebuild, expensive to pickle). Worth it
  when per-shard evaluation cost dominates the serialize + rebuild +
  spawn overhead; pointless for tiny batches.

Statistics-merge semantics
--------------------------

Each worker's :class:`QueryService` is fresh, so its per-batch stats
deltas equal its lifetime counters. The merged ``plan_stats`` /
``result_stats`` are the *exact* sums of the per-shard hit/miss/eviction
counters (hit rate recomputed over the summed lookups), and the
unmerged per-shard snapshots are kept on ``BatchResult.shards`` so
nothing is lost in aggregation. Note what summation means here: the
merged counters describe the fleet, not one cache — under the process
backend each worker compiles its own plans, so a query evaluated on
``k`` shards contributes ``k`` plan-cache misses; under the thread
backend workers start with the parent's plans already cached, so the
same lookups are ``k`` (honest, warm) hits.

Each worker resolves each query's evaluation algorithm itself, but
resolution is deterministic (fragment classification is a pure function
of the compiled AST), so the parent's resolution — done up front, which
also surfaces syntax and fragment errors *before* any worker spawns —
always matches the workers'.

The shard-planning / execution / stats-merge split is deliberate: an
async front end can reuse :func:`repro.service.shard.plan_shards` and
:func:`merge_stats_snapshots` unchanged and only swap the middle layer
for a coroutine scheduler.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.service.plan import CompiledPlan
from repro.service.planner import compile_plan, resolve_algorithm
from repro.service.shard import SHARD_STRATEGIES, Shard, plan_shards
from repro.xml.document import Document
from repro.xml.parser import parse_document
from repro.xml.serializer import serialize

#: The selectable execution backends.
EXECUTOR_BACKENDS = ("thread", "process")


def merge_stats_snapshots(snapshots, name: str, capacity=None) -> dict:
    """Sum hit/miss/eviction counters across per-shard stats snapshots.

    The sums are exact (each worker counts every lookup exactly once and
    the shards are disjoint); the hit rate is recomputed over the summed
    lookups rather than averaged, so it is the fleet-wide rate.
    """
    merged = {"name": name, "capacity": capacity, "hits": 0, "misses": 0, "evictions": 0}
    for snapshot in snapshots:
        for key in ("hits", "misses", "evictions"):
            merged[key] += snapshot.get(key, 0)
    lookups = merged["hits"] + merged["misses"]
    merged["hit_rate"] = merged["hits"] / lookups if lookups else 0.0
    return merged


# ----------------------------------------------------------------------
# Worker entry points (module-level so the process backend can import
# them by reference in spawned interpreters).
# ----------------------------------------------------------------------


def _evaluate_shard(
    config: dict, queries: list[str], documents, algorithm: str, plans=None
):
    """Run one shard's sub-batch in a fresh service (thread backend).

    ``plans`` seeds the worker's plan cache with already-compiled plans —
    :class:`CompiledPlan` is immutable and freely shareable across
    threads, so in-process workers reuse the parent's compilations
    instead of redoing the frontend pipeline per worker."""
    from repro.service.service import QueryService

    service = QueryService(**config)
    for plan in plans or ():
        service.plans.put(plan.cache_key, plan)
    return service.evaluate_many(queries, documents, algorithm=algorithm)


def _document_is_canonical(document: Document) -> bool:
    """Conservative check that the serialize → parse round trip is
    node-isomorphic (same pre-order numbering on both sides), which the
    process backend's index decoding relies on. Parser-produced documents
    always pass; the builder can construct trees that don't:

    * adjacent text-node children — the reparse merges the run (the XPath
      data model requires merged text), removing nodes;
    * a comment containing ``--`` (or ending with ``-``) — serializes to
      markup that is not well-formed;
    * processing-instruction data containing ``?>`` — serializes to a PI
      that terminates early and leaves trailing nodes.

    This is the cheap known-hazard screen; the worker independently
    verifies the rebuilt node counts (see
    :func:`_evaluate_shard_serialized`), so anything that slips past
    falls back to in-parent evaluation rather than mis-binding results.
    """
    for node in document.nodes:
        if node.is_comment:
            value = node.value or ""
            if "--" in value or value.endswith("-"):
                return False
        elif node.is_processing_instruction:
            if "?>" in (node.value or ""):
                return False
        previous_was_text = False
        for child in node.children:
            is_text = child.is_text
            if is_text and previous_was_text:
                return False
            previous_was_text = is_text
    return True


def _encode_value(value):
    """Make one result cell picklable without shipping the tree back:
    node-sets become pre-order index lists, scalars pass through."""
    if isinstance(value, list):
        return ("nset", [node.pre for node in value])
    return ("scalar", value)


def _decode_value(encoded, document: Document):
    """Rebind an encoded cell to the parent process's document."""
    tag, payload = encoded
    if tag == "nset":
        nodes = document.nodes
        return [nodes[pre] for pre in payload]
    return payload


def _evaluate_shard_serialized(payload: dict) -> dict:
    """Process-backend worker: rebuild the shard's documents from markup,
    evaluate, and return an index-encoded result.

    Before evaluating, the rebuilt trees are verified against the parent's
    node counts: index decoding is only sound if the round trip preserved
    the pre-order numbering, so any mismatch (or a reparse failure) is
    reported as a fallback request instead of a result — the parent then
    evaluates that shard in-process. Mis-binding silently is the one
    outcome this layer must never produce."""
    from repro.errors import XMLSyntaxError

    try:
        documents = [
            parse_document(source, id_attribute=id_attribute)
            for source, id_attribute in payload["documents"]
        ]
    except XMLSyntaxError as error:
        return {"fallback": f"shard document does not reparse: {error}"}
    for document, expected in zip(documents, payload["node_counts"]):
        if len(document) != expected:
            return {
                "fallback": "serialize/parse round trip is not node-isomorphic "
                f"({expected} nodes became {len(document)})"
            }
    batch = _evaluate_shard(
        payload["config"], payload["queries"], documents, payload["algorithm"]
    )
    return {
        "values": [[_encode_value(value) for value in row] for row in batch.values],
        "plan_stats": batch.plan_stats,
        "result_stats": batch.result_stats,
    }


# ----------------------------------------------------------------------


class ShardedExecutor:
    """Partition a batch across workers and merge the shard results.

    Construction takes the same cache/compilation knobs as
    :class:`~repro.service.service.QueryService` — each worker builds its
    own service from them. ``workers`` is the maximum shard count;
    batches with fewer documents use fewer workers (never empty shards).

    The process backend requires scalar variable bindings: node-set and
    object bindings are bound to the parent's trees, and shipping them
    would pickle tree copies whose nodes then decode against the wrong
    document. Enforced at construction — use the thread backend for
    non-scalar bindings.
    """

    def __init__(
        self,
        workers: int = 2,
        backend: str = "thread",
        shard_by: str = "round-robin",
        plan_capacity: int = 256,
        session_capacity: int = 64,
        result_capacity: int | None = None,
        optimize: bool = False,
        variables: dict[str, object] | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor backend {backend!r}; choose from {EXECUTOR_BACKENDS}"
            )
        if shard_by not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {shard_by!r}; choose from {SHARD_STRATEGIES}"
            )
        if backend == "process":
            non_scalar = [
                name
                for name, value in (variables or {}).items()
                if not (value is None or isinstance(value, (str, float, int, bool)))
            ]
            if non_scalar:
                raise ValueError(
                    "process backend requires scalar variable bindings; "
                    f"non-scalar bindings {sorted(non_scalar)} are bound to the "
                    "parent's trees and cannot cross the process boundary — "
                    "use the thread backend"
                )
        self.workers = workers
        self.backend = backend
        self.shard_by = shard_by
        self.service_config = {
            "plan_capacity": plan_capacity,
            "session_capacity": session_capacity,
            "result_capacity": result_capacity,
            "optimize": optimize,
            "variables": dict(variables or {}),
        }

    # ------------------------------------------------------------------

    def _resolve_algorithms(
        self, queries: list[str], algorithm: str
    ) -> tuple[list[str], list[CompiledPlan]]:
        """Compile each distinct query once in the parent and resolve its
        algorithm — surfacing syntax/fragment errors before any worker
        starts, and fixing the merged result's ``algorithms`` list. The
        plans are returned so in-process workers can reuse them instead
        of recompiling (process workers must recompile: an AST is cheap
        to rebuild but expensive to pickle)."""
        plans: dict[str, CompiledPlan] = {}
        resolved = []
        for query in queries:
            plan = plans.get(query)
            if plan is None:
                plan = compile_plan(
                    query,
                    self.service_config["variables"],
                    self.service_config["optimize"],
                )
                plans[query] = plan
            resolved.append(resolve_algorithm(plan, algorithm))
        return resolved, list(plans.values())

    def _run_shard_local(
        self, shard: Shard, queries: list[str], documents: list, algorithm: str, plans
    ) -> dict:
        """Evaluate one shard in-process (thread workers, and the process
        backend's fallback for non-canonical documents)."""
        batch = _evaluate_shard(
            self.service_config,
            queries,
            [documents[i] for i in shard.document_indices],
            algorithm,
            plans=plans,
        )
        return {
            "values": batch.values,
            "plan_stats": batch.plan_stats,
            "result_stats": batch.result_stats,
        }

    def _run_shards(
        self,
        shards: list[Shard],
        queries: list[str],
        documents: list,
        algorithm: str,
        plans,
    ) -> list[dict]:
        """Evaluate every shard concurrently; returns, per shard, a dict
        with decoded ``values`` rows plus the shard's stats snapshots."""
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=len(shards)) as pool:
                futures = [
                    pool.submit(
                        self._run_shard_local, shard, queries, documents, algorithm, plans
                    )
                    for shard in shards
                ]
                return [future.result() for future in futures]
        # Process backend. A shard is shipped only if every one of its
        # documents round-trips node-isomorphically through serialize →
        # parse; otherwise the pre-index decoding would rebind results to
        # the wrong parent nodes, so the shard is evaluated in-parent
        # instead (correct, just not parallel — and only reachable with
        # builder-constructed trees that violate the merged-text
        # invariant; parsed documents always ship).
        shippable = {
            shard.index: all(
                _document_is_canonical(documents[i]) for i in shard.document_indices
            )
            for shard in shards
        }
        outcomes: dict[int, dict] = {}
        with ProcessPoolExecutor(
            max_workers=max(1, sum(shippable.values()))
        ) as pool:
            futures = {
                shard.index: pool.submit(
                    _evaluate_shard_serialized,
                    {
                        "config": self.service_config,
                        "queries": queries,
                        "algorithm": algorithm,
                        "documents": [
                            (serialize(documents[i]), documents[i].id_attribute)
                            for i in shard.document_indices
                        ],
                        "node_counts": [
                            len(documents[i]) for i in shard.document_indices
                        ],
                    },
                )
                for shard in shards
                if shippable[shard.index]
            }
            # Evaluate the unshippable shards here while the pool works.
            for shard in shards:
                if not shippable[shard.index]:
                    outcome = self._run_shard_local(
                        shard, queries, documents, algorithm, plans
                    )
                    outcome["local_fallback"] = "document is not round-trip canonical"
                    outcomes[shard.index] = outcome
            for shard in shards:
                if shippable[shard.index]:
                    outcome = futures[shard.index].result()
                    if "fallback" in outcome:
                        # The worker refused the shard (reparse failed or
                        # renumbered nodes); evaluate it here instead.
                        reason = outcome["fallback"]
                        outcome = self._run_shard_local(
                            shard, queries, documents, algorithm, plans
                        )
                        outcome["local_fallback"] = reason
                    else:
                        outcome["values"] = [
                            [
                                _decode_value(encoded, documents[doc_index])
                                for encoded in row
                            ]
                            for doc_index, row in zip(
                                shard.document_indices, outcome["values"]
                            )
                        ]
                    outcomes[shard.index] = outcome
        return [outcomes[shard.index] for shard in shards]

    def execute(self, queries, documents, algorithm: str = "auto"):
        """Evaluate every query against every document, sharded.

        Returns a merged :class:`~repro.service.service.BatchResult`:
        ``values`` in batch order (indistinguishable from the sequential
        path — process-backend node-sets are rebound to the parent's
        documents), ``plan_stats``/``result_stats`` summed exactly across
        shards, and per-shard snapshots on ``shards``.
        """
        from repro.service.service import BatchResult

        query_list = list(queries)
        document_list = list(documents)
        algorithms, plans = self._resolve_algorithms(query_list, algorithm)
        plan_capacity = self.service_config["plan_capacity"]
        if not document_list:
            return BatchResult(
                queries=query_list,
                document_count=0,
                values=[],
                algorithms=algorithms,
                plan_stats=merge_stats_snapshots([], "plan_cache", plan_capacity),
                result_stats=merge_stats_snapshots([], "result_cache"),
                workers=0,
                shards=[],
            )
        shards = plan_shards(document_list, self.workers, self.shard_by)
        outcomes = self._run_shards(shards, query_list, document_list, algorithm, plans)
        values: list[list[object] | None] = [None] * len(document_list)
        for shard, outcome in zip(shards, outcomes):
            for doc_index, row in zip(shard.document_indices, outcome["values"]):
                values[doc_index] = row
        return BatchResult(
            queries=query_list,
            document_count=len(document_list),
            values=values,
            algorithms=algorithms,
            plan_stats=merge_stats_snapshots(
                [outcome["plan_stats"] for outcome in outcomes],
                "plan_cache",
                plan_capacity,
            ),
            result_stats=merge_stats_snapshots(
                [outcome["result_stats"] for outcome in outcomes], "result_cache"
            ),
            workers=len(shards),
            shards=[
                {
                    "shard": shard.index,
                    "backend": self.backend,
                    "strategy": self.shard_by,
                    "documents": list(shard.document_indices),
                    "weight": shard.weight,
                    "local_fallback": outcome.get("local_fallback", False),
                    "plan_stats": outcome["plan_stats"],
                    "result_stats": outcome["result_stats"],
                }
                for shard, outcome in zip(shards, outcomes)
            ],
        )
