"""Sharded batch execution — the compatibility facade over the schedulers.

:class:`ShardedExecutor` was PR 2's entry point for concurrent per-shard
evaluation; its middle layer (how shards are dispatched) has since been
extracted into the pluggable :mod:`repro.service.scheduler` abstraction
— ``prepare → dispatch → merge`` with ``serial``/``thread``/``process``/
``async`` backends. This module keeps the original construction-time API
(``ShardedExecutor(workers=, backend=, shard_by=, ...)``) as a thin
wrapper that builds the named scheduler and delegates ``execute`` to it,
so every PR 2 call site keeps working unchanged.

The worker entry points (``_evaluate_shard``,
``_evaluate_shard_snapshots``, value codecs) and
:func:`merge_stats_snapshots` now live in the scheduler module and are
re-exported here for backward compatibility.
"""

from __future__ import annotations

from repro.service.scheduler import (  # noqa: F401  (re-exports)
    SCHEDULER_BACKENDS,
    Scheduler,
    _decode_value,
    _encode_value,
    _evaluate_shard,
    _evaluate_shard_snapshots,
    make_scheduler,
    merge_batch_plan_snapshots,
    merge_stats_snapshots,
)

#: The selectable execution backends (scheduler names).
EXECUTOR_BACKENDS = SCHEDULER_BACKENDS


class ShardedExecutor:
    """Partition a batch across workers and merge the shard results.

    A thin facade: ``backend`` names the :class:`Scheduler` that does the
    work (see :data:`EXECUTOR_BACKENDS`); construction takes the same
    cache/compilation knobs as :class:`~repro.service.service.QueryService`
    — each worker builds its own service from them. ``workers`` is the
    maximum shard count; batches with fewer documents use fewer shards
    (never empty ones).
    """

    def __init__(
        self,
        workers: int = 2,
        backend: str = "thread",
        shard_by: str = "round-robin",
        plan_capacity: int = 256,
        session_capacity: int = 64,
        result_capacity: int | None = None,
        optimize: bool = False,
        variables: dict[str, object] | None = None,
        specialize: bool = True,
        history=None,
    ):
        self.scheduler = make_scheduler(
            backend,
            workers=workers,
            shard_by=shard_by,
            plan_capacity=plan_capacity,
            session_capacity=session_capacity,
            result_capacity=result_capacity,
            optimize=optimize,
            variables=variables,
            specialize=specialize,
            history=history,
        )
        self.workers = workers
        self.backend = backend
        self.shard_by = shard_by
        self.service_config = self.scheduler.service_config

    def execute(self, queries, documents, algorithm: str = "auto", share: bool = True):
        """Evaluate every query against every document, sharded.

        Returns a merged :class:`~repro.service.service.BatchResult`:
        ``values`` in batch order (indistinguishable from the sequential
        path — process-backend node-sets are rebound to the parent's
        documents), ``plan_stats``/``result_stats``/``batch_plan`` summed
        exactly across shards, and per-shard snapshots on ``shards``.
        ``share`` forwards the batch-sharing knob to every worker (each
        shard builds its own step DAG).
        """
        return self.scheduler.execute(
            queries, documents, algorithm=algorithm, share=share
        )
