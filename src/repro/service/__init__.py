"""The service layer: staged compilation, batch sharing, scheduling.

The paper's algorithms bound *evaluation* cost; this package amortizes
everything that happens before evaluation, then keeps the evaluators
saturated. A batch flows through five layers — logical → batch →
physical → schedule → merge:

1. **logical planning (document-independent)** — each distinct
   ``(query, options)`` pair is compiled once (parse → normalize →
   rewrite → relevance → fragment classification → trait extraction)
   into a :class:`LogicalPlan`, held in the exact-accounting LRU
   :class:`PlanCache`. A logical plan deliberately names *no* evaluator:
   it carries the fragment classification and the cost features
   (:class:`~repro.service.plan.PlanTraits`) that the physical stage
   reads — including ``step_keys``, the canonical per-step rendering of
   plain absolute paths that the batch stage keys on.
2. **batch planning (per batch of queries)** — between logical planning
   and per-document work, :func:`repro.service.batchplan.build_batch_plan`
   unifies the batch's common step prefixes into a shared-step DAG
   (:class:`~repro.service.batchplan.BatchPlan`): each distinct
   (step-prefix, document) node-set is evaluated at most once — lazily,
   only when a consumer actually misses the per-document result memo —
   and every consumer plan resumes from its longest materialized prefix
   (Core residuals continue the sorted-pre-array sweep via
   :meth:`~repro.core.corexpath.CoreXPathEvaluator.forward_from_pres`;
   non-Core residuals evaluate a :class:`~repro.xpath.ast.ConstantNodeSet`-
   rooted residual plan). Sharing only ever removes work: any per-cell
   error falls back to independent evaluation of exactly that cell, so
   the paper's worst-case bounds are untouched, and ``share=False``
   (``--no-share``) reproduces independent evaluation byte-identically,
   stats included. Exact accounting lives on
   :class:`repro.stats.BatchPlanStats` (``BatchResult.batch_plan``).
3. **physical specialization (per document)** — a
   :class:`PlanSpecializer` combines a logical plan with a
   :class:`DocumentProfile` (node count, depth, fanout, text ratio,
   per-tag counts) and picks the evaluator via a small explicit cost
   model seeded from the paper's complexity bounds and refined online by
   observed per-algorithm timings (:class:`repro.stats.TimingStats`).
   Since PR 5 the model also prices the evaluators' *indexed* fast
   paths: every candidate's set sweeps run through the fused
   axis+name-test kernels of :mod:`repro.axes` (per-document
   :class:`~repro.xml.index.NodeIndex`, output-sensitive partition
   range queries), so a plan's name-tested interval-axis steps combined
   with the profile's tag counts shrink the sweep share of its estimate
   (:func:`repro.service.specialize.name_test_selectivity`). Candidates
   are restricted to the worst-case-bounded evaluators (``mincontext``,
   ``optmincontext``, and ``corexpath`` inside Core XPath), with
   guarantee clamps above a size threshold — so a mis-estimate costs
   constants, never asymptotics. The same shape of guarantee holds one
   layer down: the *fallback guarantee for the kernels themselves lives
   in the axis dispatch* (:func:`repro.axes.axes.fused_axis_set`), which
   reverts to the Definition-1 ``O(|D|)`` scans whenever predicted
   output is large — evaluator choice and kernel choice can both be
   wrong and the paper's bounds still hold. Specializations are
   memoized in a profile-bucketed memo with exact counters
   (``specialize_cache``) whose eviction victimizes the globally-LRU
   entry of a *largest* profile bucket — one hot profile cannot evict
   every other profile's entries; ``specialize=False`` anywhere in the
   stack falls back to the static fragment dispatch
   (:func:`resolve_algorithm`).
4. **scheduling** — the pluggable middle layer
   (:mod:`repro.service.scheduler`): ``prepare`` plans document shards
   (LPT on node counts — or on *observed per-document seconds* once a
   :class:`~repro.service.shard.ShardTimingHistory` has seen the
   documents), ``dispatch`` evaluates them. Backends:
   :class:`SerialScheduler` (reference), :class:`ThreadScheduler`
   (``ThreadPoolExecutor`` overlap), :class:`ProcessScheduler` (true
   parallelism; documents rebuilt per worker, node-sets rebound by
   pre-order index), and :class:`AsyncScheduler` (asyncio
   coroutine-per-shard, bounded semaphore, thread offload — also the
   only backend that can *stream* shard outcomes as they complete).
   Batch sharing composes: each worker builds its own step DAG over its
   shard, so process workers stay self-contained.
5. **merge** — per-shard values reassembled into batch order, cache and
   batch-plan counters summed exactly (:func:`merge_stats_snapshots` /
   :func:`~repro.service.scheduler.merge_batch_plan_snapshots`;
   incremental form: :meth:`repro.stats.CacheStats.absorb_snapshot`),
   and each shard's wall time fed back into the timing history,
   producing one :class:`BatchResult` regardless of backend.

Modules:

* :mod:`repro.service.plan` — :class:`LogicalPlan` (aliases
  ``CompiledPlan``/``CompiledQuery``) / :class:`PlanTraits` /
  :class:`PlanOptions`;
* :mod:`repro.service.planner` — the logical frontend pipeline and the
  static algorithm dispatch;
* :mod:`repro.service.batchplan` — the batch layer: :class:`BatchPlan` /
  :func:`build_batch_plan`, prefix unification and residual evaluation;
* :mod:`repro.service.specialize` — the physical layer:
  :class:`DocumentProfile`, :class:`PhysicalPlan`,
  :class:`PlanSpecializer`, the cost model;
* :mod:`repro.service.cache` — the thread-safe, exact-accounting LRU
  :class:`PlanCache`;
* :mod:`repro.service.service` — :class:`QueryService` /
  :class:`DocumentSession` / :class:`BatchResult` (thread-safe: one
  service may be shared across concurrent drivers);
* :mod:`repro.service.shard` — deterministic shard planning +
  :class:`ShardTimingHistory` (adaptive weights from observed times);
* :mod:`repro.service.scheduler` — the :class:`Scheduler` seam and its
  four backends;
* :mod:`repro.service.executor` — :class:`ShardedExecutor`, the
  backward-compatible facade that selects a scheduler by backend name;
* :mod:`repro.service.async_service` — :class:`AsyncQueryService` /
  :class:`BatchStream`, the coroutine front end.

Quickstart::

    from repro import QueryService, parse_document

    service = QueryService(plan_capacity=128)    # specialization on
    docs = [parse_document(x) for x in sources]
    batch = service.evaluate_many(["//book/title", "//book[price > 20]"], docs)
    batch.value(0, 1)                      # doc 0, second query
    batch.batch_plan                       # shared-step DAG counters
    service.cache_stats()["plan_cache"]    # hits / misses / hit_rate
    service.cache_stats()["specialize_cache"]   # physical memo counters

Inspecting the stages — what runs where, and why::

    plan = service.plan("//book[price > 20]/title")   # logical (cached)
    plan.best_algorithm()              # static dispatch: 'optmincontext'
    from repro.service.specialize import document_profile
    physical = service.specializer.specialize(plan, document_profile(docs[0]))
    physical.algorithm                 # e.g. 'mincontext' on a small doc
    physical.rationale                 # the profile features that decided
    from repro.service.batchplan import build_batch_plan
    print(build_batch_plan([plan, service.plan("//book/title")]).describe())
    # CLI forms: repro-xpath plan --explain --file doc.xml QUERY
    #            repro-xpath plan --explain-batch QUERY QUERY...

Scaling out, same API — shard the batch across workers::

    batch = service.evaluate_many(queries, docs, workers=4,
                                  shard_by="size-balanced", backend="process")
    batch.workers        # shards actually used
    batch.shards         # per-shard documents, weights, wall times, stats
    batch.plan_stats     # exact sum of the per-shard counters
    # Repeat batches re-balance on the observed per-shard wall times
    # recorded in service.shard_history (adaptive LPT weighting).

Serving from an event loop — the async front end::

    from repro.service import AsyncQueryService

    async_service = AsyncQueryService(service)       # shares the caches
    value = await async_service.evaluate("//b", doc)
    batch = await async_service.evaluate_many(queries, docs, workers=4)
    stream = async_service.stream_many(queries, docs, workers=4,
                                       shard_by="size-balanced")
    async for item in stream:            # results as shards complete
        print(item.document_index, item.query, item.value)
    stream.batch()                       # merged BatchResult, exact stats
"""

from repro.service.async_service import AsyncQueryService, BatchStream, StreamItem
from repro.service.batchplan import BatchPlan, build_batch_plan
from repro.service.cache import PlanCache
from repro.service.executor import (
    EXECUTOR_BACKENDS,
    ShardedExecutor,
    merge_stats_snapshots,
)
from repro.service.plan import (
    CompiledPlan,
    CompiledQuery,
    LogicalPlan,
    PlanOptions,
    PlanTraits,
    compute_traits,
    plan_key,
)
from repro.service.planner import (
    ALGORITHMS,
    QueryPlanner,
    compile_plan,
    make_evaluator,
    resolve_algorithm,
)
from repro.service.scheduler import (
    SCHEDULER_BACKENDS,
    AsyncScheduler,
    PreparedBatch,
    ProcessScheduler,
    Scheduler,
    SerialScheduler,
    ThreadScheduler,
    make_scheduler,
)
from repro.service.service import BatchResult, DocumentSession, QueryService
from repro.service.shard import (
    SHARD_STRATEGIES,
    Shard,
    ShardTimingHistory,
    plan_shards,
)
from repro.service.specialize import (
    DocumentProfile,
    PhysicalPlan,
    PlanSpecializer,
    document_profile,
)

__all__ = [
    "ALGORITHMS",
    "AsyncQueryService",
    "AsyncScheduler",
    "BatchPlan",
    "BatchResult",
    "BatchStream",
    "CompiledPlan",
    "CompiledQuery",
    "DocumentProfile",
    "DocumentSession",
    "EXECUTOR_BACKENDS",
    "LogicalPlan",
    "PhysicalPlan",
    "PlanCache",
    "PlanOptions",
    "PlanSpecializer",
    "PlanTraits",
    "PreparedBatch",
    "ProcessScheduler",
    "QueryPlanner",
    "QueryService",
    "SCHEDULER_BACKENDS",
    "SHARD_STRATEGIES",
    "Scheduler",
    "SerialScheduler",
    "Shard",
    "ShardTimingHistory",
    "ShardedExecutor",
    "StreamItem",
    "ThreadScheduler",
    "build_batch_plan",
    "compile_plan",
    "compute_traits",
    "document_profile",
    "make_evaluator",
    "make_scheduler",
    "merge_stats_snapshots",
    "plan_key",
    "plan_shards",
    "resolve_algorithm",
]
