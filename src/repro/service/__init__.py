"""The service layer: compiled-plan caching, batch evaluation, scheduling.

The paper's algorithms bound *evaluation* cost; this package amortizes
everything that happens before evaluation, then keeps the evaluators
saturated. A batch flows through three layers:

1. **planner** — each distinct ``(query, options)`` pair is compiled
   once (parse → normalize → rewrite → relevance → fragment
   classification) into a :class:`CompiledPlan`, held in the
   exact-accounting LRU :class:`PlanCache`; shard planning
   (:mod:`repro.service.shard`) partitions the batch's documents across
   workers. Both are deterministic and backend-independent.
2. **scheduler** — the pluggable middle layer
   (:mod:`repro.service.scheduler`): ``dispatch`` evaluates the planned
   shards. This is the only layer a backend replaces —
   :class:`SerialScheduler` (one-after-another reference),
   :class:`ThreadScheduler` (``ThreadPoolExecutor`` overlap),
   :class:`ProcessScheduler` (true parallelism; documents rebuilt per
   worker, node-sets rebound by pre-order index), and
   :class:`AsyncScheduler` (asyncio coroutine-per-shard, bounded
   semaphore, thread offload — also the only backend that can *stream*
   shard outcomes as they complete).
3. **merge** — per-shard values reassembled into batch order and cache
   counters summed exactly (:func:`merge_stats_snapshots`; incremental
   form: :meth:`repro.stats.CacheStats.absorb_snapshot`), producing one
   :class:`BatchResult` regardless of backend.

Modules:

* :mod:`repro.service.plan` — :class:`CompiledPlan` / :class:`PlanOptions`;
* :mod:`repro.service.planner` — the frontend pipeline and algorithm
  dispatch;
* :mod:`repro.service.cache` — the thread-safe, exact-accounting LRU
  :class:`PlanCache`;
* :mod:`repro.service.service` — :class:`QueryService` /
  :class:`DocumentSession` / :class:`BatchResult` (thread-safe: one
  service may be shared across concurrent drivers);
* :mod:`repro.service.shard` — deterministic shard planning;
* :mod:`repro.service.scheduler` — the :class:`Scheduler` seam and its
  four backends;
* :mod:`repro.service.executor` — :class:`ShardedExecutor`, the
  backward-compatible facade that selects a scheduler by backend name;
* :mod:`repro.service.async_service` — :class:`AsyncQueryService` /
  :class:`BatchStream`, the coroutine front end.

Quickstart::

    from repro import QueryService, parse_document

    service = QueryService(plan_capacity=128)
    docs = [parse_document(x) for x in sources]
    batch = service.evaluate_many(["//book/title", "//book[price > 20]"], docs)
    batch.value(0, 1)                      # doc 0, second query
    service.cache_stats()["plan_cache"]    # hits / misses / hit_rate

Scaling out, same API — shard the batch across workers::

    batch = service.evaluate_many(queries, docs, workers=4,
                                  shard_by="size-balanced", backend="process")
    batch.workers        # shards actually used
    batch.shards         # per-shard documents, weights, stats snapshots
    batch.plan_stats     # exact sum of the per-shard counters

Serving from an event loop — the async front end::

    from repro.service import AsyncQueryService

    async_service = AsyncQueryService(service)       # shares the caches
    value = await async_service.evaluate("//b", doc)
    batch = await async_service.evaluate_many(queries, docs, workers=4)
    stream = async_service.stream_many(queries, docs, workers=4,
                                       shard_by="size-balanced")
    async for item in stream:            # results as shards complete
        print(item.document_index, item.query, item.value)
    stream.batch()                       # merged BatchResult, exact stats
"""

from repro.service.async_service import AsyncQueryService, BatchStream, StreamItem
from repro.service.cache import PlanCache
from repro.service.executor import (
    EXECUTOR_BACKENDS,
    ShardedExecutor,
    merge_stats_snapshots,
)
from repro.service.plan import CompiledPlan, CompiledQuery, PlanOptions, plan_key
from repro.service.planner import (
    ALGORITHMS,
    QueryPlanner,
    compile_plan,
    make_evaluator,
    resolve_algorithm,
)
from repro.service.scheduler import (
    SCHEDULER_BACKENDS,
    AsyncScheduler,
    PreparedBatch,
    ProcessScheduler,
    Scheduler,
    SerialScheduler,
    ThreadScheduler,
    make_scheduler,
)
from repro.service.service import BatchResult, DocumentSession, QueryService
from repro.service.shard import SHARD_STRATEGIES, Shard, plan_shards

__all__ = [
    "ALGORITHMS",
    "AsyncQueryService",
    "AsyncScheduler",
    "BatchResult",
    "BatchStream",
    "CompiledPlan",
    "CompiledQuery",
    "DocumentSession",
    "EXECUTOR_BACKENDS",
    "PlanCache",
    "PlanOptions",
    "PreparedBatch",
    "ProcessScheduler",
    "QueryPlanner",
    "QueryService",
    "SCHEDULER_BACKENDS",
    "SHARD_STRATEGIES",
    "Scheduler",
    "SerialScheduler",
    "Shard",
    "ShardedExecutor",
    "StreamItem",
    "ThreadScheduler",
    "compile_plan",
    "make_evaluator",
    "make_scheduler",
    "merge_stats_snapshots",
    "plan_key",
    "plan_shards",
    "resolve_algorithm",
]
