"""The service layer: compiled-plan caching and batch evaluation.

The paper's algorithms bound *evaluation* cost; this package amortizes
everything that happens before evaluation. Structure:

* :mod:`repro.service.plan` — :class:`CompiledPlan` (the reusable
  artifact) and :class:`PlanOptions` (its cache-key options);
* :mod:`repro.service.planner` — the frontend pipeline and algorithm
  dispatch, shared by the engine facade and the service;
* :mod:`repro.service.cache` — the exact-accounting LRU
  :class:`PlanCache`;
* :mod:`repro.service.service` — :class:`QueryService` /
  :class:`DocumentSession` / :class:`BatchResult`, the compile-once,
  evaluate-many entry points.

Quickstart::

    from repro import QueryService, parse_document

    service = QueryService(plan_capacity=128)
    docs = [parse_document(x) for x in sources]
    batch = service.evaluate_many(["//book/title", "//book[price > 20]"], docs)
    batch.value(0, 1)                      # doc 0, second query
    service.cache_stats()["plan_cache"]    # hits / misses / hit_rate
"""

from repro.service.cache import PlanCache
from repro.service.plan import CompiledPlan, CompiledQuery, PlanOptions, plan_key
from repro.service.planner import (
    ALGORITHMS,
    QueryPlanner,
    compile_plan,
    make_evaluator,
    resolve_algorithm,
)
from repro.service.service import BatchResult, DocumentSession, QueryService

__all__ = [
    "ALGORITHMS",
    "BatchResult",
    "CompiledPlan",
    "CompiledQuery",
    "DocumentSession",
    "PlanCache",
    "PlanOptions",
    "QueryPlanner",
    "QueryService",
    "compile_plan",
    "make_evaluator",
    "plan_key",
    "resolve_algorithm",
]
