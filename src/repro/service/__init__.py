"""The service layer: compiled-plan caching and batch evaluation.

The paper's algorithms bound *evaluation* cost; this package amortizes
everything that happens before evaluation. Structure:

* :mod:`repro.service.plan` — :class:`CompiledPlan` (the reusable
  artifact) and :class:`PlanOptions` (its cache-key options);
* :mod:`repro.service.planner` — the frontend pipeline and algorithm
  dispatch, shared by the engine facade and the service;
* :mod:`repro.service.cache` — the exact-accounting LRU
  :class:`PlanCache`;
* :mod:`repro.service.service` — :class:`QueryService` /
  :class:`DocumentSession` / :class:`BatchResult`, the compile-once,
  evaluate-many entry points;
* :mod:`repro.service.shard` — deterministic shard planning
  (round-robin and size-balanced document partitioning);
* :mod:`repro.service.executor` — :class:`ShardedExecutor`, concurrent
  per-shard evaluation (thread or process backend) with exact
  cache-statistics merging.

Quickstart::

    from repro import QueryService, parse_document

    service = QueryService(plan_capacity=128)
    docs = [parse_document(x) for x in sources]
    batch = service.evaluate_many(["//book/title", "//book[price > 20]"], docs)
    batch.value(0, 1)                      # doc 0, second query
    service.cache_stats()["plan_cache"]    # hits / misses / hit_rate

Scaling out, same API — shard the batch across workers::

    batch = service.evaluate_many(queries, docs, workers=4,
                                  shard_by="size-balanced", backend="process")
    batch.workers        # shards actually used
    batch.shards         # per-shard documents, weights, stats snapshots
    batch.plan_stats     # exact sum of the per-shard counters
"""

from repro.service.cache import PlanCache
from repro.service.executor import (
    EXECUTOR_BACKENDS,
    ShardedExecutor,
    merge_stats_snapshots,
)
from repro.service.plan import CompiledPlan, CompiledQuery, PlanOptions, plan_key
from repro.service.planner import (
    ALGORITHMS,
    QueryPlanner,
    compile_plan,
    make_evaluator,
    resolve_algorithm,
)
from repro.service.service import BatchResult, DocumentSession, QueryService
from repro.service.shard import SHARD_STRATEGIES, Shard, plan_shards

__all__ = [
    "ALGORITHMS",
    "BatchResult",
    "CompiledPlan",
    "CompiledQuery",
    "DocumentSession",
    "EXECUTOR_BACKENDS",
    "PlanCache",
    "PlanOptions",
    "QueryPlanner",
    "QueryService",
    "SHARD_STRATEGIES",
    "Shard",
    "ShardedExecutor",
    "compile_plan",
    "make_evaluator",
    "merge_stats_snapshots",
    "plan_key",
    "plan_shards",
    "resolve_algorithm",
]
