"""Batch-shared step DAG — the multi-query stage between logical
planning and per-document specialization.

The paper's polynomial algorithms win by never recomputing a
context–subexpression pair *within* one query; this module lifts the
same memoization theme *across* a batch. ``evaluate_many``'s queries
routinely share structure — common absolute-path prefixes, repeated
axis::test steps, overlapping predicates — and evaluating every (query,
document) cell independently recomputes those shared intermediate
node-sets once per query. Instead:

1. Every sharable :class:`~repro.service.plan.LogicalPlan` (a plain
   absolute location path, classified at compile time via
   ``traits.step_keys`` — canonical per-step unparse renderings of the
   *normalized* AST, so ``//a`` and
   ``/descendant-or-self::node()/child::a`` unify) contributes its chain
   of step keys.
2. The chains are unified into a prefix DAG: every step prefix with at
   least two distinct consumer plans becomes a *materialized* prefix
   node, compiled once into its own prefix plan (cloned from a consumer,
   so no unparse→reparse round trip is trusted) whose parent is its
   longest materialized proper prefix.
3. Per document, each distinct (prefix, document) node-set is evaluated
   at most once — lazily, only when a consumer actually misses the
   session memo — as a residual sweep over its parent's sorted pre
   array, and fed through the existing
   :class:`~repro.service.service.DocumentSession` result memo
   (:meth:`~repro.service.service.DocumentSession.evaluate_computed`),
   so repeat batches, duplicate queries, and ``share=False`` runs all
   see compatible memo entries.
4. Each consumer plan is then evaluated as a residual of its longest
   materialized prefix: Core-step suffixes resume the Theorem 13
   forward sweep directly from the prefix's pre array
   (:meth:`~repro.core.corexpath.CoreXPathEvaluator.forward_from_pres`);
   suffixes with full-XPath predicates become a
   :class:`~repro.xpath.ast.ConstantNodeSet`-rooted residual plan whose
   evaluator the specializer prices against the *remaining* work
   (:meth:`~repro.service.specialize.PlanSpecializer.specialize_residual`).

Soundness: a location step is a pure set function of its origin set —
per-origin candidate lists (so positional predicates rank within each
origin, exactly as unsplit evaluation does), unioned — hence splitting
an absolute path at any step boundary preserves its value. The two
sharing exclusions are plans embedding a ``ConstantNodeSet`` (its
unparse renders only the set's *size*, so different bindings would
collide on one step key; ``traits.step_keys`` is empty for them) and
forced algorithms (``algorithm != 'auto'`` must run the requested
evaluator, so :meth:`QueryService.evaluate_many` only builds a DAG for
``auto`` batches).

Worst-case guarantees do not regress: sharing only ever *removes* work
(prefixes are lazy, each computed at most once per document, and the
telescoped prefix cost assigned to a miss cell never exceeds the steps
independent evaluation would have spent — see
:class:`repro.stats.BatchPlanStats`), and any per-cell error falls back
to an independent evaluation of that cell, keeping the paper's bounds
intact cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.service.plan import LogicalPlan, PlanOptions, compute_traits
from repro.stats import BatchPlanStats
from repro.xml.document import Document
from repro.xpath.ast import (
    BinaryOp,
    ConstantNodeSet,
    Expr,
    FunctionCall,
    Negate,
    NumberLiteral,
    Path,
    Step,
    StringLiteral,
    Union,
    VariableRef,
)
from repro.xpath.fragments import (
    core_xpath_violation,
    find_bottomup_paths,
    wadler_violation,
)
from repro.xpath.relevance import compute_relevance


# ----------------------------------------------------------------------
# AST cloning
# ----------------------------------------------------------------------


def clone_expr(expr: Expr) -> Expr:
    """A structural deep copy of a normalized AST fragment.

    Prefix and residual plans re-root step lists taken from consumer
    plans; reusing the original ``Step`` objects would be unsound
    because :func:`~repro.xpath.relevance.compute_relevance` *mutates*
    the ``relev`` slots it annotates — recomputing relevance for the new
    root on shared nodes would corrupt the consumer plan. Clones get
    fresh uids (the table-based evaluators key side tables by uid),
    carry over ``value_type`` (normalization already ran on the source),
    and share the immutable :class:`~repro.xpath.ast.NodeTest` and the
    members of a :class:`~repro.xpath.ast.ConstantNodeSet`.
    """
    if isinstance(expr, NumberLiteral):
        copy: Expr = NumberLiteral(expr.value)
    elif isinstance(expr, StringLiteral):
        copy = StringLiteral(expr.value)
    elif isinstance(expr, VariableRef):
        copy = VariableRef(expr.name)
    elif isinstance(expr, ConstantNodeSet):
        copy = ConstantNodeSet(expr.nodes)
    elif isinstance(expr, FunctionCall):
        copy = FunctionCall(expr.name, [clone_expr(arg) for arg in expr.args])
    elif isinstance(expr, BinaryOp):
        copy = BinaryOp(expr.op, clone_expr(expr.left), clone_expr(expr.right))
    elif isinstance(expr, Negate):
        copy = Negate(clone_expr(expr.operand))
    elif isinstance(expr, Union):
        copy = Union(clone_expr(expr.left), clone_expr(expr.right))
    elif isinstance(expr, Path):
        copy = Path(
            absolute=expr.absolute,
            primary=None if expr.primary is None else clone_expr(expr.primary),
            primary_predicates=[clone_expr(p) for p in expr.primary_predicates],
            steps=[clone_step(s) for s in expr.steps],
        )
    else:
        raise ReproError(f"cannot clone AST node: {type(expr).__name__}")
    copy.value_type = expr.value_type
    return copy


def clone_step(step: Step) -> Step:
    """Clone one location step (see :func:`clone_expr`)."""
    copy = Step(step.axis, step.node_test, [clone_expr(p) for p in step.predicates])
    copy.value_type = step.value_type
    return copy


def _steps_are_core(steps: list[Step]) -> bool:
    """Whether a step suffix can resume the Core XPath forward sweep.

    The probe path only *wraps* the original steps for the structural
    fragment check — nothing is mutated, so sharing the step objects
    here is safe (unlike re-rooting them in a plan, which re-annotates).
    """
    if not steps:
        return True
    return core_xpath_violation(Path(absolute=True, steps=list(steps))) is None


# ----------------------------------------------------------------------
# DAG construction
# ----------------------------------------------------------------------


@dataclass
class PrefixNode:
    """One materialized step prefix: a compiled plan of its own, plus the
    residual link to its longest materialized proper prefix."""

    chain: tuple[str, ...]
    plan: LogicalPlan
    parent: tuple[str, ...] | None
    consumers: int
    #: The steps past ``parent`` (the prefix plan's *own* cloned steps,
    #: so applying them mutates nothing shared).
    residual_steps: list[Step] = field(default_factory=list)
    residual_core: bool = True


@dataclass
class BatchEntry:
    """One input plan's sharing decision."""

    plan: LogicalPlan
    chain: tuple[str, ...]
    #: The longest materialized prefix of ``chain`` (None → evaluated
    #: independently, exactly as without sharing).
    base: tuple[str, ...] | None = None
    residual_steps: list[Step] = field(default_factory=list)
    residual_core: bool = True

    @property
    def sharable(self) -> bool:
        return bool(self.chain)


def _longest_materialized(
    chain: tuple[str, ...], upto: int, materialized
) -> tuple[str, ...] | None:
    for length in range(upto, 0, -1):
        if chain[:length] in materialized:
            return chain[:length]
    return None


def _compile_prefix(chain: tuple[str, ...], source_steps: list[Step]) -> LogicalPlan:
    """Compile one materialized prefix into a standalone plan.

    The AST is *cloned* from a consumer plan's leading steps (already
    normalized/rewritten), never re-parsed from the canonical text — the
    text is only the plan's stable source/cache key, so prefix memo
    entries survive across batches and across syntactic variants that
    normalize to the same chain.
    """
    ast = Path(absolute=True, steps=[clone_step(s) for s in source_steps])
    ast.value_type = "nset"
    compute_relevance(ast)
    return LogicalPlan(
        source="/" + "/".join(chain),
        ast=ast,
        result_type="nset",
        core_violation=core_xpath_violation(ast),
        wadler_violation=wadler_violation(ast),
        bottomup_path_count=len(find_bottomup_paths(ast)),
        variables={},
        rewrite_stats=None,
        traits=compute_traits(ast),
        options=PlanOptions.make({}, False),
    )


def _residual_plan(
    plan: LogicalPlan, steps: list[Step], base_pres: list[int], document: Document
) -> LogicalPlan:
    """A per-(cell, document) residual plan: the already-materialized
    prefix result as a ``ConstantNodeSet`` primary, the remaining steps
    cloned on top. Only built for non-Core suffixes (Core ones resume
    the sorted-pre-array sweep directly); always evaluated with
    ``cached=False`` so its ad-hoc source never lands in any memo."""
    nodes = document.nodes
    primary = ConstantNodeSet(nodes[pre] for pre in base_pres)
    primary.value_type = "nset"
    ast = Path(primary=primary, steps=[clone_step(s) for s in steps])
    ast.value_type = "nset"
    compute_relevance(ast)
    return LogicalPlan(
        source=f"<residual of {plan.source!r}>",
        ast=ast,
        result_type="nset",
        core_violation=core_xpath_violation(ast),
        wadler_violation=wadler_violation(ast),
        bottomup_path_count=len(find_bottomup_paths(ast)),
        variables={},
        rewrite_stats=None,
        traits=compute_traits(ast),
        options=PlanOptions.make({}, False),
    )


class BatchPlan:
    """The shared-step DAG for one batch of logical plans.

    Build once per :meth:`~repro.service.QueryService.evaluate_many`
    call (per shard, so process workers stay self-contained), then call
    :meth:`evaluate_row` once per document. :attr:`stats` carries the
    exact :class:`~repro.stats.BatchPlanStats` for this batch.
    """

    def __init__(self, plans: list[LogicalPlan]):
        self.stats = BatchPlanStats()
        self.nodes: dict[tuple[str, ...], PrefixNode] = {}
        self.entries: list[BatchEntry] = []
        self._build(plans)

    # ------------------------------------------------------------------

    def _build(self, plans: list[LogicalPlan]) -> None:
        distinct: dict[tuple, LogicalPlan] = {}
        for plan in plans:
            distinct.setdefault(plan.cache_key, plan)
        counts: dict[tuple[str, ...], int] = {}
        representatives: dict[tuple[str, ...], tuple[LogicalPlan, int]] = {}
        for plan in distinct.values():
            chain = plan.traits.step_keys
            for length in range(1, len(chain) + 1):
                prefix = chain[:length]
                counts[prefix] = counts.get(prefix, 0) + 1
                representatives.setdefault(prefix, (plan, length))
        materialized = {prefix for prefix, n in counts.items() if n >= 2}
        for chain in sorted(materialized, key=lambda c: (len(c), c)):
            plan, length = representatives[chain]
            prefix_plan = _compile_prefix(chain, plan.ast.steps[:length])
            parent = _longest_materialized(chain, len(chain) - 1, materialized)
            residual = (
                prefix_plan.ast.steps[len(parent):] if parent is not None else []
            )
            self.nodes[chain] = PrefixNode(
                chain=chain,
                plan=prefix_plan,
                parent=parent,
                consumers=counts[chain],
                residual_steps=residual,
                residual_core=_steps_are_core(residual),
            )
        for plan in plans:
            chain = plan.traits.step_keys
            entry = BatchEntry(plan=plan, chain=chain)
            if chain and self.nodes:
                base = _longest_materialized(chain, len(chain), self.nodes)
                if base is not None:
                    suffix = plan.ast.steps[len(base):]
                    entry.base = base
                    entry.residual_steps = suffix
                    entry.residual_core = _steps_are_core(suffix)
            self.entries.append(entry)
        shared_keys = {
            entry.plan.cache_key for entry in self.entries if entry.base is not None
        }
        sharable_keys = {
            key for key, plan in distinct.items() if plan.traits.step_keys
        }
        self.stats.plan_counts(
            sharable=len(sharable_keys),
            shared=len(shared_keys),
            independent=len(distinct) - len(shared_keys),
            prefixes=len(self.nodes),
        )

    # ------------------------------------------------------------------

    @property
    def shared(self) -> bool:
        """Whether any prefix was materialized (no → evaluating through
        this plan degenerates to the independent per-cell loop)."""
        return bool(self.nodes)

    def evaluate_row(self, session) -> list[object]:
        """All of this batch's plans against one document's session, in
        input order — shared cells through the DAG, everything else
        exactly as independent evaluation would."""
        prefix_cache: dict[tuple[str, ...], list[int]] = {}
        row = []
        for entry in self.entries:
            if entry.base is None:
                row.append(session.evaluate(entry.plan, algorithm="auto"))
            else:
                self.stats.cell()
                row.append(self._cell_value(session, entry, prefix_cache))
        return row

    def _cell_value(self, session, entry: BatchEntry, prefix_cache) -> object:
        plan = entry.plan
        computed: list[bool] = []

        def compute():
            computed.append(True)
            try:
                base_pres = self._prefix_pres(session, entry.base, prefix_cache)
                value = self._apply_residual(
                    session,
                    plan,
                    entry.residual_steps,
                    entry.residual_core,
                    base_pres,
                    covered=len(entry.base),
                    total=len(entry.chain),
                )
            except ReproError:
                # Per-cell fallback: any sharing-path error (fragment
                # probe wrong, kernel refusal, ...) costs exactly one
                # independent evaluation — the paper's bounds per cell.
                self.stats.fallback()
                return session.evaluate(plan, algorithm="auto", cached=False)
            self.stats.shared_evaluation(
                total_steps=len(entry.chain),
                residual_steps=len(entry.residual_steps),
            )
            return value

        value = session.evaluate_computed(plan, "auto", compute)
        if not computed:
            self.stats.memo_hit()
        return value

    def _prefix_pres(self, session, chain, prefix_cache) -> list[int]:
        """The materialized prefix's sorted pre array for this document —
        row-cached, session-memoized, computed (at most once per
        document) as a residual of its parent prefix."""
        pres = prefix_cache.get(chain)
        if pres is not None:
            self.stats.prefix_memo_hit()
            return pres
        node = self.nodes[chain]
        computed: list[bool] = []

        def compute():
            computed.append(True)
            if node.parent is None:
                value = session.evaluate(node.plan, algorithm="auto", cached=False)
                self.stats.prefix_evaluation(len(chain))
                return value
            base_pres = self._prefix_pres(session, node.parent, prefix_cache)
            value = self._apply_residual(
                session,
                node.plan,
                node.residual_steps,
                node.residual_core,
                base_pres,
                covered=len(node.parent),
                total=len(chain),
            )
            self.stats.prefix_evaluation(len(chain) - len(node.parent))
            return value

        value = session.evaluate_computed(node.plan, "auto", compute)
        if not computed:
            self.stats.prefix_memo_hit()
        # Results come back in document order, so the pre projection is
        # already the sorted array the step kernels expect.
        pres = [n.pre for n in value]
        prefix_cache[chain] = pres
        return pres

    def _apply_residual(
        self,
        session,
        plan: LogicalPlan,
        steps: list[Step],
        core_ok: bool,
        base_pres: list[int],
        covered: int,
        total: int,
    ) -> list:
        document = session.document
        nodes = document.nodes
        if not steps:
            return [nodes[pre] for pre in base_pres]
        if core_ok:
            evaluator = session.evaluator("corexpath")
            return [
                nodes[pre]
                for pre in evaluator.forward_from_pres(steps, base_pres)
            ]
        residual = _residual_plan(plan, steps, base_pres, document)
        if session.specializer is not None:
            algorithm = session.specializer.specialize_residual(
                plan, session.profile, covered=covered, total=total
            ).algorithm
        else:
            algorithm = "optmincontext"
        return session.evaluate(residual, algorithm=algorithm, cached=False)

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """The DAG, human-readable (``repro-xpath plan --explain-batch``)."""
        lines = [
            "batch plan: "
            f"{len(self.entries)} plan(s), "
            f"{sum(1 for e in self.entries if e.sharable)} sharable, "
            f"{sum(1 for e in self.entries if e.base is not None)} shared, "
            f"{len(self.nodes)} materialized prefix(es)"
        ]
        order = sorted(self.nodes, key=lambda c: (len(c), c))
        index = {chain: i for i, chain in enumerate(order)}
        for chain in order:
            node = self.nodes[chain]
            parent = (
                f"prefix[{index[node.parent]}] + {len(node.residual_steps)} step(s)"
                if node.parent is not None
                else "root"
            )
            lines.append(
                f"  prefix[{index[chain]}]: {node.plan.source}"
                f"  <- {parent}  (consumers={node.consumers})"
            )
        for position, entry in enumerate(self.entries):
            if entry.base is not None:
                suffix = "empty" if not entry.residual_steps else (
                    f"{len(entry.residual_steps)} step(s)"
                    + ("" if entry.residual_core else ", full-XPath predicates")
                )
                detail = f"base=prefix[{index[entry.base]}], residual={suffix}"
            elif entry.sharable:
                detail = "independent (no prefix shared by another plan)"
            else:
                detail = "independent (not a sharable absolute location path)"
            lines.append(f"  plan {position}: {entry.plan.source!r}  {detail}")
        return "\n".join(lines)


def build_batch_plan(plans: list[LogicalPlan]) -> BatchPlan | None:
    """The shared-step DAG for a batch, or ``None`` for an empty batch."""
    if not plans:
        return None
    return BatchPlan(list(plans))
