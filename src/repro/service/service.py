"""The query service: compile once, specialize per document, evaluate many.

:class:`QueryService` is the production-facing entry point this
reproduction grows toward (see ROADMAP.md): a long-lived object that

* compiles each distinct ``(query, options)`` pair exactly once into a
  stage-1 :class:`~repro.service.plan.LogicalPlan`, held in an LRU
  :class:`~repro.service.cache.PlanCache`;
* specializes ``auto`` evaluations per document through a shared
  :class:`~repro.service.specialize.PlanSpecializer` (stage 2: logical
  plan × :class:`~repro.service.specialize.DocumentProfile` → the
  cost-model-chosen evaluator, refined online by observed timings) —
  construct with ``specialize=False`` for the document-blind static
  fragment dispatch;
* keeps one :class:`DocumentSession` per served document, which reuses
  stateless evaluator instances and memoizes ``(plan, context)`` results
  — evaluation is pure, so repeated identical requests are dictionary
  lookups;
* exposes :meth:`QueryService.evaluate_many`, the batch API: all queries
  × all documents in one call, sharing the plan cache across documents
  and each document's session caches across queries; sharded batches
  feed their observed per-shard wall times into a persistent
  :class:`~repro.service.shard.ShardTimingHistory` that reweights the
  LPT partitioning of repeat batches.

The per-call frontend cost (parse → normalize → rewrite → relevance →
fragment classification) is exactly the overhead the paper's algorithms
do *not* bound — Theorems 7/10/13 speak about evaluation. The service
layer amortizes it away, which is what turns the worst-case-optimal
algorithms into a fast system.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.context import Context
from repro.errors import ReproError
from repro.service.cache import PlanCache
from repro.service.plan import CompiledPlan, PlanOptions, plan_key
from repro.service.planner import (
    QueryPlanner,
    REUSABLE_ALGORITHMS,
    make_evaluator,
    resolve_algorithm,
)
from repro.service.shard import ShardTimingHistory
from repro.service.specialize import PlanSpecializer, document_profile
from repro.stats import CacheStats
from repro.xml.document import Document, Node


def _copy_result(value):
    """Node-set results are lists; hand out a fresh list per call so
    callers can mutate their copy without corrupting the memo."""
    if isinstance(value, list):
        return list(value)
    return value


class DocumentSession:
    """Per-document evaluation state shared across queries.

    Holds reusable evaluator instances for the stateless algorithms and a
    ``(plan, algorithm, context) → result`` memo. Both caches are sound
    because documents are finalized (immutable) and plans are never
    mutated after compilation.

    Thread safety: memo lookups (with their hit/miss accounting) and
    inserts run under one lock, while the evaluation itself runs outside
    it — so concurrent drivers of one session never lose a counter or
    corrupt the memo, but also never serialize the expensive work. Two
    threads that miss the same key both evaluate (pure, so both compute
    the same value) and the second insert is a harmless overwrite.
    """

    #: Default bound on the per-session result memo; when full the memo
    #: is flushed wholesale (results are recomputable, so a flush only
    #: costs time, and wholesale beats per-entry LRU bookkeeping on the
    #: hot path).
    DEFAULT_RESULT_CAPACITY = 1024

    def __init__(
        self,
        document: Document,
        result_capacity: int | None = None,
        specializer: PlanSpecializer | None = None,
    ):
        if not document.is_finalized:
            raise ReproError("document must be finalized before building a session")
        self.document = document
        self.result_capacity = (
            self.DEFAULT_RESULT_CAPACITY if result_capacity is None else result_capacity
        )
        if self.result_capacity < 1:
            raise ValueError(
                f"result capacity must be >= 1, got {self.result_capacity}"
            )
        #: Stage-2 selector (shared service-wide); ``None`` keeps the
        #: static document-blind fragment dispatch.
        self.specializer = specializer
        self._profile = None
        self._evaluators: dict[str, object] = {}
        self._results: dict[tuple, object] = {}
        self._lock = threading.RLock()
        self.result_stats = CacheStats(name="result_cache", capacity=self.result_capacity)

    # ------------------------------------------------------------------

    @property
    def profile(self):
        """This document's :class:`~repro.service.specialize.DocumentProfile`
        (computed lazily, cached process-wide by the specialize module)."""
        if self._profile is None:
            self._profile = document_profile(self.document)
        return self._profile

    def resolve(self, plan: CompiledPlan, algorithm: str = "auto") -> str:
        """Stage-2 resolution: specialize ``auto`` per this document's
        profile when a specializer is attached; static fragment dispatch
        otherwise (and for forced names, which need no profile)."""
        if algorithm == "auto" and self.specializer is not None:
            return self.specializer.specialize(plan, self.profile).algorithm
        return resolve_algorithm(plan, algorithm)

    def evaluator(self, algorithm: str):
        """An evaluator for a resolved algorithm; instances of stateless
        algorithms are reused, table-based ones are built fresh."""
        if algorithm in REUSABLE_ALGORITHMS:
            with self._lock:
                instance = self._evaluators.get(algorithm)
                if instance is None:
                    instance = make_evaluator(self.document, algorithm)
                    self._evaluators[algorithm] = instance
                return instance
        return make_evaluator(self.document, algorithm)

    def evaluate(
        self,
        plan: CompiledPlan,
        algorithm: str = "auto",
        context_node: Node | None = None,
        context_position: int = 1,
        context_size: int = 1,
        cached: bool = True,
    ):
        """Evaluate a compiled plan against this session's document.

        ``algorithm='auto'`` goes through :meth:`resolve` — per-document
        specialization when the session carries a specializer, static
        dispatch otherwise. ``cached=False`` bypasses the result memo
        (used by benchmarks to time real evaluation work).
        """
        node = context_node if context_node is not None else self.document.root
        if not cached:
            context = Context(node, context_position, context_size)
            return self._evaluate_timed(plan, self.resolve(plan, algorithm), context)

        def compute():
            context = Context(node, context_position, context_size)
            return self._evaluate_timed(plan, self.resolve(plan, algorithm), context)

        return self.evaluate_computed(
            plan, algorithm, compute, node, context_position, context_size
        )

    def evaluate_computed(
        self,
        plan: CompiledPlan,
        algorithm: str,
        compute,
        context_node: Node | None = None,
        context_position: int = 1,
        context_size: int = 1,
    ):
        """The memo protocol with a caller-supplied miss computation.

        Identical lookup/accounting/insert behavior to :meth:`evaluate`
        — same key, same hit/miss/eviction counting, ``compute()`` runs
        outside the lock exactly where the resolved evaluator would.
        This is the batch planner's hook
        (:mod:`repro.service.batchplan`): a shared-prefix residual
        evaluation is memoized under the *original* plan's key, so
        shared and independent runs (and repeat batches) populate and
        hit the same entries.
        """
        node = context_node if context_node is not None else self.document.root
        # Keyed by the plan's *stable* cache key, not the AST's identity:
        # a plan evicted from the LRU and recompiled gets a fresh AST (and
        # uid), but it is the same plan — its memo entries must stay
        # reachable, not leak until the wholesale flush. Each entry also
        # stores the plan itself: the key's variables signature identifies
        # node-set/object bindings by id(), which is only sound while the
        # bound objects are alive, so the entry pins them (via the plan's
        # variables dict) for exactly as long as the key can match.
        # Keyed by the *requested* algorithm, with resolution deferred to
        # the miss path: hits stay session-local dict lookups (no
        # specializer lock on the hot path), and an ``auto`` entry stays
        # reachable even if a later re-selection — after a specializer
        # memo flush with refined timing rates — would choose a different
        # evaluator (evaluation is pure, so the value is the same).
        key = (plan.cache_key, algorithm, node, context_position, context_size)
        with self._lock:
            entry = self._results.get(key)
            if entry is not None:
                self.result_stats.hit()
                return _copy_result(entry[1])
            self.result_stats.miss()
        value = compute()
        with self._lock:
            if len(self._results) >= self.result_capacity:
                self._results.clear()
                self.result_stats.eviction(self.result_capacity)
            self._results[key] = (plan, value)
        return _copy_result(value)

    def _evaluate_timed(self, plan: CompiledPlan, resolved: str, context: Context):
        """Run one real evaluation, feeding its wall time back into the
        specializer's online cost refinement (when one is attached)."""
        if self.specializer is None:
            return self.evaluator(resolved).evaluate(plan.ast, context)
        started = time.perf_counter()
        value = self.evaluator(resolved).evaluate(plan.ast, context)
        self.specializer.observe(
            plan, self.profile, resolved, time.perf_counter() - started
        )
        return value

    def clear(self) -> None:
        with self._lock:
            self._evaluators.clear()
            self._results.clear()


def _stats_delta(before: dict, after: dict) -> dict:
    """Per-batch cache statistics: the difference of two cumulative
    snapshots, with the hit rate recomputed over the delta."""
    delta = dict(after)
    for key in ("hits", "misses", "evictions"):
        delta[key] = after[key] - before[key]
    lookups = delta["hits"] + delta["misses"]
    delta["hit_rate"] = delta["hits"] / lookups if lookups else 0.0
    return delta


@dataclass
class BatchResult:
    """The outcome of one :meth:`QueryService.evaluate_many` call.

    ``values[d][q]`` is the result of ``queries[q]`` on document ``d``;
    ``algorithms[q]`` is the *statically* resolved algorithm per query
    (the document-independent fragment dispatch — under specialization
    the evaluator actually run may differ per document, with identical
    values). ``plan_stats``/``result_stats`` cover *this batch only*
    (deltas, not service-lifetime totals — those live on
    :meth:`QueryService.cache_stats`).

    Sharded runs (``workers > 1``) additionally report ``workers`` (the
    number of shards actually used) and ``shards`` (per-shard document
    indices, weights, wall times, and unmerged stats snapshots); the
    top-level stats are then the exact sums of the per-shard counters.

    ``batch_plan`` is the batch-shared step DAG's exact counter snapshot
    (:class:`~repro.stats.BatchPlanStats`) when multi-query sharing ran
    — ``share=True`` (the default) with ``algorithm='auto'`` — and an
    empty dict otherwise, notably for every ``share=False`` call (which
    reproduces independent evaluation byte-identically, stats included).
    Sharded runs sum the per-shard snapshots.
    """

    queries: list[str]
    document_count: int
    values: list[list[object]]
    algorithms: list[str]
    plan_stats: dict = field(default_factory=dict)
    result_stats: dict = field(default_factory=dict)
    workers: int = 1
    shards: list = field(default_factory=list)
    batch_plan: dict = field(default_factory=dict)

    def value(self, document_index: int, query_index: int):
        return self.values[document_index][query_index]


class QueryService:
    """Compile-once, evaluate-many XPath service over the paper's algorithms.

    One instance is safe to share across threads (and across the async
    front end's offload threads): the plan cache, the session map, and
    every :class:`~repro.stats.CacheStats` counter are lock-protected, so
    concurrent drivers observe exact hit/miss/eviction totals and never
    lose an eviction. Evaluation itself runs outside the locks —
    documents and plans are immutable, so it needs no synchronization.

    One accounting caveat: the *per-batch* stats an unsharded
    :meth:`evaluate_many` reports are deltas of the service-lifetime
    counters, so two unsharded batches running concurrently on one
    shared service attribute each other's interleaved lookups (values
    are still correct, and the lifetime totals in :meth:`cache_stats`
    stay exact). Sharded and streamed batches are immune — each shard
    runs a fresh service and the merged stats are per-shard sums.
    """

    def __init__(
        self,
        plan_capacity: int = 256,
        session_capacity: int = 64,
        result_capacity: int | None = None,
        optimize: bool = False,
        variables: dict[str, object] | None = None,
        specialize: bool = True,
    ):
        self.planner = QueryPlanner()
        self.plans = PlanCache(plan_capacity)
        self.optimize = optimize
        self.variables = dict(variables or {})
        self.result_capacity = result_capacity
        self.specialize = bool(specialize)
        #: One specializer for the whole service: the memo is keyed by
        #: (plan, profile), so identically-shaped documents share
        #: specializations, and the timing model sees every evaluation.
        self.specializer = PlanSpecializer() if self.specialize else None
        #: Observed per-document evaluation times from sharded batches,
        #: fed back into LPT shard planning on repeat batches.
        self.shard_history = ShardTimingHistory()
        # Sessions are LRU-bounded too: a long-lived service must not
        # retain every document tree it has ever served. Evicting a
        # session drops its document reference and result memo; its
        # hit/miss counts are folded into _retired_result_stats so
        # aggregate statistics stay exact.
        self._sessions = PlanCache(session_capacity, name="session_cache")
        self._retired_result_stats = CacheStats(name="result_cache")
        # Guards the compound session-map operations (lookup + create +
        # evict must be atomic, or racing threads leak sessions and lose
        # retired counters). Re-entrant: clear() absorbs stats while held.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------

    def plan(
        self,
        query: str,
        variables: dict[str, object] | None = None,
        optimize: bool | None = None,
    ) -> CompiledPlan:
        """The compiled plan for a query, through the LRU cache."""
        bindings = self.variables if variables is None else variables
        wants_rewrite = self.optimize if optimize is None else optimize
        key = plan_key(query, PlanOptions.make(bindings, wants_rewrite))
        return self.plans.get_or_create(
            key, lambda: self.planner.compile(query, bindings, wants_rewrite)
        )

    def session(self, document: Document) -> DocumentSession:
        """The (lazily created, LRU-bounded) per-document session."""
        with self._lock:
            session = self._sessions.get(document)
            if session is None:
                session = DocumentSession(
                    document,
                    result_capacity=self.result_capacity,
                    specializer=self.specializer,
                )
                while len(self._sessions) >= self._sessions.capacity:
                    _, evicted = self._sessions.pop_lru()
                    self._retired_result_stats.absorb(evicted.result_stats)
                self._sessions.put(document, session)
            return session

    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: str | CompiledPlan,
        document: Document,
        context_node: Node | None = None,
        context_position: int = 1,
        context_size: int = 1,
        algorithm: str = "auto",
        cached: bool = True,
    ):
        """Evaluate one query against one document through both caches."""
        plan = self.plan(query) if isinstance(query, str) else query
        return self.session(document).evaluate(
            plan,
            algorithm=algorithm,
            context_node=context_node,
            context_position=context_position,
            context_size=context_size,
            cached=cached,
        )

    def evaluate_many(
        self,
        queries,
        documents,
        algorithm: str = "auto",
        workers: int = 1,
        shard_by: str = "round-robin",
        backend: str = "thread",
        share: bool = True,
    ) -> BatchResult:
        """Evaluate every query against every document.

        Plans are compiled (at most) once per distinct query; each
        document's session caches are shared across the whole batch, so
        duplicate queries cost one evaluation per document.

        With ``share=True`` (the default) and ``algorithm='auto'``, a
        batch-planning phase runs between compilation and evaluation: a
        shared-step DAG (:mod:`repro.service.batchplan`) unifies the
        batch's common absolute-path prefixes and evaluates each
        distinct (prefix, document) node-set at most once, feeding the
        shared results through the session memos. Values are identical
        either way; ``share=False`` takes exactly the independent
        per-cell path (byte-identical results *and* stats, with
        ``batch_plan`` empty). Forced algorithms never share — the
        requested evaluator must run as asked.

        With ``workers > 1`` the batch is sharded by document and
        delegated to a :class:`~repro.service.executor.ShardedExecutor`
        (``shard_by`` picks the partitioning strategy, ``backend`` picks
        the scheduler: ``serial``, ``thread``, ``process``, or ``async``
        — see :mod:`repro.service.scheduler`). Each worker runs a fresh
        service built from this service's configuration, so this
        service's own caches
        are neither consulted nor populated; the returned batch stats are
        the exact sums of the per-shard counters (see ``BatchResult``) —
        each shard builds its own DAG, so process workers stay
        self-contained.
        """
        if workers > 1:
            from repro.service.executor import ShardedExecutor

            executor = ShardedExecutor(
                workers=workers,
                backend=backend,
                shard_by=shard_by,
                history=self.shard_history,
                **self.config(),
            )
            return executor.execute(
                queries, documents, algorithm=algorithm, share=share
            )
        query_list = list(queries)
        document_list = list(documents)
        plan_stats_before = self.plans.stats.snapshot()
        result_stats_before = self.result_cache_stats()
        plans = [self.plan(query) for query in query_list]
        # Reported per-query algorithms are the static fragment dispatch
        # (document-independent by definition); the sessions re-resolve
        # ``auto`` per document below, so the evaluator actually run may
        # differ per (query, document) — values are identical either way.
        algorithms = [resolve_algorithm(plan, algorithm) for plan in plans]
        batch_plan = None
        if share and algorithm == "auto":
            from repro.service.batchplan import build_batch_plan

            batch_plan = build_batch_plan(plans)
        values: list[list[object]] = []
        for document in document_list:
            session = self.session(document)
            if batch_plan is not None and batch_plan.shared:
                values.append(batch_plan.evaluate_row(session))
            else:
                values.append(
                    [session.evaluate(plan, algorithm=algorithm) for plan in plans]
                )
        return BatchResult(
            queries=query_list,
            document_count=len(document_list),
            values=values,
            algorithms=algorithms,
            plan_stats=_stats_delta(plan_stats_before, self.plans.stats.snapshot()),
            result_stats=_stats_delta(result_stats_before, self.result_cache_stats()),
            batch_plan=batch_plan.stats.snapshot() if batch_plan is not None else {},
        )

    # ------------------------------------------------------------------

    def config(self) -> dict:
        """The constructor arguments that reproduce this service's
        configuration — used to build per-worker services for sharded
        execution (and handy for spawning read-replicas in general)."""
        return {
            "plan_capacity": self.plans.capacity,
            "session_capacity": self._sessions.capacity,
            "result_capacity": self.result_capacity,
            "optimize": self.optimize,
            "variables": dict(self.variables),
            "specialize": self.specialize,
        }

    def result_cache_stats(self) -> dict:
        """Aggregated result-memo statistics across all sessions, live and
        evicted."""
        merged = CacheStats(name="result_cache")
        with self._lock:
            merged.absorb(self._retired_result_stats)
            for session in self._sessions.values():
                merged.absorb(session.result_stats)
        return merged.snapshot()

    def cache_stats(self) -> dict:
        """One dict with every cache layer, for CLI/monitoring output.
        ``specialize_cache`` (the stage-2 memo) and ``timings`` (the
        online per-algorithm rates) appear only when specialization is
        enabled."""
        merged = {
            "plan_cache": self.plans.stats.snapshot(),
            "result_cache": self.result_cache_stats(),
            "sessions": len(self._sessions),
        }
        if self.specializer is not None:
            merged["specialize_cache"] = self.specializer.stats.snapshot()
            merged["timings"] = self.specializer.timings.snapshot()
        return merged

    def clear(self) -> None:
        """Drop all cached plans, sessions, and specializations
        (statistics are retained)."""
        self.plans.clear()
        if self.specializer is not None:
            self.specializer.clear()
        with self._lock:
            for session in self._sessions.values():
                self._retired_result_stats.absorb(session.result_stats)
                session.clear()
            self._sessions.clear()
