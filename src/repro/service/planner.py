"""The query planner: stage 1 of the two-stage compilation pipeline.

This module owns the *document-independent* half of compilation:

* :func:`compile_plan` — parse → normalize (variables substituted,
  conversions explicit) → relevance analysis → optional rewrite →
  fragment classification → trait extraction, producing a
  :class:`~repro.service.plan.LogicalPlan`;
* :func:`resolve_algorithm` — validate an algorithm name, apply the
  *static* ``auto`` fragment dispatch (Core XPath → Theorem 13's
  linear-time evaluator, everything else → OPTMINCONTEXT), and enforce
  fragment membership for forced choices;
* :func:`make_evaluator` — instantiate the chosen evaluator for a
  document.

Stage 2 — turning a logical plan into a per-document *physical* plan via
the cost-driven algorithm selector — lives in
:mod:`repro.service.specialize`; :func:`resolve_algorithm` is its
document-blind fallback (and the exact behavior of ``--no-specialize``).
:class:`XPathEngine <repro.engine.XPathEngine>` and
:class:`QueryService <repro.service.service.QueryService>` are both thin
clients of these functions.
"""

from __future__ import annotations

from repro import stats
from repro.core.bottomup import BottomUpEvaluator
from repro.core.corexpath import CoreXPathEvaluator
from repro.core.mincontext import MinContextEvaluator
from repro.core.naive import NaiveEvaluator
from repro.core.optmincontext import OptMinContextEvaluator
from repro.core.topdown import TopDownEvaluator
from repro.errors import FragmentViolationError, UnknownAlgorithmError
from repro.service.plan import CompiledPlan, LogicalPlan, PlanOptions, compute_traits
from repro.xml.document import Document
from repro.xpath.fragments import (
    core_xpath_violation,
    find_bottomup_paths,
    wadler_violation,
)
from repro.xpath.normalize import normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.relevance import compute_relevance
from repro.xpath.rewrite import RewriteStats, rewrite

#: The selectable evaluation algorithms.
ALGORITHMS = (
    "auto",
    "naive",
    "bottomup",
    "topdown",
    "mincontext",
    "optmincontext",
    "corexpath",
)

_EVALUATOR_CLASSES = {
    "naive": NaiveEvaluator,
    "bottomup": BottomUpEvaluator,
    "topdown": TopDownEvaluator,
    "mincontext": MinContextEvaluator,
    "optmincontext": OptMinContextEvaluator,
    "corexpath": CoreXPathEvaluator,
}

#: Evaluators that keep no per-evaluation state: one instance per
#: document can serve any number of plans and contexts. The table-based
#: evaluators (bottomup, mincontext, optmincontext) are single-use per
#: evaluation, as their docstrings require.
REUSABLE_ALGORITHMS = frozenset({"naive", "topdown", "corexpath"})


def compile_plan(
    query: str,
    variables: dict[str, object] | None = None,
    optimize: bool = False,
) -> LogicalPlan:
    """Run the full stage-1 frontend pipeline on one query string."""
    stats.count("plans_compiled")
    bindings = dict(variables or {})
    ast = normalize(parse_xpath(query), bindings)
    compute_relevance(ast)
    rewrite_stats = None
    if optimize:
        rewrite_stats = RewriteStats()
        ast = rewrite(ast, rewrite_stats)
        compute_relevance(ast)
    return LogicalPlan(
        source=query,
        ast=ast,
        result_type=ast.value_type or "nset",
        core_violation=core_xpath_violation(ast),
        wadler_violation=wadler_violation(ast),
        bottomup_path_count=len(find_bottomup_paths(ast)),
        variables=bindings,
        rewrite_stats=rewrite_stats,
        traits=compute_traits(ast),
        options=PlanOptions.make(bindings, optimize),
    )


class QueryPlanner:
    """Stateless compiler facade (kept as a class so services can swap in
    instrumented or restricted planners later)."""

    def compile(
        self,
        query: str,
        variables: dict[str, object] | None = None,
        optimize: bool = False,
    ) -> LogicalPlan:
        return compile_plan(query, variables, optimize)


def resolve_algorithm(plan: LogicalPlan, algorithm: str = "auto") -> str:
    """Validate and *statically* resolve an algorithm name for a plan
    (document-blind fragment dispatch — the stage-2 specializer refines
    ``auto`` per document profile when one is attached).

    Raises :class:`repro.errors.UnknownAlgorithmError` for names outside
    :data:`ALGORITHMS` and :class:`repro.errors.FragmentViolationError`
    when ``corexpath`` is forced onto a query outside Core XPath.
    """
    if algorithm not in ALGORITHMS:
        raise UnknownAlgorithmError(algorithm, ALGORITHMS)
    if algorithm == "auto":
        algorithm = plan.best_algorithm()
    if algorithm == "corexpath" and not plan.is_core_xpath:
        raise FragmentViolationError(
            f"query is not in Core XPath: {plan.core_violation}"
        )
    return algorithm


def make_evaluator(document: Document, algorithm: str):
    """Instantiate the evaluator for a resolved (non-``auto``) algorithm."""
    try:
        evaluator_class = _EVALUATOR_CLASSES[algorithm]
    except KeyError:
        raise UnknownAlgorithmError(algorithm, ALGORITHMS) from None
    return evaluator_class(document)
