"""Compiled query plans and their cache keys.

A :class:`CompiledPlan` is everything the frontend pipeline produces for
one query string: the normalized (and optionally rewritten) AST with
``value_type``/``Relev`` annotations, the fragment classification
(Definitions 12 and Section 4 of the paper), the bottom-up path count,
and the algorithm ``auto`` dispatch selects. Building one costs a full
parse → normalize → relevance → rewrite → classify pass; evaluating one
is pure — the plan never changes and may be shared freely across
documents, contexts, and threads of evaluation. That asymmetry is the
whole point of the service layer: compile once, evaluate many times
(Theorems 7/10/13 bound the *evaluation* cost; the frontend cost is
amortized away by :class:`repro.service.cache.PlanCache`).

:class:`PlanOptions` captures the compile-time knobs that change the
produced AST — the rewrite flag and the variable bindings — so the cache
key ``(query, options)`` never conflates distinct plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xpath.ast import Expr
from repro.xpath.rewrite import RewriteStats


def freeze_variables(variables: dict[str, object] | None) -> tuple:
    """A hashable signature of a variable binding for plan-cache keys.

    Scalars key by value; node-set bindings key by member identity (two
    bindings to the same nodes are the same plan; the plan itself retains
    the real dict, so the signature only ever has to separate plans).
    """
    if not variables:
        return ()
    items = []
    for name in sorted(variables):
        value = variables[name]
        if isinstance(value, (str, float, int, bool)) or value is None:
            # type name included: True == 1 in Python, but string($v)
            # is 'true' vs '1' — they must be distinct plans.
            items.append((name, type(value).__name__, value))
        elif isinstance(value, (list, tuple, set, frozenset)):
            items.append((name, "nset", tuple(sorted(id(member) for member in value))))
        else:
            items.append((name, "object", id(value)))
    return tuple(items)


@dataclass(frozen=True)
class PlanOptions:
    """Compile-time options that select *which* plan a query maps to."""

    optimize: bool = False
    variables_signature: tuple = ()

    @classmethod
    def make(
        cls, variables: dict[str, object] | None = None, optimize: bool = False
    ) -> "PlanOptions":
        return cls(optimize=bool(optimize), variables_signature=freeze_variables(variables))


def plan_key(query: str, options: PlanOptions) -> tuple:
    """The plan-cache key: the exact query text plus its compile options."""
    return (query, options)


@dataclass
class CompiledPlan:
    """A parsed, normalized, analyzed query, reusable across evaluations.

    Attributes:
        source: the original query string.
        ast: normalized AST with ``value_type`` and ``relev`` annotations.
        result_type: static type of the whole query.
        core_violation: why the query is outside Core XPath (None if in).
        wadler_violation: why it is outside the Extended Wadler Fragment.
        bottomup_path_count: number of subexpressions OPTMINCONTEXT will
            evaluate bottom-up.
        options: the compile-time options this plan was built under.
    """

    source: str
    ast: Expr
    result_type: str
    core_violation: str | None
    wadler_violation: str | None
    bottomup_path_count: int
    variables: dict[str, object] = field(default_factory=dict, repr=False)
    #: What the optimizer pass did (None when compiled with optimize=False).
    rewrite_stats: RewriteStats | None = None
    options: PlanOptions = field(default_factory=PlanOptions)

    @property
    def is_core_xpath(self) -> bool:
        return self.core_violation is None

    @property
    def is_extended_wadler(self) -> bool:
        return self.wadler_violation is None

    def best_algorithm(self) -> str:
        """The algorithm ``auto`` dispatches to."""
        if self.is_core_xpath:
            return "corexpath"
        return "optmincontext"

    @property
    def algorithm(self) -> str:
        """Alias for :meth:`best_algorithm` — derived, never stored, so it
        cannot drift from the fragment classification."""
        return self.best_algorithm()

    @property
    def cache_key(self) -> tuple:
        return plan_key(self.source, self.options)


#: Backward-compatible alias — the engine facade predates the service
#: layer and exported this name.
CompiledQuery = CompiledPlan
