"""Logical query plans — stage 1 of the two-stage compilation pipeline.

A :class:`LogicalPlan` is everything the *document-independent* frontend
pipeline produces for one query string: the normalized (and optionally
rewritten) AST with ``value_type``/``Relev`` annotations, the fragment
classification (Definition 12 and Section 4 of the paper), the bottom-up
path count, and the :class:`PlanTraits` the cost model reads (AST size,
position dependence, sibling-positional steps, string-function count).
Building one costs a full parse → normalize → relevance → rewrite →
classify pass; evaluating one is pure — the plan never changes and may
be shared freely across documents, contexts, and threads of evaluation.
That asymmetry is the whole point of the service layer: compile once,
evaluate many times (Theorems 7/10/13 bound the *evaluation* cost; the
frontend cost is amortized away by
:class:`repro.service.cache.PlanCache`).

What a logical plan deliberately does *not* contain is an evaluator
choice: stage 2 (:mod:`repro.service.specialize`) turns a logical plan
plus a per-document :class:`~repro.service.specialize.DocumentProfile`
into a :class:`~repro.service.specialize.PhysicalPlan` naming the chosen
algorithm. :meth:`LogicalPlan.best_algorithm` remains the
document-independent *static* fragment dispatch (Core XPath →
``corexpath``, else ``optmincontext``) — the stage-2 fallback and the
``--no-specialize`` behavior.

:class:`PlanOptions` captures the compile-time knobs that change the
produced AST — the rewrite flag and the variable bindings — so the cache
key ``(query, options)`` never conflates distinct plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.axes.axes import INTERVAL_AXES
from repro.xpath.ast import AstNode, ConstantNodeSet, Expr, FunctionCall, Path, Step
from repro.xpath.rewrite import RewriteStats
from repro.xpath.unparse import step_to_string


def freeze_variables(variables: dict[str, object] | None) -> tuple:
    """A hashable signature of a variable binding for plan-cache keys.

    Scalars key by value; node-set bindings key by member identity (two
    bindings to the same nodes are the same plan; the plan itself retains
    the real dict, so the signature only ever has to separate plans).
    """
    if not variables:
        return ()
    items = []
    for name in sorted(variables):
        value = variables[name]
        if isinstance(value, (str, float, int, bool)) or value is None:
            # type name included: True == 1 in Python, but string($v)
            # is 'true' vs '1' — they must be distinct plans.
            items.append((name, type(value).__name__, value))
        elif isinstance(value, (list, tuple, set, frozenset)):
            items.append((name, "nset", tuple(sorted(id(member) for member in value))))
        else:
            items.append((name, "object", id(value)))
    return tuple(items)


@dataclass(frozen=True)
class PlanOptions:
    """Compile-time options that select *which* plan a query maps to."""

    optimize: bool = False
    variables_signature: tuple = ()

    @classmethod
    def make(
        cls, variables: dict[str, object] | None = None, optimize: bool = False
    ) -> "PlanOptions":
        return cls(optimize=bool(optimize), variables_signature=freeze_variables(variables))


def plan_key(query: str, options: PlanOptions) -> tuple:
    """The plan-cache key: the exact query text plus its compile options."""
    return (query, options)


#: The context components whose relevance marks position dependence.
_CPCS = frozenset({"cp", "cs"})

#: Sibling axes whose positional predicates loop over sibling runs —
#: the shape feature that makes OPTMINCONTEXT's bottom-up precomputation
#: pay off on high-fanout documents (see the cost model).
_SIBLING_AXES = frozenset({"following-sibling", "preceding-sibling"})

#: String-library functions whose cost scales with text volume.
_STRING_FUNCTIONS = frozenset(
    {
        "string",
        "concat",
        "contains",
        "starts-with",
        "substring",
        "substring-before",
        "substring-after",
        "string-length",
        "normalize-space",
        "translate",
    }
)


@dataclass(frozen=True)
class PlanTraits:
    """Document-independent cost features of one normalized AST.

    Computed once at compile time (one AST walk) and read by the stage-2
    cost model together with a :class:`DocumentProfile`:

    * ``ast_size`` — total AST node count, the ``|Q|`` of the paper's
      bounds;
    * ``uses_position`` — some subexpression's ``Relev`` touches
      ``cp``/``cs``, so evaluation runs (cp, cs) loops somewhere;
    * ``positional_sibling`` — a sibling-axis step carries a
      position-dependent predicate: the loop width then scales with the
      document's fanout (sibling-run length), not just ``|D|``;
    * ``string_op_count`` — string-library calls, whose cost scales with
      the document's text volume;
    * ``indexed_axis_steps`` — steps on the interval axes
      (descendant/descendant-or-self/following/preceding), the ones the
      fused NodeIndex kernels turn into partition range queries;
    * ``name_test_tags`` — the element tags those steps name-test (the
      *name-test selectivity hook*: combined with a profile's per-tag
      counts, stage 2 can predict how small the fused kernels' outputs
      are — see :func:`repro.service.specialize.name_test_selectivity`);
    * ``step_keys`` — the canonical per-step keys of the query's main
      path, when the query *is* a plain absolute location path: one
      :func:`repro.xpath.unparse.step_to_string` rendering per
      normalized step. Two plans whose chains share a prefix denote the
      same intermediate node-sets (``//a`` and
      ``/descendant-or-self::node()/child::a`` unify here because
      normalization expands abbreviations before unparsing), which is
      what the batch-shared step DAG (:mod:`repro.service.batchplan`)
      keys on. Empty for any other query shape — and deliberately empty
      when the AST embeds a :class:`~repro.xpath.ast.ConstantNodeSet`
      (bound node-set variables), whose unparse renders only its *size*:
      two different bindings would collide on the same key, so such
      plans are never shared.
    """

    ast_size: int = 1
    uses_position: bool = False
    positional_sibling: bool = False
    string_op_count: int = 0
    indexed_axis_steps: int = 0
    name_test_tags: tuple = ()
    step_keys: tuple = ()


def compute_traits(ast: Expr) -> PlanTraits:
    """One-pass trait extraction over a relevance-annotated AST."""
    size = 0
    uses_position = False
    positional_sibling = False
    string_ops = 0
    indexed_axis_steps = 0
    name_test_tags: list[str] = []
    constant_node_set = False
    stack: list[AstNode] = [ast]
    while stack:
        node = stack.pop()
        size += 1
        if isinstance(node, ConstantNodeSet):
            constant_node_set = True
        relev = getattr(node, "relev", None)
        if relev and (relev & _CPCS):
            uses_position = True
        if isinstance(node, FunctionCall) and node.name in _STRING_FUNCTIONS:
            string_ops += 1
        if isinstance(node, Step):
            if node.axis in _SIBLING_AXES:
                for predicate in node.predicates:
                    predicate_relev = getattr(predicate, "relev", None)
                    if predicate_relev and (predicate_relev & _CPCS):
                        positional_sibling = True
            if node.axis in INTERVAL_AXES:
                indexed_axis_steps += 1
                if node.node_test.kind == "name":
                    name_test_tags.append(node.node_test.name)
        stack.extend(node.children())
    step_keys: tuple = ()
    if (
        isinstance(ast, Path)
        and ast.absolute
        and ast.primary is None
        and ast.steps
        and not constant_node_set
    ):
        step_keys = tuple(step_to_string(step) for step in ast.steps)
    return PlanTraits(
        ast_size=size,
        uses_position=uses_position,
        positional_sibling=positional_sibling,
        string_op_count=string_ops,
        indexed_axis_steps=indexed_axis_steps,
        name_test_tags=tuple(sorted(name_test_tags)),
        step_keys=step_keys,
    )


@dataclass
class LogicalPlan:
    """A parsed, normalized, analyzed query, reusable across evaluations.

    Attributes:
        source: the original query string.
        ast: normalized AST with ``value_type`` and ``relev`` annotations.
        result_type: static type of the whole query.
        core_violation: why the query is outside Core XPath (None if in).
        wadler_violation: why it is outside the Extended Wadler Fragment.
        bottomup_path_count: number of subexpressions OPTMINCONTEXT will
            evaluate bottom-up.
        traits: the document-independent cost features the stage-2
            specializer reads (see :class:`PlanTraits`).
        options: the compile-time options this plan was built under.
    """

    source: str
    ast: Expr
    result_type: str
    core_violation: str | None
    wadler_violation: str | None
    bottomup_path_count: int
    variables: dict[str, object] = field(default_factory=dict, repr=False)
    #: What the optimizer pass did (None when compiled with optimize=False).
    rewrite_stats: RewriteStats | None = None
    traits: PlanTraits = field(default_factory=PlanTraits)
    options: PlanOptions = field(default_factory=PlanOptions)

    @property
    def is_core_xpath(self) -> bool:
        return self.core_violation is None

    @property
    def is_extended_wadler(self) -> bool:
        return self.wadler_violation is None

    def best_algorithm(self) -> str:
        """The *static* (document-independent) fragment dispatch ``auto``
        falls back to when no specializer is attached: Core XPath →
        Theorem 13's linear-time evaluator, everything else →
        OPTMINCONTEXT. The cost-driven per-document choice lives in
        :class:`repro.service.specialize.PlanSpecializer`."""
        if self.is_core_xpath:
            return "corexpath"
        return "optmincontext"

    @property
    def algorithm(self) -> str:
        """Alias for :meth:`best_algorithm` — derived, never stored, so it
        cannot drift from the fragment classification."""
        return self.best_algorithm()

    @property
    def cache_key(self) -> tuple:
        return plan_key(self.source, self.options)


#: Backward-compatible aliases — the class was named ``CompiledPlan``
#: before the two-stage split (and ``CompiledQuery`` in the engine facade
#: that predates the service layer). Both names remain importable;
#: ``LogicalPlan`` is the stage-1 name the architecture docs use.
CompiledPlan = LogicalPlan
CompiledQuery = LogicalPlan
