"""An exact-accounting LRU cache for logical plans.

``OrderedDict``-based: a hit moves the entry to the MRU end, an insert
beyond capacity evicts from the LRU end. Every lookup is counted as
exactly one hit or one miss on the attached
:class:`repro.stats.CacheStats`, and every capacity overflow as exactly
one eviction — the plan-cache tests assert these counters literally.

The cache is value-agnostic (it stores whatever the factory returns), but
in practice the keys are :func:`repro.service.plan.plan_key` tuples and
the values :class:`repro.service.plan.LogicalPlan` instances — stage 1 of
the two-stage compilation only. Stage-2 physical specializations are
document-dependent and live in the
:class:`repro.service.specialize.PlanSpecializer` memo instead, keyed by
(plan, profile), so an evicted-and-recompiled plan (same stable
``cache_key``) keeps hitting its existing specializations.

Thread safety: every operation (including the lookup-count + mutate
pairs) runs under one re-entrant lock, so a single cache shared by
concurrent drivers — the thread scheduler's seeded workers, the async
front end's offload threads — keeps its counters exact and never loses
an eviction. The lock is re-entrant because a ``get_or_create`` factory
may legitimately insert entries (even the same key) into the cache it is
populating; holding the lock across the factory also guarantees each key
is built at most once, so racing callers see one miss and then hits.
The flip side, accepted deliberately: while one thread's factory runs
(a plan compile, ~sub-millisecond), other threads' lookups wait on the
lock — the simple-and-exact accounting this layer promises over maximal
compile concurrency. If compiles ever dominate contention, the upgrade
path is per-key placeholders inserted under the lock with the factory
run outside it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Iterator

from repro.stats import CacheStats


class PlanCache:
    """LRU cache keyed by ``(query, options)`` with exact statistics."""

    def __init__(self, capacity: int = 256, name: str = "plan_cache"):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats(name=name, capacity=capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------

    def get(self, key: Hashable):
        """The cached value, refreshed to MRU, or ``None`` on a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.miss()
                return None
            self._entries.move_to_end(key)
            self.stats.hit()
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) an entry, evicting LRU entries over capacity.

        Single-lookup insert path: assigning into the ``OrderedDict``
        already appends new keys at the MRU end, so only the refresh of a
        *pre-existing* key (detected by the length not growing) needs an
        explicit ``move_to_end`` — no separate membership probe, no
        double hash. This also keeps eviction counters exact when a
        ``get_or_create`` factory recursively inserts entries (including
        the same key) before the outer insert lands.
        """
        with self._lock:
            entries = self._entries
            size_before = len(entries)
            entries[key] = value
            if len(entries) == size_before:
                entries.move_to_end(key)
            while len(entries) > self.capacity:
                entries.popitem(last=False)
                self.stats.eviction()

    def pop_lru(self) -> tuple:
        """Remove and return the least-recently-used ``(key, value)`` pair
        (counted as an eviction). Raises ``KeyError`` when empty."""
        with self._lock:
            key, value = self._entries.popitem(last=False)
            self.stats.eviction()
            return key, value

    def get_or_create(self, key: Hashable, factory: Callable[[], object]):
        """One-lookup combination of :meth:`get` and :meth:`put`.

        The factory runs only on a miss — under the lock, so concurrent
        callers of the same key build the value exactly once; a factory
        that raises leaves the cache unchanged (the miss is still counted
        — the lookup happened).
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.miss()
                value = factory()
                self.put(key, value)
                return value
            self._entries.move_to_end(key)
            self.stats.hit()
            return value

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop all entries (statistics are retained)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> Iterator[Hashable]:
        """Keys from LRU to MRU (a point-in-time copy, safe to iterate
        while the cache is concurrently mutated)."""
        with self._lock:
            return iter(list(self._entries))

    def values(self) -> Iterator[object]:
        """Values from LRU to MRU (no recency update; point-in-time copy)."""
        with self._lock:
            return iter(list(self._entries.values()))

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
