"""The scheduler abstraction: pluggable middle layers for sharded batches.

PR 2's :class:`~repro.service.executor.ShardedExecutor` hard-wired its
middle layer to ``concurrent.futures`` pools. This module extracts that
layer into a backend-agnostic :class:`Scheduler` with three phases:

1. **prepare** — compile/resolve every query in the parent (surfacing
   syntax and fragment errors before any worker starts) and plan the
   document shards (:func:`repro.service.shard.plan_shards`);
2. **dispatch** — evaluate the shards; *this is the only phase a backend
   overrides*;
3. **merge** — reassemble per-shard values into batch order and sum the
   per-shard cache counters exactly (:func:`merge_stats_snapshots`).

Backends
--------

* :class:`SerialScheduler` — shards run one after another in the calling
  thread. The semantics baseline: zero concurrency, zero overhead, and
  the reference the differential scheduler suite compares everything
  against.
* :class:`ThreadScheduler` — a ``ThreadPoolExecutor``, one worker per
  shard. In-process overlap (latency hiding behind a slow shard), no
  serialization, workers seeded with the parent's compiled plans;
  CPython's GIL still serializes the evaluation work.
* :class:`ProcessScheduler` — a ``ProcessPoolExecutor`` for true
  parallelism. Documents cross the boundary as binary snapshots
  (:mod:`repro.xml.snapshot`) — exact for every finalized document, so
  workers skip the XML parse *and* the index build — and node-set
  results return as pre-order indices rebound to the parent's trees.
  A worker that rejects a blob (corruption) falls back to in-parent
  evaluation.
* :class:`AsyncScheduler` — asyncio: one coroutine per shard, a bounded
  semaphore capping in-flight shards, with the GIL-bound evaluation work
  offloaded to threads (``asyncio.to_thread``). Same overlap profile as
  the thread backend, but it composes with an event loop — it powers
  :class:`~repro.service.async_service.AsyncQueryService`, including
  :meth:`AsyncScheduler.stream`, which yields shard outcomes *as they
  complete* instead of barriering on the slowest shard.

Statistics-merge semantics
--------------------------

Each worker's :class:`QueryService` is fresh, so its per-batch stats
deltas equal its lifetime counters. The merged ``plan_stats`` /
``result_stats`` are the *exact* sums of the per-shard hit/miss/eviction
counters (hit rate recomputed over the summed lookups), and the unmerged
per-shard snapshots are kept on ``BatchResult.shards`` so nothing is
lost in aggregation. Summation describes the fleet, not one cache: under
the process backend each worker compiles its own plans, so a query
evaluated on ``k`` shards contributes ``k`` plan-cache misses; in-process
backends seed workers with the parent's plans, so the same lookups are
``k`` (honest, warm) hits.

Each worker resolves each query's evaluation algorithm itself, but
resolution is deterministic (fragment classification is a pure function
of the compiled AST), so the parent's up-front resolution always matches
the workers'.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.service.plan import CompiledPlan
from repro.service.planner import compile_plan, resolve_algorithm
from repro.service.shard import (
    SHARD_STRATEGIES,
    Shard,
    ShardTimingHistory,
    plan_shards,
)
from repro.stats import BatchPlanStats, CacheStats
from repro.xml.document import Document


def merge_stats_snapshots(snapshots, name: str, capacity=None) -> dict:
    """Sum hit/miss/eviction counters across per-shard stats snapshots.

    The sums are exact (each worker counts every lookup exactly once and
    the shards are disjoint); the hit rate is recomputed over the summed
    lookups rather than averaged, so it is the fleet-wide rate. This is
    the barrier form; the streaming front end folds the same snapshots in
    one at a time via :meth:`repro.stats.CacheStats.absorb_snapshot` and
    reaches the identical totals.
    """
    merged = CacheStats(name=name, capacity=capacity)
    for snapshot in snapshots:
        merged.absorb_snapshot(snapshot)
    return merged.snapshot()


def merge_batch_plan_snapshots(snapshots) -> dict:
    """Sum batch-plan counters across per-shard snapshots.

    Each shard builds its own step DAG over the same query list, so the
    plan-shape fields sum across shards just like the per-cell counters
    (they describe the fleet of DAGs, not one). Returns ``{}`` when no
    shard shared anything — notably whenever the batch ran with
    ``share=False`` — so the merged result is byte-identical to the
    unsharded no-share result.
    """
    merged = BatchPlanStats()
    nonempty = False
    for snapshot in snapshots:
        if snapshot:
            nonempty = True
            merged.absorb_snapshot(snapshot)
    return merged.snapshot() if nonempty else {}


# ----------------------------------------------------------------------
# Worker entry points (module-level so the process backend can import
# them by reference in spawned interpreters).
# ----------------------------------------------------------------------


def _evaluate_shard(
    config: dict,
    queries: list[str],
    documents,
    algorithm: str,
    plans=None,
    share: bool = True,
):
    """Run one shard's sub-batch in a fresh service (in-process workers).

    ``plans`` seeds the worker's plan cache with already-compiled plans —
    :class:`CompiledPlan` is immutable and freely shareable across
    threads, so in-process workers reuse the parent's compilations
    instead of redoing the frontend pipeline per worker. ``share``
    forwards the batch-sharing knob: each worker builds its own step DAG
    over its shard's documents, so process workers stay self-contained
    (nothing DAG-related crosses the process boundary except the counter
    snapshot)."""
    from repro.service.service import QueryService

    service = QueryService(**config)
    for plan in plans or ():
        service.plans.put(plan.cache_key, plan)
    return service.evaluate_many(
        queries, documents, algorithm=algorithm, share=share
    )


def _encode_value(value):
    """Make one result cell picklable without shipping the tree back:
    node-sets become pre-order index lists, scalars pass through."""
    if isinstance(value, list):
        return ("nset", [node.pre for node in value])
    return ("scalar", value)


def _decode_value(encoded, document: Document):
    """Rebind an encoded cell to the parent process's document."""
    tag, payload = encoded
    if tag == "nset":
        nodes = document.nodes
        return [nodes[pre] for pre in payload]
    return payload


def _evaluate_shard_snapshots(payload: dict) -> dict:
    """Process-backend worker: rebuild the shard's documents from binary
    snapshots (:mod:`repro.xml.snapshot`), evaluate, and return an
    index-encoded result.

    Snapshots preserve the pre-order numbering *exactly* for every
    finalized document — including builder-constructed trees that do not
    round-trip through serialize → parse — so decoding them is always
    sound where the old markup path needed a canonicality screen. The
    decoder's CRC and structural validation reject corrupt blobs, and
    the rebuilt node counts are still cross-checked against the parent's
    as defense in depth: any failure is reported as a fallback request
    instead of a result — the parent then evaluates that shard
    in-process. Mis-binding silently is the one outcome this layer must
    never produce."""
    from repro.errors import DocumentStoreError
    from repro.xml.snapshot import decode_snapshot

    started = time.perf_counter()
    try:
        # Column-only decode: the worker adopts the index and evaluates
        # over flat columns, materializing just the result nodes it
        # encodes back — never the O(|D|) tree the eager decode builds.
        documents = [
            decode_snapshot(blob, lazy=True) for blob in payload["snapshots"]
        ]
    except DocumentStoreError as error:
        return {"fallback": f"shard snapshot does not decode: {error}"}
    for document, expected in zip(documents, payload["node_counts"]):
        if len(document) != expected:
            return {
                "fallback": "snapshot decode is not node-isomorphic "
                f"({expected} nodes became {len(document)})"
            }
    batch = _evaluate_shard(
        payload["config"],
        payload["queries"],
        documents,
        payload["algorithm"],
        share=payload.get("share", True),
    )
    # The shard's wall time as the worker experienced it (rebuild +
    # evaluation) — the cost the adaptive weighting should balance.
    return {
        "values": [[_encode_value(value) for value in row] for row in batch.values],
        "plan_stats": batch.plan_stats,
        "result_stats": batch.result_stats,
        "batch_plan": batch.batch_plan,
        "elapsed_seconds": time.perf_counter() - started,
    }


# ----------------------------------------------------------------------
# The scheduler seam
# ----------------------------------------------------------------------


@dataclass
class PreparedBatch:
    """Everything the prepare phase produces: the immutable input to
    ``dispatch`` and ``merge``. Shards are planned and every query is
    compiled and algorithm-resolved, so a prepared batch can no longer
    fail on query errors — only on evaluation itself."""

    queries: list[str]
    documents: list
    algorithm: str
    share: bool = True
    algorithms: list[str] = field(default_factory=list)
    plans: list[CompiledPlan] = field(default_factory=list)
    shards: list[Shard] = field(default_factory=list)


class Scheduler:
    """Backend-agnostic sharded batch evaluation: prepare → dispatch → merge.

    Construction takes the same cache/compilation knobs as
    :class:`~repro.service.service.QueryService` — each worker builds its
    own service from them. ``workers`` is the maximum shard count;
    batches with fewer documents use fewer shards (never empty ones).

    Subclasses override :meth:`dispatch` (and nothing else): it receives
    a :class:`PreparedBatch` and returns one outcome dict per shard, in
    shard order, each with ``values`` rows (decoded, parent-tree nodes)
    plus ``plan_stats``/``result_stats`` snapshots.
    """

    #: Backend name, reported on ``BatchResult.shards`` entries.
    name = "scheduler"

    def __init__(
        self,
        workers: int = 2,
        shard_by: str = "round-robin",
        plan_capacity: int = 256,
        session_capacity: int = 64,
        result_capacity: int | None = None,
        optimize: bool = False,
        variables: dict[str, object] | None = None,
        specialize: bool = True,
        history: ShardTimingHistory | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_by not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {shard_by!r}; choose from {SHARD_STRATEGIES}"
            )
        self.workers = workers
        self.shard_by = shard_by
        #: Optional cross-batch timing history (owned by the caller —
        #: typically :attr:`QueryService.shard_history`): consulted for
        #: LPT weights in :meth:`prepare`, fed by completed shards. Not
        #: part of ``service_config`` — workers must not inherit it.
        self.history = history
        self.service_config = {
            "plan_capacity": plan_capacity,
            "session_capacity": session_capacity,
            "result_capacity": result_capacity,
            "optimize": optimize,
            "variables": dict(variables or {}),
            "specialize": specialize,
        }

    # ------------------------------------------------------------------
    # Phase 1: prepare

    def prepare(
        self, queries, documents, algorithm: str = "auto", share: bool = True
    ) -> PreparedBatch:
        """Compile each distinct query once, resolve its algorithm, and
        plan the shards — surfacing syntax/fragment errors before any
        worker starts, and fixing the merged result's ``algorithms``
        list. The plans are kept so in-process workers can reuse them
        instead of recompiling (process workers must recompile: an AST is
        cheap to rebuild but expensive to pickle). ``share`` rides the
        prepared batch so every worker applies the same batch-sharing
        policy; the DAG itself is built per shard, never here."""
        prepared = PreparedBatch(
            queries=list(queries),
            documents=list(documents),
            algorithm=algorithm,
            share=share,
        )
        plans: dict[str, CompiledPlan] = {}
        for query in prepared.queries:
            plan = plans.get(query)
            if plan is None:
                plan = compile_plan(
                    query,
                    self.service_config["variables"],
                    self.service_config["optimize"],
                )
                plans[query] = plan
            prepared.algorithms.append(resolve_algorithm(plan, algorithm))
        prepared.plans = list(plans.values())
        if prepared.documents:
            # Adaptive weighting (size-balanced only): when the attached
            # history has observed any of these documents, LPT balances
            # on predicted seconds instead of the node-count proxy.
            weights = None
            if self.history is not None and self.shard_by == "size-balanced":
                weights = self.history.predicted_weights(prepared.documents)
            prepared.shards = plan_shards(
                prepared.documents, self.workers, self.shard_by, weights=weights
            )
        return prepared

    # ------------------------------------------------------------------
    # Phase 2: dispatch (the backend seam)

    def dispatch(self, prepared: PreparedBatch) -> list[dict]:
        """Evaluate every shard; returns, per shard (in shard order), a
        dict with decoded ``values`` rows plus the shard's stats
        snapshots. The one method a backend overrides."""
        raise NotImplementedError

    def run_shard(self, shard: Shard, prepared: PreparedBatch) -> dict:
        """Evaluate one shard in-process (the in-process backends' worker
        body, and the process backend's fallback path). The shard's wall
        time rides the outcome — it is what the adaptive weighting
        satellite feeds back into :func:`plan_shards`."""
        started = time.perf_counter()
        batch = _evaluate_shard(
            self.service_config,
            prepared.queries,
            [prepared.documents[i] for i in shard.document_indices],
            prepared.algorithm,
            plans=prepared.plans,
            share=prepared.share,
        )
        return {
            "values": batch.values,
            "plan_stats": batch.plan_stats,
            "result_stats": batch.result_stats,
            "batch_plan": batch.batch_plan,
            "elapsed_seconds": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    # Phase 3: merge

    def shard_report(self, shard: Shard, outcome: dict) -> dict:
        """One ``BatchResult.shards`` entry: the shard's identity and its
        unmerged stats snapshots. Shared by the barrier merge and the
        streaming front end so the two report shapes cannot drift."""
        return {
            "shard": shard.index,
            "backend": self.name,
            "strategy": self.shard_by,
            "documents": list(shard.document_indices),
            "weight": shard.weight,
            "elapsed_seconds": outcome.get("elapsed_seconds", 0.0),
            "local_fallback": outcome.get("local_fallback", False),
            "plan_stats": outcome["plan_stats"],
            "result_stats": outcome["result_stats"],
            "batch_plan": outcome.get("batch_plan", {}),
        }

    def record_timing(
        self, shard: Shard, outcome: dict, prepared: PreparedBatch
    ) -> None:
        """Feed one completed shard's wall time into the attached
        :class:`~repro.service.shard.ShardTimingHistory` (no-op without
        one). Called exactly once per shard — by :meth:`merge` on the
        barrier path and by the streaming front end as shards complete —
        so each observation is folded once."""
        if self.history is None:
            return
        elapsed = outcome.get("elapsed_seconds", 0.0)
        self.history.observe_shard(
            [prepared.documents[i] for i in shard.document_indices], elapsed
        )

    def merge(self, prepared: PreparedBatch, outcomes: list[dict]):
        """Reassemble shard outcomes into one merged
        :class:`~repro.service.service.BatchResult`: ``values`` in batch
        order (indistinguishable from the sequential path),
        ``plan_stats``/``result_stats`` summed exactly across shards, and
        per-shard snapshots on ``shards``."""
        from repro.service.service import BatchResult

        values: list[list[object] | None] = [None] * len(prepared.documents)
        for shard, outcome in zip(prepared.shards, outcomes):
            self.record_timing(shard, outcome, prepared)
            for doc_index, row in zip(shard.document_indices, outcome["values"]):
                values[doc_index] = row
        return BatchResult(
            queries=prepared.queries,
            document_count=len(prepared.documents),
            values=values,
            algorithms=prepared.algorithms,
            plan_stats=merge_stats_snapshots(
                [outcome["plan_stats"] for outcome in outcomes],
                "plan_cache",
                self.service_config["plan_capacity"],
            ),
            result_stats=merge_stats_snapshots(
                [outcome["result_stats"] for outcome in outcomes], "result_cache"
            ),
            batch_plan=merge_batch_plan_snapshots(
                [outcome.get("batch_plan", {}) for outcome in outcomes]
            ),
            workers=len(prepared.shards),
            shards=[
                self.shard_report(shard, outcome)
                for shard, outcome in zip(prepared.shards, outcomes)
            ],
        )

    # ------------------------------------------------------------------

    def execute(self, queries, documents, algorithm: str = "auto", share: bool = True):
        """Prepare, dispatch, and merge one batch — the sync entry point."""
        prepared = self.prepare(queries, documents, algorithm, share=share)
        return self.merge(prepared, self.dispatch(prepared))


class SerialScheduler(Scheduler):
    """Shards run one after another in the calling thread — the zero-
    concurrency reference backend the scheduler suite diffs against."""

    name = "serial"

    def dispatch(self, prepared: PreparedBatch) -> list[dict]:
        return [self.run_shard(shard, prepared) for shard in prepared.shards]


class ThreadScheduler(Scheduler):
    """One ``ThreadPoolExecutor`` worker per shard: in-process latency
    overlap (the GIL serializes the evaluation work itself)."""

    name = "thread"

    def dispatch(self, prepared: PreparedBatch) -> list[dict]:
        with ThreadPoolExecutor(max_workers=len(prepared.shards) or 1) as pool:
            futures = [
                pool.submit(self.run_shard, shard, prepared)
                for shard in prepared.shards
            ]
            return [future.result() for future in futures]


class ProcessScheduler(Scheduler):
    """A ``ProcessPoolExecutor`` for true parallelism; documents are
    rebuilt per worker from binary snapshots (pre-order numbering
    preserved exactly, node index pre-seeded) and node-set results
    rebound to the parent's trees via pre-order indices.

    Requires scalar variable bindings: node-set and object bindings are
    bound to the parent's trees, and shipping them would pickle tree
    copies whose nodes then decode against the wrong document. Enforced
    at construction — use an in-process backend for non-scalar bindings.
    """

    name = "process"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        non_scalar = [
            name
            for name, value in self.service_config["variables"].items()
            if not (value is None or isinstance(value, (str, float, int, bool)))
        ]
        if non_scalar:
            raise ValueError(
                "process backend requires scalar variable bindings; "
                f"non-scalar bindings {sorted(non_scalar)} are bound to the "
                "parent's trees and cannot cross the process boundary — "
                "use the thread, serial, or async backend"
            )

    def dispatch(self, prepared: PreparedBatch) -> list[dict]:
        # Every shard ships: binary snapshots preserve the pre-order
        # numbering exactly for all finalized documents (builder trees
        # included), so the old serialize → parse canonicality screen —
        # and its in-parent fallback path for non-canonical documents —
        # is gone. Blobs are encoded once per document (weak-cached) no
        # matter how many shards share it.
        from repro.xml.snapshot import cached_snapshot

        documents = prepared.documents
        outcomes: dict[int, dict] = {}
        with ProcessPoolExecutor(
            max_workers=max(1, len(prepared.shards))
        ) as pool:
            futures = {
                shard.index: pool.submit(
                    _evaluate_shard_snapshots,
                    {
                        "config": self.service_config,
                        "queries": prepared.queries,
                        "algorithm": prepared.algorithm,
                        "share": prepared.share,
                        "snapshots": [
                            cached_snapshot(documents[i])
                            for i in shard.document_indices
                        ],
                        "node_counts": [
                            len(documents[i]) for i in shard.document_indices
                        ],
                    },
                )
                for shard in prepared.shards
            }
            for shard in prepared.shards:
                outcome = futures[shard.index].result()
                if "fallback" in outcome:
                    # The worker refused the shard (corrupt blob or
                    # renumbered nodes); evaluate it here instead.
                    reason = outcome["fallback"]
                    outcome = self.run_shard(shard, prepared)
                    outcome["local_fallback"] = reason
                else:
                    outcome["values"] = [
                        [
                            _decode_value(encoded, documents[doc_index])
                            for encoded in row
                        ]
                        for doc_index, row in zip(
                            shard.document_indices, outcome["values"]
                        )
                    ]
                outcomes[shard.index] = outcome
        return [outcomes[shard.index] for shard in prepared.shards]


class AsyncScheduler(Scheduler):
    """Coroutine-per-shard on asyncio: in-flight shards are bounded by a
    semaphore and the GIL-bound evaluation work is offloaded to threads
    (``asyncio.to_thread``), so the event loop stays responsive.

    Two async entry points beyond the sync :meth:`dispatch` bridge:
    :meth:`dispatch_async` (barrier, for ``await evaluate_many``) and
    :meth:`stream` (an async generator yielding ``(shard, outcome)``
    pairs in *completion* order — small shards surface while the big one
    is still running, which is the whole point of streaming).
    """

    name = "async"

    def __init__(self, *args, max_concurrency: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        if max_concurrency is not None and max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.max_concurrency = max_concurrency

    def _semaphore(self, shard_count: int) -> asyncio.Semaphore:
        limit = self.max_concurrency or max(1, shard_count)
        return asyncio.Semaphore(limit)

    def dispatch(self, prepared: PreparedBatch) -> list[dict]:
        """Sync bridge: run the async dispatch on a private event loop
        (used when an async batch is requested from synchronous code,
        e.g. ``evaluate_many(backend="async")`` or the CLI)."""
        return asyncio.run(self.dispatch_async(prepared))

    async def dispatch_async(self, prepared: PreparedBatch) -> list[dict]:
        """Evaluate every shard concurrently; outcomes in shard order."""
        semaphore = self._semaphore(len(prepared.shards))

        async def run(shard: Shard) -> dict:
            async with semaphore:
                return await asyncio.to_thread(self.run_shard, shard, prepared)

        return list(await asyncio.gather(*(run(shard) for shard in prepared.shards)))

    async def stream(self, prepared: PreparedBatch):
        """Async generator of ``(shard, outcome)`` pairs in completion
        order. Early exit (``break``/``aclose``) cancels the not-yet-
        finished shard tasks; already-offloaded evaluations run to
        completion in their worker threads but their results are dropped.
        """
        semaphore = self._semaphore(len(prepared.shards))

        async def run(shard: Shard) -> tuple[Shard, dict]:
            async with semaphore:
                return shard, await asyncio.to_thread(self.run_shard, shard, prepared)

        tasks = [asyncio.ensure_future(run(shard)) for shard in prepared.shards]
        try:
            for future in asyncio.as_completed(tasks):
                yield await future
        finally:
            for task in tasks:
                task.cancel()
            # Await the cancellations: leaving the generator (early break,
            # aclose, deadline) must not leak pending tasks into the loop
            # — the serving daemon's drain and the cancellation hammer
            # both assert the loop is quiet afterwards.
            await asyncio.gather(*tasks, return_exceptions=True)


#: The selectable scheduler backends, by name.
SCHEDULERS = {
    scheduler.name: scheduler
    for scheduler in (SerialScheduler, ThreadScheduler, ProcessScheduler, AsyncScheduler)
}

SCHEDULER_BACKENDS = tuple(SCHEDULERS)


def make_scheduler(backend: str = "thread", **kwargs) -> Scheduler:
    """Instantiate the scheduler for a backend name (the seam the service
    and CLI select on). Raises ``ValueError`` for unknown names."""
    try:
        scheduler_class = SCHEDULERS[backend]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}; choose from {SCHEDULER_BACKENDS}"
        ) from None
    return scheduler_class(**kwargs)
