"""Physical-plan specialization — stage 2 of the two-stage compilation.

Stage 1 (:mod:`repro.service.planner`) is document-independent: it turns
a query string into a :class:`~repro.service.plan.LogicalPlan` held in
the :class:`~repro.service.cache.PlanCache`. This module is the
document-*dependent* half: a :class:`PlanSpecializer` combines a logical
plan with a :class:`DocumentProfile` (node count, depth, fanout, text
ratio — from :mod:`repro.xml.statistics`) and produces a
:class:`PhysicalPlan` naming the evaluator to run, chosen by a small
explicit cost model.

Why per (query, document) and not per query
-------------------------------------------

The paper's headline result is that *which* algorithm you run dominates
cost, and the constants hiding inside the bounds are document-shape
facts. Measured on this implementation (seed constants below):

* MINCONTEXT's demand-driven tables beat OPTMINCONTEXT by 2–4× on
  selective, position-independent queries (``//book[price > 20]/title``):
  the bottom-up pass precomputes predicate tables over the *whole*
  document that the top-down pass would only have touched for a few
  candidate nodes.
* The Core XPath evaluator, since its PR 5 rewrite onto sorted pre
  arrays and fused partition kernels, runs 2–5× *below* MINCONTEXT's
  constants on Core queries at every document size (before the rewrite
  it was 2–4× above on small/mid documents — seed constants are
  re-measured facts, not axioms).
* OPTMINCONTEXT wins when position-dependent predicates sit on sibling
  axes *and* the document has long sibling runs (high fanout): the
  (cp, cs) loops then re-enter the same subexpressions ``Θ(fanout)``
  times, which is exactly what the bottom-up precomputation amortizes.

Since the fused axis kernels (:mod:`repro.axes`, PR 5) landed, the cost
model also prices the *indexed* variants of those candidates: a plan's
name-tested interval-axis steps (``PlanTraits.name_test_tags``) combined
with the profile's per-tag element counts predict how small the fused
kernels' outputs are (:func:`name_test_selectivity`), shrinking the
sweep share of each candidate's estimate — the Core XPath sweep in full
(it is set operations end to end), the table evaluators' by
:data:`SET_SWEEP_SHARE`. Hand-built profiles without tag counts
neutralize the term, so the pinned seed decisions are unchanged.

The candidate pool is deliberately restricted to the paper's
worst-case-bounded evaluators — ``mincontext``, ``optmincontext``, and
(inside Core XPath) ``corexpath``. ``naive`` is exponential and
``bottomup``/``topdown`` have no useful bounds on positional predicates,
so a cost-model mis-estimate over this pool costs constant factors,
never asymptotics. Two *guarantee clamps* keep even the constant-factor
risk bounded: above ``guarantee_nodes`` the selector defers to the
strongest fragment guarantee available (Theorem 13's linear time for
Core XPath, Corollary 11's bounds for the Extended Wadler Fragment)
regardless of what the constants say.

Online refinement
-----------------

The seed constants were measured on one interpreter and one machine.
Every uncached evaluation reports its wall time to a
:class:`~repro.stats.TimingStats` (``observe``), which maintains a
per-algorithm seconds-per-cost-unit rate; once every candidate of a
selection has enough observations, estimates are scaled by the observed
rates, correcting systematic constant error. Selections are memoized per
``(plan, profile)`` with exact hit/miss/eviction accounting
(``specialize_cache`` in :meth:`QueryService.cache_stats
<repro.service.service.QueryService.cache_stats>`), so a pinned choice
never flips mid-workload — refinement affects future (plan, profile)
pairs, not past ones.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property

from repro import stats
from repro.axes.vec import VECTOR_MIN_BLOCK
from repro.service.plan import LogicalPlan
from repro.service.planner import resolve_algorithm
from repro.stats import CacheStats, TimingStats
from repro.xml.document import Document
from repro.xml.statistics import document_statistics


# ----------------------------------------------------------------------
# Document profiles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DocumentProfile:
    """The document-shape features the cost model reads.

    Attributes:
        total_nodes: ``|dom|`` — the size every paper bound is stated in.
        max_depth: deepest element nesting (ancestor/descendant work).
        max_fanout: longest run of element siblings (the width of
            positional-sibling loops).
        text_ratio: text characters per node (string-function cost).
        tag_counts: sorted ``(tag, element count)`` pairs — the name-test
            selectivity side of the fused-kernel cost term (a
            ``descendant::a`` kernel touches the ``a`` partition, not
            ``dom``). Empty when unknown (hand-built profiles), which
            neutralizes the term.
    """

    total_nodes: int
    max_depth: int
    max_fanout: int
    text_ratio: float
    tag_counts: tuple = ()

    @classmethod
    def of(cls, document: Document) -> "DocumentProfile":
        """Profile a finalized document (one O(|D|) statistics pass)."""
        shape = document_statistics(document)
        return cls(
            total_nodes=shape.total_nodes,
            max_depth=shape.max_depth,
            max_fanout=shape.max_fanout,
            text_ratio=shape.total_text_bytes / max(1, shape.total_nodes),
            tag_counts=tuple(sorted(shape.tag_counts.items())),
        )

    @property
    def key(self) -> tuple:
        """Hashable memo key; identically-shaped documents share
        specializations. Tag counts are part of the shape — two documents
        that differ only in tag distribution specialize separately (their
        fused-kernel selectivities differ)."""
        return (
            self.total_nodes,
            self.max_depth,
            self.max_fanout,
            round(self.text_ratio, 3),
            self.tag_counts,
        )

    @cached_property
    def _tag_count_map(self) -> dict:
        """``tag_counts`` as a dict, built once per profile (profiles are
        weak-cached and immutable; cost_units reads this per candidate)."""
        return dict(self.tag_counts)

    def name_test_fraction(self, tags) -> float:
        """Mean fraction of ``dom`` under the named tag partitions — the
        predicted relative output of a fused name-test kernel. 1.0 when
        either side lacks the information (no tags, no counts)."""
        if not tags or not self.tag_counts:
            return 1.0
        counts = self._tag_count_map
        total = max(1, self.total_nodes)
        return sum(counts.get(tag, 0) / total for tag in tags) / len(tags)

    def describe(self) -> str:
        return (
            f"|dom|={self.total_nodes} depth={self.max_depth} "
            f"fanout={self.max_fanout} text-ratio={self.text_ratio:.2f} "
            f"tags={len(self.tag_counts)}"
        )


#: Profiles are immutable facts about finalized documents; cache them
#: process-wide so fresh sessions over the same document skip the
#: statistics pass. Weak keys: the cache never pins a document.
_PROFILE_CACHE: "weakref.WeakKeyDictionary[Document, DocumentProfile]" = (
    weakref.WeakKeyDictionary()
)
_PROFILE_LOCK = threading.Lock()


def document_profile(document: Document) -> DocumentProfile:
    """The (process-wide, weakly cached) profile of a document."""
    with _PROFILE_LOCK:
        profile = _PROFILE_CACHE.get(document)
    if profile is None:
        profile = DocumentProfile.of(document)
        with _PROFILE_LOCK:
            _PROFILE_CACHE[document] = profile
    return profile


#: Representative profiles ``repro-xpath plan --explain`` specializes
#: against when no document is given: one typical small served document,
#: one large one (past the guarantee threshold).
REPRESENTATIVE_PROFILES = (
    ("small document", DocumentProfile(total_nodes=64, max_depth=5, max_fanout=8, text_ratio=2.0)),
    ("large document", DocumentProfile(total_nodes=8192, max_depth=12, max_fanout=32, text_ratio=2.0)),
)


# ----------------------------------------------------------------------
# The cost model
# ----------------------------------------------------------------------

#: Seed constants, in abstract cost units (1 unit ≈ one node×AST-node
#: touch of MINCONTEXT's demand-driven pass). Measured on the paper's
#: query families over catalog / line / wide-tree workload documents;
#: the online timing rates correct residual machine-specific error.

#: Theorem 13's sweep, re-measured after the PR 6 flat-column rewrite
#: (packed ``array('q')`` columns behind memoryviews; kernels bisect
#: machine integers instead of boxed lists): the Core XPath evaluator's
#: constants now run 1.3–15× *below* MINCONTEXT's demand-driven pass on
#: Core queries, median ≈ 4× across the catalog / wide-tree workload —
#: wider than the 2–5× measured after PR 5's sorted-array rewrite,
#: because the end-to-end set sweeps gain the most from unboxing. The
#: factor drops 0.5 → 0.4 to track the median shift; the online timing
#: rates still absorb per-machine residue. Re-measured after the vector
#: tier landed: the block programs shift the wide-sweep end further
#: (2–4× on the EXP-VEC workload) but leave selective queries at the
#: scalar-kernel constants, so the median factor keeps 0.4 and the
#: vector gain is priced separately (:data:`VECTOR_SWEEP_DISCOUNT`).
CORE_SWEEP_FACTOR = 0.4
#: Multiplier on the Core sweep estimate for documents wide enough that
#: ``auto`` routes sweeps through the tier-2 column programs
#: (``repro.axes.vec``): batch-at-a-time column ops cut the per-node
#: interpreter constant, but only once blocks amortize program setup —
#: below the block threshold the discount must not apply, or tiny
#: documents would over-prefer corexpath on mispredicted gains.
#: Measured ≈ 0.6–0.8 on wide sweeps; 0.75 keeps the discount
#: conservative and monotone (applied uniformly above the threshold).
VECTOR_SWEEP_DISCOUNT = 0.75
#: Per-unit cost of the (cp, cs) loop work when position is relevant.
POSITIONAL_LOOP_FACTOR = 1.0
#: OPTMINCONTEXT re-enters positional loops with precomputed tables, so
#: its loop constant is lower than MINCONTEXT's.
OPT_LOOP_DISCOUNT = 0.9
#: Cost of bottom-up precomputation: one full-document table per
#: bottom-up path, built whether or not the top-down pass needs it.
#: Together with the loop discount this puts the sibling-loop crossover
#: near fanout ≈ 100·(bottom-up paths), where the measurements flip.
BOTTOMUP_SETUP_FACTOR = 10.0
#: Loop width for position-dependent queries without sibling-positional
#: steps (descendant/child positional loops span candidate sets, not
#: sibling runs).
POSITION_BASE_WIDTH = 2.0
#: Extra per-string-op weight, scaled by the profile's text ratio.
STRING_OP_FACTOR = 0.125
#: Floor on the fused-kernel selectivity discount: even a kernel whose
#: partition is empty still pays dispatch, bisection, and table costs.
INDEX_DISCOUNT_FLOOR = 0.05
#: Share of the table evaluators' (MINCONTEXT/OPTMINCONTEXT) unit cost
#: that is candidate-set sweeps (the part the fused kernels shrink);
#: the rest is table bookkeeping the index cannot touch. The Core XPath
#: evaluator is *all* set sweeps, so its discount applies in full.
SET_SWEEP_SHARE = 0.5

#: Algorithms the cost model can estimate *and* ``auto`` may select.
SELECTABLE = ("mincontext", "optmincontext", "corexpath")

#: Floor on the residual share of a plan's sweep when a step prefix is
#: already materialized (:meth:`PlanSpecializer.specialize_residual`):
#: even a one-step residual still pays per-evaluation setup — dispatch,
#: context construction, and (for the table evaluators) table priming.
RESIDUAL_SWEEP_FLOOR = 0.1


def residual_cost_units(
    plan: LogicalPlan,
    profile: DocumentProfile,
    algorithm: str,
    covered: int,
    total: int,
) -> float:
    """Estimated cost of evaluating ``plan`` when ``covered`` of its
    ``total`` main-path steps are already materialized as a sorted pre
    array (the batch-shared step DAG's residual evaluation): the full
    estimate scaled by the floored residual step share. Degenerate step
    counts neutralize the scaling rather than extrapolating."""
    if total <= 0 or covered <= 0 or covered > total:
        return cost_units(plan, profile, algorithm)
    fraction = max(RESIDUAL_SWEEP_FLOOR, (total - covered) / total)
    return cost_units(plan, profile, algorithm) * fraction


def name_test_selectivity(plan: LogicalPlan, profile: DocumentProfile) -> float:
    """The indexed-kernel cost term: predicted fraction of ``dom`` the
    plan's fused name-test kernels touch on this profile (floored — see
    :data:`INDEX_DISCOUNT_FLOOR`). 1.0 (no effect) when the plan has no
    name-tested interval-axis steps or the profile carries no tag counts
    — so hand-built profiles and pre-index decisions are unchanged."""
    fraction = profile.name_test_fraction(plan.traits.name_test_tags)
    if fraction >= 1.0:
        return 1.0
    return max(INDEX_DISCOUNT_FLOOR, fraction)


def positional_loop_width(plan: LogicalPlan, profile: DocumentProfile) -> float:
    """The width of the (cp, cs) loops the evaluators run for this
    (plan, profile): sibling-run length for positional sibling steps,
    a thin per-node band otherwise, zero for position-free queries."""
    if plan.traits.positional_sibling:
        return float(profile.total_nodes * max(1, profile.max_fanout))
    if plan.traits.uses_position:
        return POSITION_BASE_WIDTH * profile.total_nodes
    return 0.0


def cost_units(plan: LogicalPlan, profile: DocumentProfile, algorithm: str) -> float:
    """Estimated abstract cost of evaluating ``plan`` on a document of
    ``profile``'s shape with ``algorithm``.

    Only the :data:`SELECTABLE` algorithms have real models; the other
    evaluators get the base sweep estimate so forced-algorithm timings
    can still be normalized into per-unit rates.
    """
    n = profile.total_nodes
    base = float(n) * plan.traits.ast_size
    base += STRING_OP_FACTOR * plan.traits.string_op_count * profile.text_ratio * n
    loop = positional_loop_width(plan, profile)
    selectivity = name_test_selectivity(plan, profile)
    if algorithm == "corexpath":
        # The Core sweep is set operations end to end: every name-tested
        # interval step is now a fused partition query, so the whole
        # estimate scales with the predicted kernel output. Documents
        # past the vector block threshold run the sweep as tier-2
        # column programs — cheaper per step, priced by the discount.
        estimate = CORE_SWEEP_FACTOR * base * selectivity
        if n >= VECTOR_MIN_BLOCK:
            estimate *= VECTOR_SWEEP_DISCOUNT
        return estimate
    # The table evaluators' candidate-set sweeps ride the same kernels;
    # their table bookkeeping does not.
    sweep_blend = (1.0 - SET_SWEEP_SHARE) + SET_SWEEP_SHARE * selectivity
    if algorithm == "mincontext":
        return base * sweep_blend + POSITIONAL_LOOP_FACTOR * loop
    if algorithm == "optmincontext":
        return (
            base * sweep_blend
            + OPT_LOOP_DISCOUNT * loop
            + BOTTOMUP_SETUP_FACTOR * plan.bottomup_path_count * n
        )
    return base


# ----------------------------------------------------------------------
# Physical plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PhysicalPlan:
    """A logical plan bound to a document profile and an evaluator.

    Attributes:
        logical: the stage-1 plan (shared, immutable).
        profile: the document shape this specialization is for.
        algorithm: the evaluator to run.
        requested: what the caller asked for (``auto`` or a forced name).
        estimates: per-candidate ``(algorithm, estimated cost)`` pairs,
            in candidate order (empty for forced requests) — exactly the
            numbers the selection compared: seed model units, or units ×
            observed seconds-per-unit rates once every candidate has
            enough observations (the rationale notes which).
        clamped: True when a guarantee clamp overrode the cost model.
        rationale: one human-readable line explaining the choice.
    """

    logical: LogicalPlan
    profile: DocumentProfile
    algorithm: str
    requested: str = "auto"
    estimates: tuple = ()
    clamped: bool = False
    rationale: str = ""

    def describe(self) -> str:
        """Multi-line explanation for ``repro-xpath plan --explain``."""
        lines = [
            f"profile:          {self.profile.describe()}",
            f"chosen algorithm: {self.algorithm}",
        ]
        if self.estimates:
            ranked = ", ".join(
                f"{name}={cost:.3g}" for name, cost in self.estimates
            )
            lines.append(f"estimated cost:   {ranked} (lower wins)")
        lines.append(f"rationale:        {self.rationale}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The specializer
# ----------------------------------------------------------------------


class PlanSpecializer:
    """Cost-driven algorithm selection with memoized, exactly counted
    specializations and online timing refinement.

    Thread safety follows the service layer's conventions: the memo
    (with its hit/miss accounting) mutates under one lock, and the
    selection computation — pure and cheap — runs inside it, so racing
    callers of one (plan, profile) see one miss and then hits, exactly.
    """

    #: Bound on the specialization memo; enforced by *profile-bucketed*
    #: LRU eviction: entries live in per-profile buckets under one
    #: global capacity, a hit refreshes recency, and an insert past
    #: capacity evicts exactly one entry — the globally
    #: least-recently-used entry *of a largest bucket*. One hot document
    #: profile churning through thousands of plans can therefore only
    #: evict its own entries once its bucket is the largest; other
    #: profiles' specializations survive the burst. When all buckets tie
    #: (e.g. one entry each) this degenerates to plain global LRU, which
    #: keeps the eviction order deterministic.
    DEFAULT_MEMO_CAPACITY = 4096
    #: Observations every candidate needs before observed rates replace
    #: the seed constants in a selection.
    MIN_OBSERVATIONS = 3

    def __init__(
        self,
        memo_capacity: int | None = None,
        guarantee_nodes: int = 4096,
        timings: TimingStats | None = None,
    ):
        self.memo_capacity = (
            self.DEFAULT_MEMO_CAPACITY if memo_capacity is None else memo_capacity
        )
        if self.memo_capacity < 1:
            raise ValueError(
                f"memo capacity must be >= 1, got {self.memo_capacity}"
            )
        #: Above this many nodes, fragment guarantees override constants.
        self.guarantee_nodes = guarantee_nodes
        self.timings = timings if timings is not None else TimingStats(name="eval")
        self.stats = CacheStats(name="specialize_cache", capacity=self.memo_capacity)
        # Global recency order (key → bucket key) plus per-profile-key
        # buckets holding the actual entries; see DEFAULT_MEMO_CAPACITY
        # for the eviction policy the split implements.
        self._order: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._buckets: dict[tuple, dict[tuple, PhysicalPlan]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------

    def specialize(
        self,
        plan: LogicalPlan,
        profile: DocumentProfile,
        algorithm: str = "auto",
    ) -> PhysicalPlan:
        """The physical plan for (plan, profile, requested algorithm),
        through the memo. Forced names are validated (fragment violations
        raise exactly as in static resolution) and passed through."""
        bucket_key = profile.key
        key = (plan.cache_key, bucket_key, algorithm)
        with self._lock:
            bucket = self._buckets.get(bucket_key)
            cached = bucket.get(key) if bucket is not None else None
            if cached is not None:
                self._order.move_to_end(key)
                self.stats.hit()
                return cached
            self.stats.miss()
            physical = self._select(plan, profile, algorithm)
            while len(self._order) >= self.memo_capacity:
                self._evict_one()
            self._buckets.setdefault(bucket_key, {})[key] = physical
            self._order[key] = bucket_key
            return physical

    def _evict_one(self) -> None:
        """Evict the globally-LRU entry of a largest profile bucket
        (caller holds the lock). Scanning the recency order from oldest
        and taking the first entry whose bucket is maximal makes the
        choice deterministic and reduces to plain LRU on all-tied
        buckets."""
        largest = max(len(bucket) for bucket in self._buckets.values())
        victim = next(
            key
            for key, bucket_key in self._order.items()
            if len(self._buckets[bucket_key]) == largest
        )
        bucket_key = self._order.pop(victim)
        bucket = self._buckets[bucket_key]
        del bucket[victim]
        if not bucket:
            del self._buckets[bucket_key]
        self.stats.eviction()

    def _select(
        self, plan: LogicalPlan, profile: DocumentProfile, algorithm: str
    ) -> PhysicalPlan:
        if algorithm != "auto":
            # Forced names go through the static resolver purely for its
            # validation (unknown names, fragment violations).
            resolved = resolve_algorithm(plan, algorithm)
            return PhysicalPlan(
                logical=plan,
                profile=profile,
                algorithm=resolved,
                requested=algorithm,
                rationale=f"algorithm forced to {resolved!r} by the caller",
            )
        candidates = ["mincontext", "optmincontext"]
        if plan.is_core_xpath:
            candidates.append("corexpath")
        estimates = tuple(
            (name, cost_units(plan, profile, name)) for name in candidates
        )
        scaled = self._apply_observed_rates(estimates)
        chosen = min(scaled, key=lambda pair: pair[1])[0]
        clamped = False
        traits = plan.traits
        reasons = [
            f"|dom|={profile.total_nodes}",
            f"|Q|={traits.ast_size}",
            f"fanout={profile.max_fanout}",
            f"bottomup-paths={plan.bottomup_path_count}",
            "positional="
            + (
                "sibling"
                if traits.positional_sibling
                else ("yes" if traits.uses_position else "no")
            ),
        ]
        selectivity = name_test_selectivity(plan, profile)
        if selectivity < 1.0:
            reasons.append(
                f"name-test selectivity={selectivity:.3g} "
                f"(fused kernels over {len(traits.name_test_tags)} "
                "indexed name tests)"
            )
        if profile.total_nodes > self.guarantee_nodes:
            # Past the guarantee threshold the constants stop being the
            # story: defer to the strongest fragment bound available.
            if plan.is_core_xpath and chosen != "corexpath":
                chosen, clamped = "corexpath", True
                reasons.append(
                    f"guarantee clamp: Core XPath + |dom| > {self.guarantee_nodes} "
                    "→ Theorem 13 linear time"
                )
            elif (
                not plan.is_core_xpath
                and plan.is_extended_wadler
                and chosen != "optmincontext"
            ):
                chosen, clamped = "optmincontext", True
                reasons.append(
                    f"guarantee clamp: Wadler fragment + |dom| > {self.guarantee_nodes} "
                    "→ Corollary 11 bounds"
                )
        if scaled is not estimates:
            reasons.append("estimates scaled by observed per-algorithm rates")
        return PhysicalPlan(
            logical=plan,
            profile=profile,
            algorithm=chosen,
            requested="auto",
            # Report the numbers the selection actually compared.
            estimates=scaled,
            clamped=clamped,
            rationale="; ".join(reasons),
        )

    def _apply_observed_rates(self, estimates: tuple) -> tuple:
        """Scale unit estimates by observed seconds-per-unit rates — but
        only when *every* candidate has enough observations; mixing a
        measured rate with a made-up default would systematically favor
        whichever algorithm happened to run first."""
        rates = {}
        for name, _ in estimates:
            if self.timings.observation_count(name) < self.MIN_OBSERVATIONS:
                return estimates
            rates[name] = self.timings.rate(name)
        return tuple((name, units * rates[name]) for name, units in estimates)

    # ------------------------------------------------------------------

    def observe(
        self,
        plan: LogicalPlan,
        profile: DocumentProfile,
        algorithm: str,
        seconds: float,
    ) -> None:
        """Feed one evaluation's wall time back into the timing model
        (called by :class:`~repro.service.service.DocumentSession` after
        every uncached evaluation)."""
        self.timings.observe(algorithm, cost_units(plan, profile, algorithm), seconds)
        stats.count(f"specialized_evaluations_{algorithm}")

    # ------------------------------------------------------------------

    def specialize_residual(
        self,
        plan: LogicalPlan,
        profile: DocumentProfile,
        covered: int,
        total: int,
    ) -> PhysicalPlan:
        """Price ``plan`` given an already-materialized step prefix.

        The batch-shared step DAG (:mod:`repro.service.batchplan`) calls
        this to pick the evaluator for a *residual* evaluation: the
        first ``covered`` of ``total`` main-path steps are done (a
        sorted pre array), only the remaining steps run. Candidates are
        the table evaluators — a residual plan is rooted at a
        ``ConstantNodeSet`` primary, which is outside Core XPath — with
        estimates scaled to the residual share of the work
        (:func:`residual_cost_units`), refined by observed rates, and
        clamped to OPTMINCONTEXT's Corollary 11 guarantee past the
        guarantee threshold exactly like a full selection. Not memoized:
        ``covered`` varies per DAG node and the selection is a handful
        of float comparisons."""
        candidates = ("mincontext", "optmincontext")
        estimates = tuple(
            (name, residual_cost_units(plan, profile, name, covered, total))
            for name in candidates
        )
        scaled = self._apply_observed_rates(estimates)
        chosen = min(scaled, key=lambda pair: pair[1])[0]
        clamped = False
        reasons = [
            f"residual {max(0, total - covered)}/{total} step(s) past a "
            "materialized prefix",
            f"|dom|={profile.total_nodes}",
        ]
        if profile.total_nodes > self.guarantee_nodes and chosen != "optmincontext":
            chosen, clamped = "optmincontext", True
            reasons.append(
                f"guarantee clamp: |dom| > {self.guarantee_nodes} "
                "→ Corollary 11 bounds"
            )
        if scaled is not estimates:
            reasons.append("estimates scaled by observed per-algorithm rates")
        return PhysicalPlan(
            logical=plan,
            profile=profile,
            algorithm=chosen,
            requested="auto",
            estimates=scaled,
            clamped=clamped,
            rationale="; ".join(reasons),
        )

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop memoized specializations (statistics are retained)."""
        with self._lock:
            self._order.clear()
            self._buckets.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)
