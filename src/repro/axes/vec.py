"""Tier 2 — block-vectorized column programs over the flat NodeIndex.

A Core XPath sweep (Definition 12 / Theorem 13) is a chain of whole-set
steps ``X_{i+1} = χ(X_i) ∩ T(t_i) ∩ pred-sets``. The scalar kernels of
:mod:`repro.axes.axes` already compute each step output-sensitively, but
they iterate the context block one pre at a time in Python — per-element
interpreter dispatch on exactly the loop the paper says should be a bulk
pass. This module removes that dispatch: a sweep's step chain is
compiled once into a small linear IR (a :class:`VectorProgram` of
:class:`CompiledStep` records) and executed batch-at-a-time, each step a
handful of whole-column operations — partition loads, interval joins
(bisects over maximal subtree intervals), parent-pointer gathers,
contiguous child-span / attribute-run gathers, sorted-merge
union/intersect, name-test partition intersects — with no per-node
Python dispatch in the loop body.

Two interchangeable executors implement the primitives:

* the **stdlib backend** (this module): C-speed building blocks only —
  ``array``/``memoryview`` slice gathers, ``bisect`` over whole blocks,
  bulk ``set`` algebra, one ``sort`` per gather that needs it;
* the **numpy backend** (:mod:`repro.axes.vec_np`): the same primitives
  over ``np.frombuffer`` zero-copy views of the packed columns
  (``searchsorted`` interval joins, boolean-mask pointer joins).
  Auto-detected, import-guarded, never a hard dependency, and
  byte-identical — the executor's control flow, counters, and results
  do not depend on which backend runs.

Dispatch: :func:`repro.axes.axes.set_kernel_mode` gains a ``vector``
mode that forces programs and their vector primitives; in ``auto`` a
sweep routes through a program when the document is at least
:data:`VECTOR_MIN_BLOCK` nodes, and each op runs vectorized only while
its block is that wide (narrow blocks delegate per-op to the tier-1
scalar kernels, whose ``fused_hits``/``fallback_scans`` accounting then
applies verbatim). Axes with no columnar form (the sibling axes, ``id``)
always delegate. Every program run ticks ``vector_program_runs`` and
every vectorized primitive ticks ``vector_ops`` on
:data:`repro.stats.axis_kernel_stats` — together with the scalar
counters this partitions a program's step work exactly.

The fallback guarantee is inherited, not re-proved: every vector
primitive computes the same set as a forced tier-1 kernel (most *are*
the forced kernels, applied to whole blocks), and programs only replace
the per-step loop of :mod:`repro.core.corexpath`, whose worst-case
Theorem-13 bound is preserved by the tier-0/1 dispatch underneath.
"""

from __future__ import annotations

import contextlib
import os

from repro import stats
from repro.axes.axes import (
    AXIS_PRINCIPAL_ATTRIBUTE,
    INTERVAL_AXES,
    INVERSE_INTERVAL_AXES,
    _interval_axis_pres,
    _inverse_interval_pres,
    _inverse_pointer_pres,
    axis_test_pres,
    inverse_axis_test_pres,
    kernel_mode,
)
from repro.xml.index import merge_intersection, node_index

#: Narrowest block (and smallest document) worth a vectorized op: below
#: this, program/array setup costs more than the scalar loop it saves
#: (measured in benchmarks/bench_vector.py; see EXP-VEC).
VECTOR_MIN_BLOCK = 16

#: Forward axes with a columnar form (interval joins, pointer/child/
#: attribute-run gathers, frontier ancestor walks). Siblings and ``id``
#: delegate to the scalar kernels per-op.
FORWARD_VECTOR_AXES = (
    frozenset({"self", "child", "parent", "attribute", "ancestor", "ancestor-or-self"})
    | INTERVAL_AXES
)

#: Inverse axes with a columnar form (range emits, pointer gathers,
#: frontier walks). Sibling inverses and ``id`` delegate.
INVERSE_VECTOR_AXES = (
    frozenset({"self", "child", "parent", "attribute", "descendant", "descendant-or-self"})
    | INVERSE_INTERVAL_AXES
)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

#: ``auto`` — numpy when importable, stdlib otherwise (the default);
#: ``stdlib`` / ``numpy`` force one executor (``numpy`` raises when the
#: module is not importable). Results are byte-identical regardless.
VECTOR_BACKENDS = ("auto", "stdlib", "numpy")


class _StdlibBackend:
    """Column primitives from the standard library alone.

    Each method takes a sorted duplicate-free pre block and returns a
    sorted duplicate-free pre array — the same contract as the tier-1
    pre-plane kernels (most primitives *are* those kernels, forced, so
    identity is by construction rather than by reimplementation).
    """

    name = "stdlib"

    def forward_block(self, document, index, axis, block, test):
        """``χ(block) ∩ T(test)`` for a forward vector axis."""
        if axis in INTERVAL_AXES:
            if not isinstance(block, list):
                block = list(block)
            out = _interval_axis_pres(document, axis, block, test, True)
            if out is not None:
                return out
            return axis_test_pres(document, axis, block, test)
        if axis == "self":
            return self.filter_block(index, block, test, False)
        if axis == "parent":
            parent_pre = index.parent_pre
            candidates = sorted({parent_pre[p] for p in block if p != 0})
            return self.filter_block(index, candidates, test, False)
        if axis == "child":
            partition = index.filter_partition(test, attribute_principal=False)
            target = index.non_attributes if partition is None else partition
            if len(target) <= 8 * len(block):
                # Partition-side semi-join: one pass over the test
                # partition keeping members whose parent lands in the
                # block — already sorted, no gather, no merge.
                parent_pre = index.parent_pre
                members = set(block)
                return [p for p in target if parent_pre[p] in members]
            offsets, children = index.child_table()
            spans = memoryview(children)
            out: list[int] = []
            extend = out.extend
            for p in block:
                lo, hi = offsets[p], offsets[p + 1]
                if lo < hi:
                    extend(spans[lo:hi])
            out.sort()  # spans of nested origins interleave in pre order
            if partition is None:
                return out
            return _intersect_sorted(out, partition)
        if axis == "attribute":
            counts = index.attribute_counts()
            out = []
            extend = out.extend
            for p in block:
                n = counts[p]
                if n:
                    extend(range(p + 1, p + 1 + n))
            # Runs across an ascending block are disjoint ascending (a
            # block member inside another's run is an attribute, whose
            # own run is empty) — no sort needed.
            return self.filter_block(index, out, test, True)
        # ancestor / ancestor-or-self: level-synchronous parent-column
        # walk — the whole frontier hops one generation per iteration,
        # deduplicated before each hop.
        seen = _frontier_ancestors(index, block)
        if axis == "ancestor-or-self":
            seen.update(block)
        return self.filter_block(index, sorted(seen), test, False)

    def inverse_block(self, document, index, axis, block):
        """``χ⁻¹(block)`` for an inverse vector axis."""
        if not isinstance(block, list):
            block = list(block)
        if axis in INVERSE_INTERVAL_AXES:
            out = _inverse_interval_pres(document, axis, block, True)
        else:
            out = _inverse_pointer_pres(document, axis, block)
        return out if out is not None else []

    def filter_block(self, index, block, test, attribute_principal):
        """``block ∩ T(test)`` via one partition intersect (``None``
        partition means ``node()`` — matches everything)."""
        partition = index.filter_partition(
            test, attribute_principal=attribute_principal
        )
        if partition is None:
            return block if isinstance(block, list) else list(block)
        return _intersect_sorted(block, partition)

    def intersect(self, a, b):
        """Sorted-set intersection of two sorted duplicate-free pre
        arrays (the predicate-merge primitive)."""
        return _intersect_sorted(a, b)


def _intersect_sorted(a, b):
    """``merge_intersection`` semantics at block speed: galloping merge
    when one side is much smaller (bisects beat any full pass), bulk
    C-level set intersection when the sides are comparable (the regime
    where the Python merge loop pays per-element interpreter cost)."""
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return []
    if min(la, lb) * 16 < max(la, lb):
        return merge_intersection(a, b)
    return sorted(set(a).intersection(b))


def _frontier_ancestors(index, block) -> set[int]:
    """All proper ancestors of the block, by level-synchronous walk."""
    parent_pre = index.parent_pre
    frontier = {parent_pre[p] for p in block}
    frontier.discard(-1)
    seen: set[int] = set()
    while frontier:
        seen |= frontier
        frontier = {parent_pre[a] for a in frontier}
        frontier.difference_update(seen)
        frontier.discard(-1)
    return seen


_STDLIB = _StdlibBackend()
_numpy_backend = None
_numpy_checked = False


def _load_numpy_backend():
    global _numpy_backend, _numpy_checked
    if not _numpy_checked:
        try:
            from repro.axes import vec_np

            _numpy_backend = vec_np.make_backend(_STDLIB)
        except Exception:  # pragma: no cover - import breakage only
            _numpy_backend = None
        _numpy_checked = True
    return _numpy_backend


def numpy_available() -> bool:
    """Whether the numpy backend can run in this process."""
    return _load_numpy_backend() is not None


_backend_mode = (
    os.environ.get("REPRO_VECTOR_BACKEND", "auto")
    if os.environ.get("REPRO_VECTOR_BACKEND", "auto") in VECTOR_BACKENDS
    else "auto"
)


def vector_backend() -> str:
    """The selected backend mode (see :data:`VECTOR_BACKENDS`)."""
    return _backend_mode


def set_vector_backend(name: str) -> str:
    """Select the vector executor process-wide; returns the previous
    selection. ``numpy`` raises :class:`RuntimeError` when numpy is not
    importable (``auto`` silently uses stdlib then)."""
    global _backend_mode
    if name not in VECTOR_BACKENDS:
        raise ValueError(
            f"unknown vector backend: {name!r} (pick from {VECTOR_BACKENDS})"
        )
    if name == "numpy" and not numpy_available():
        raise RuntimeError("numpy backend requested but numpy is not importable")
    previous = _backend_mode
    _backend_mode = name
    return previous


@contextlib.contextmanager
def vector_backend_forced(name: str):
    """Context-manager form of :func:`set_vector_backend`."""
    previous = set_vector_backend(name)
    try:
        yield
    finally:
        set_vector_backend(previous)


def active_backend():
    """The executor the next vectorized op will run on."""
    if _backend_mode == "stdlib":
        return _STDLIB
    backend = _load_numpy_backend()
    if _backend_mode == "numpy" and backend is None:  # pragma: no cover
        raise RuntimeError("numpy backend selected but numpy is not importable")
    return backend if backend is not None else _STDLIB


def active_backend_name() -> str:
    """``"stdlib"`` or ``"numpy"`` — the resolved executor name."""
    return active_backend().name


# ----------------------------------------------------------------------
# Program IR
# ----------------------------------------------------------------------


class CompiledStep:
    """One sweep step, dispatch resolved at compile time.

    ``vector`` records whether the axis has a columnar form in this
    direction; predicates stay as expressions — they recurse into
    arbitrary sub-sweeps, so the executor evaluates them through a
    callback and intersects the resulting sorted pre arrays.
    """

    __slots__ = ("axis", "test", "predicates", "vector")

    def __init__(self, axis, test, predicates, vector):
        self.axis = axis
        self.test = test
        self.predicates = predicates
        self.vector = vector

    def __repr__(self):  # pragma: no cover - debugging aid
        tier = "vec" if self.vector else "scalar"
        return f"<{tier} {self.axis}::{self.test!r} +{len(self.predicates)}pred>"


class VectorProgram:
    """A compiled sweep: direction plus the resolved step records (in
    execution order — backward programs store the steps reversed)."""

    __slots__ = ("direction", "steps")

    def __init__(self, direction, steps):
        self.direction = direction
        self.steps = steps

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<VectorProgram {self.direction} {list(self.steps)!r}>"


def compile_forward_steps(steps) -> VectorProgram:
    """Compile a main-path step chain into a forward program."""
    return VectorProgram(
        "forward",
        tuple(
            CompiledStep(
                step.axis,
                step.node_test,
                tuple(step.predicates),
                step.axis in FORWARD_VECTOR_AXES,
            )
            for step in steps
        ),
    )


def compile_backward_steps(steps) -> VectorProgram:
    """Compile a predicate path into a backward (χ⁻¹) program; steps are
    stored reversed, the order the propagation executes them."""
    return VectorProgram(
        "backward",
        tuple(
            CompiledStep(
                step.axis,
                step.node_test,
                tuple(step.predicates),
                step.axis in INVERSE_VECTOR_AXES,
            )
            for step in reversed(steps)
        ),
    )


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


def sweep_engaged(document) -> bool:
    """Whether Core sweeps over this document route through programs:
    always in ``vector`` mode, in ``auto`` once the document can yield
    blocks wide enough to amortize program setup, never otherwise."""
    mode = kernel_mode()
    if mode == "vector":
        return True
    return mode == "auto" and len(document.nodes) >= VECTOR_MIN_BLOCK


def run_program(document, program, block, predicate_pres, on_step=None):
    """Execute a compiled program over a sorted pre block.

    ``predicate_pres(expr)`` must return the sorted pre array where the
    predicate holds (the evaluator's recursive entry point — an inner
    sweep may itself run a program). ``on_step`` is called once per step
    executed, mirroring the scalar sweeps' per-step accounting exactly:
    a forward sweep runs every step (even on an empty block), a backward
    sweep counts the step *then* stops on an empty frontier.

    Counters: one ``vector_program_runs`` tick per call; one
    ``vector_ops`` tick per primitive executed on the vector backend
    (the step op, and in backward steps the name-test filter). An op
    delegated to a scalar kernel — narrow block in ``auto``, or an axis
    with no columnar form — ticks ``fused_hits``/``fallback_scans``
    through that kernel's own dispatch instead, so the two counter
    families partition a program's step work exactly, independent of
    backend.
    """
    kernel_stats = stats.axis_kernel_stats
    kernel_stats.vector_run()
    forced = kernel_mode() == "vector"
    index = node_index(document)
    backend = active_backend()
    current = block
    if program.direction == "forward":
        for step in program.steps:
            if on_step is not None:
                on_step()
            if step.vector and (forced or len(current) >= VECTOR_MIN_BLOCK):
                kernel_stats.vector_op()
                current = backend.forward_block(
                    document, index, step.axis, current, step.test
                )
            else:
                if not isinstance(current, list):
                    current = list(current)
                current = axis_test_pres(document, step.axis, current, step.test)
            for predicate in step.predicates:
                if not current:
                    break
                current = backend.intersect(current, predicate_pres(predicate))
        return current if isinstance(current, list) else list(current)
    for step in program.steps:
        if on_step is not None:
            on_step()
        if not current:
            return []
        if forced or len(current) >= VECTOR_MIN_BLOCK:
            kernel_stats.vector_op()
            tested = backend.filter_block(
                index, current, step.test, step.axis in AXIS_PRINCIPAL_ATTRIBUTE
            )
        else:
            tested = _STDLIB.filter_block(
                index, current, step.test, step.axis in AXIS_PRINCIPAL_ATTRIBUTE
            )
        for predicate in step.predicates:
            tested = backend.intersect(tested, predicate_pres(predicate))
        if step.vector and (forced or len(tested) >= VECTOR_MIN_BLOCK):
            kernel_stats.vector_op()
            current = backend.inverse_block(document, index, step.axis, tested)
        else:
            if not isinstance(tested, list):
                tested = list(tested)
            current = inverse_axis_test_pres(document, step.axis, tested)
    return current if isinstance(current, list) else list(current)


__all__ = [
    "FORWARD_VECTOR_AXES",
    "INVERSE_VECTOR_AXES",
    "VECTOR_BACKENDS",
    "VECTOR_MIN_BLOCK",
    "CompiledStep",
    "VectorProgram",
    "active_backend",
    "active_backend_name",
    "compile_backward_steps",
    "compile_forward_steps",
    "numpy_available",
    "run_program",
    "set_vector_backend",
    "sweep_engaged",
    "vector_backend",
    "vector_backend_forced",
]
