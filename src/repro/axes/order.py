"""Document order utilities: ``<doc``, ``<doc,χ``, and ``idx_χ``.

The paper (Section 2.1) defines ``<doc,χ`` as standard document order for
the forward axes (self, child, descendant, descendant-or-self,
following-sibling, following) and reverse document order for the others,
and ``idx_χ(x, S)`` as the 1-based index of ``x`` in ``S`` w.r.t.
``<doc,χ`` — this is what gives ``position()`` its meaning per axis.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.xml.document import Node

#: Axes whose proximity order follows document order. The paper lists the
#: six tree axes; we add ``attribute`` and the ``id`` pseudo-axis (both
#: enumerate targets in document order).
FORWARD_AXES = frozenset(
    {
        "self",
        "child",
        "descendant",
        "descendant-or-self",
        "following-sibling",
        "following",
        "attribute",
        "id",
    }
)

#: Axes whose proximity order is reverse document order.
REVERSE_AXES = frozenset(
    {
        "parent",
        "ancestor",
        "ancestor-or-self",
        "preceding",
        "preceding-sibling",
    }
)


def is_forward_axis(axis: str) -> bool:
    """True if ``<doc,χ`` for this axis is standard document order."""
    if axis in FORWARD_AXES:
        return True
    if axis in REVERSE_AXES:
        return False
    raise ValueError(f"unknown axis: {axis}")


def axis_order_key(axis: str):
    """Sort key realizing ``<doc,χ``."""
    if is_forward_axis(axis):
        return lambda node: node.pre
    return lambda node: -node.pre


def sort_in_axis_order(nodes: Iterable[Node], axis: str) -> list[Node]:
    """Sort nodes by ``<doc,χ`` (proximity order for the axis)."""
    return sorted(nodes, key=axis_order_key(axis))


def index_in_axis_order(node: Node, nodes: Sequence[Node] | Iterable[Node], axis: str) -> int:
    """The paper's ``idx_χ(x, S)``: 1-based index of ``x`` in ``S``.

    Raises ``ValueError`` if ``node`` is not in ``nodes``.
    """
    ordered = sort_in_axis_order(nodes, axis)
    for position, candidate in enumerate(ordered, start=1):
        if candidate is node:
            return position
    raise ValueError("node is not a member of the given set")
