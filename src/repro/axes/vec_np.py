"""Optional numpy executor for the vector column programs.

Import-guarded: this module always imports cleanly; :func:`make_backend`
returns ``None`` when numpy is absent and :mod:`repro.axes.vec` runs its
stdlib executor instead. Nothing elsewhere may import numpy directly.

The packed NodeIndex columns (``array('q')`` behind memoryviews) are
adopted zero-copy via ``np.frombuffer`` and cached per document in a
``WeakKeyDictionary`` (the index itself has ``__slots__`` and no
``__weakref__``; the document is the cache key everywhere else too).
Partition views are cached by identity — except empty partitions, which
``by_tag.get(name, [])`` fabricates fresh per call, so their ``id`` is
reusable and must never be a cache key.

Byte identity with the stdlib executor is a hard contract, enforced by
tests and the EXP-VEC gate: every op returns sorted duplicate-free
Python ints (``.tolist()`` at the boundary), and the handful of corners
where numpy buys nothing — ancestor frontier walks, suffix/prefix
slices, the ``descendant-or-self::node()`` attribute-selves union —
delegate to the stdlib primitives rather than re-deriving them.
"""

from __future__ import annotations

import weakref

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np
except Exception:  # pragma: no cover
    np = None


def available() -> bool:
    """Whether numpy imported in this process."""
    return np is not None


def make_backend(stdlib):
    """A fresh numpy executor delegating odd corners to ``stdlib``, or
    ``None`` when numpy is not importable."""
    if np is None:
        return None
    return _NumpyBackend(stdlib)


class _NumpyBackend:
    name = "numpy"

    def __init__(self, stdlib):
        self._stdlib = stdlib
        self._cache = weakref.WeakKeyDictionary()

    # -- column adoption ----------------------------------------------

    def _columns(self, document, index):
        cols = self._cache.get(document)
        if cols is None:
            cols = {
                "size": _as_array(index.size),
                "parent": _as_array(index.parent_pre),
                "parts": {},
                "child": None,
            }
            self._cache[document] = cols
        return cols

    def _partition(self, cols, partition):
        """Int64 view of a sorted pre partition, cached by identity.

        Never caches an empty partition: missing-name lookups return a
        fresh empty list each call, so its ``id`` outlives nothing.
        The cache entry keeps a strong reference to the partition object
        itself — identity keys stay valid only while the object lives.
        """
        if len(partition) == 0:
            return _EMPTY
        parts = cols["parts"]
        entry = parts.get(id(partition))
        if entry is None:
            entry = (partition, _as_array(partition))
            parts[id(partition)] = entry
        return entry[1]

    def _child_columns(self, cols, index):
        cached = cols["child"]
        if cached is None:
            offsets, children = index.child_table()
            cached = cols["child"] = (
                np.frombuffer(offsets, dtype=np.int64),
                np.frombuffer(children, dtype=np.int64)
                if len(children)
                else _EMPTY,
                np.frombuffer(index.attribute_counts(), dtype=np.int64),
            )
        return cached

    # -- forward ------------------------------------------------------

    def forward_block(self, document, index, axis, block, test):
        if not len(block):
            return []
        if axis in ("descendant", "descendant-or-self"):
            include_self = axis == "descendant-or-self"
            if include_self and test.kind == "node":
                # or-self::node() must add attribute context nodes the
                # partition join can't see — take the stdlib form.
                return self._stdlib.forward_block(document, index, axis, block, test)
            partition = index.partition(test, axis)
            if partition is None:  # pragma: no cover - no such test shape
                return self._stdlib.forward_block(document, index, axis, block, test)
            cols = self._columns(document, index)
            parr = self._partition(cols, partition)
            if not len(parr):
                return []
            barr = np.asarray(block, dtype=np.int64)
            starts, stops = _maximal_intervals(cols["size"], barr, include_self)
            lo = np.searchsorted(parr, starts, side="left")
            hi = np.searchsorted(parr, stops, side="left")
            return _gather_spans(parr, lo, hi).tolist()
        if axis in ("following", "preceding"):
            # One bisect plus one slice either way — numpy buys nothing.
            return self._stdlib.forward_block(document, index, axis, block, test)
        if axis == "child":
            partition = index.filter_partition(test, attribute_principal=False)
            if partition is None:  # node() — every non-attribute child
                partition = index.non_attributes
            cols = self._columns(document, index)
            parr = self._partition(cols, partition)
            if not len(parr):
                return []
            barr = np.asarray(block, dtype=np.int64)
            # Partition-side semi-join: a partition member is a child of
            # the block iff its parent pre lands in the block. Output
            # order is the partition's — already sorted.
            mask = np.isin(cols["parent"][parr], barr)
            return parr[mask].tolist()
        if axis == "attribute":
            kind = test.kind
            if kind == "name":
                partition = index.by_attribute.get(test.name, [])
            elif kind in ("wildcard", "node"):
                partition = index.attributes
            else:  # text()/comment()/pi() never match an attribute
                return []
            cols = self._columns(document, index)
            parr = self._partition(cols, partition)
            if not len(parr):
                return []
            barr = np.asarray(block, dtype=np.int64)
            mask = np.isin(cols["parent"][parr], barr)
            return parr[mask].tolist()
        if axis == "parent":
            cols = self._columns(document, index)
            barr = np.asarray(block, dtype=np.int64)
            parents = cols["parent"][barr]
            candidates = np.unique(parents[parents >= 0])
            partition = index.filter_partition(test, attribute_principal=False)
            if partition is None:
                return candidates.tolist()
            parr = self._partition(cols, partition)
            if not len(parr) or not len(candidates):
                return []
            return candidates[np.isin(candidates, parr)].tolist()
        if axis == "self":
            partition = index.filter_partition(test, attribute_principal=False)
            if partition is None:
                return block if isinstance(block, list) else list(block)
            cols = self._columns(document, index)
            parr = self._partition(cols, partition)
            if not len(parr):
                return []
            barr = np.asarray(block, dtype=np.int64)
            return barr[np.isin(barr, parr)].tolist()
        # ancestor / ancestor-or-self: sparse set frontier walk — the
        # stdlib form is already level-synchronous and output-bounded.
        return self._stdlib.forward_block(document, index, axis, block, test)

    # -- backward -----------------------------------------------------

    def inverse_block(self, document, index, axis, block):
        if not len(block):
            return []
        if axis == "self":
            return block if isinstance(block, list) else list(block)
        if axis in ("ancestor", "ancestor-or-self"):
            cols = self._columns(document, index)
            barr = np.asarray(block, dtype=np.int64)
            starts, stops = _maximal_intervals(
                cols["size"], barr, axis == "ancestor-or-self"
            )
            return _emit_ranges(starts, stops).tolist()
        if axis == "following":
            cols = self._columns(document, index)
            barr = np.asarray(block, dtype=np.int64)
            attrs = self._partition(cols, index.attributes)
            non_attr = barr[~np.isin(barr, attrs)] if len(attrs) else barr
            if not len(non_attr):
                return []
            cutoff = int(non_attr[-1])
            out = np.arange(cutoff, dtype=np.int64)
            excluded = index.ancestors_of(cutoff)
            if excluded:
                out = out[~np.isin(out, np.asarray(excluded, dtype=np.int64))]
            return out.tolist()
        if axis == "preceding":
            # One suffix range — nothing to vectorize.
            return self._stdlib.inverse_block(document, index, axis, block)
        if axis == "child":
            cols = self._columns(document, index)
            barr = np.asarray(block, dtype=np.int64)
            attrs = self._partition(cols, index.attributes)
            if len(attrs):
                barr = barr[~np.isin(barr, attrs)]
            barr = barr[barr != 0]
            if not len(barr):
                return []
            return np.unique(cols["parent"][barr]).tolist()
        if axis == "attribute":
            cols = self._columns(document, index)
            barr = np.asarray(block, dtype=np.int64)
            attrs = self._partition(cols, index.attributes)
            if not len(attrs):
                return []
            barr = barr[np.isin(barr, attrs)]
            if not len(barr):
                return []
            return np.unique(cols["parent"][barr]).tolist()
        if axis == "parent":
            # χ⁻¹(parent) = children plus attributes of the block: the
            # child-table spans and the contiguous attribute runs.
            cols = self._columns(document, index)
            offsets, children, attr_counts = self._child_columns(cols, index)
            barr = np.asarray(block, dtype=np.int64)
            kids = _gather_spans(children, offsets[barr], offsets[barr + 1])
            runs = _emit_ranges(barr + 1, barr + 1 + attr_counts[barr])
            if not len(runs):
                out = kids
            elif not len(kids):
                out = runs
            else:
                out = np.sort(np.concatenate((kids, runs)))
            return out.tolist()
        # descendant / descendant-or-self: frontier walk — stdlib form.
        return self._stdlib.inverse_block(document, index, axis, block)

    # -- filter -------------------------------------------------------

    def filter_block(self, index, block, test, attribute_principal):
        partition = index.filter_partition(
            test, attribute_principal=attribute_principal
        )
        if partition is None:
            return block if isinstance(block, list) else list(block)
        if not len(partition) or not len(block):
            return []
        cols = self._cache.get(index.document)
        if cols is None:
            cols = self._columns(index.document, index)
        parr = self._partition(cols, partition)
        barr = np.asarray(block, dtype=np.int64)
        return barr[np.isin(barr, parr)].tolist()

    def intersect(self, a, b):
        if not len(a) or not len(b):
            return []
        return np.intersect1d(
            np.asarray(a, dtype=np.int64),
            np.asarray(b, dtype=np.int64),
            assume_unique=True,
        ).tolist()


_EMPTY = None if np is None else np.empty(0, dtype=np.int64)


def _as_array(column):
    """Zero-copy int64 view of a packed column (copying only for the
    unpacked boxed-list reference form)."""
    if isinstance(column, memoryview):
        return np.frombuffer(column, dtype=np.int64)
    return np.asarray(column, dtype=np.int64)


def _maximal_intervals(size, barr, include_self):
    """(starts, stops) of the maximal subtree intervals of a sorted
    block — members nested in an earlier member's interval are dropped,
    exactly like the scalar kernels' ``p < max_end`` skip. Tree
    intervals are nested or disjoint, so a running max suffices."""
    ends = barr + size[barr]
    keep = np.ones(len(barr), dtype=bool)
    if len(barr) > 1:
        keep[1:] = barr[1:] >= np.maximum.accumulate(ends)[:-1]
    starts = barr[keep]
    stops = ends[keep]
    if not include_self:
        starts = starts + 1
    return starts, stops


def _gather_spans(arr, lo, hi):
    """``concatenate(arr[lo[i]:hi[i]] for i)`` without a Python loop —
    the multi-slice gather at the heart of the interval and child-span
    joins. Disjoint ascending spans yield sorted output."""
    lengths = hi - lo
    positive = lengths > 0
    if not positive.any():
        return _EMPTY
    lo = lo[positive]
    lengths = lengths[positive]
    ends = np.cumsum(lengths)
    index = np.arange(ends[-1], dtype=np.int64)
    shifts = np.repeat(lo - (ends - lengths), lengths)
    return arr[index + shifts]


def _emit_ranges(starts, stops):
    """``concatenate(range(starts[i], stops[i]) for i)`` — the range
    emitter behind ancestor interiors and attribute runs."""
    lengths = stops - starts
    positive = lengths > 0
    if not positive.any():
        return _EMPTY
    starts = starts[positive]
    lengths = lengths[positive]
    ends = np.cumsum(lengths)
    index = np.arange(ends[-1], dtype=np.int64)
    shifts = np.repeat(starts - (ends - lengths), lengths)
    return index + shifts
