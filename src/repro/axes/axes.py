"""Axis functions ``χ`` and inverse axis functions ``χ⁻¹`` (Definition 1).

Since the block-vectorized rewrite the dispatch is **three-tier** — one
semantics, three execution regimes, every tier byte-identical:

* **Tier 0 — Definition-1 scans** (:func:`axis_set` /
  :func:`inverse_axis_set`, plus :func:`axis_nodes` for proximity-order
  per-node enumeration): the set functions ``χ(X)`` / ``χ⁻¹(Y)`` of
  Definition 1, each computed in ``O(|D|)`` regardless of ``|X|`` (the
  bound the paper's complexity theorems depend on; see the remark below
  Definition 1 citing [11]). These are the *guaranteed* implementations
  and the worst-case fallback of everything below; they never consult an
  index.
* **Tier 1 — indexed scalar kernels** (:func:`fused_axis_set` /
  :func:`fused_inverse_axis_set` and their sorted-pre-array forms
  :func:`axis_test_pres` / :func:`inverse_axis_test_pres`): fused
  axis+name-test kernels over the per-document
  :class:`repro.xml.index.NodeIndex`, *output-sensitive* but iterating
  origins one pre at a time in Python. ``descendant::a`` is a
  binary-search range query over the sorted ``a`` partition
  (``O(|X|·log|D| + output)``), ``following``/``preceding`` are
  partition suffix/prefix slices, the pointer axes gather the
  parent-pre column, and the inverse interval axes emit pre-number
  ranges directly.
* **Tier 2 — vector column programs** (:mod:`repro.axes.vec`): whole
  Core XPath sweeps compiled to a linear IR of block-at-a-time column
  primitives (interval joins, pointer gathers, partition intersections)
  with zero per-node Python dispatch in the loop body — a stdlib
  backend always, a byte-identical numpy backend when importable. The
  Core evaluator routes sweeps here in ``vector`` mode, and in ``auto``
  whenever a block is wide enough to amortize program setup; narrow
  blocks and axes without columnar form fall back per-op to tier 1.

**Where the fallback guarantee lives:** every fused entry point runs a
dispatch — when the kernel's predicted cost (context size × log |D| +
predicted output, computed exactly from partition bisects) exceeds the
``O(|D|)`` scan bound, or when :func:`set_kernel_mode` forces ``scan``,
the call falls through to :func:`axis_set`/:func:`inverse_axis_set`
verbatim; a vector program's primitives are forced-kernel forms of the
same tier-1 code paths, so the guarantee covers tier 2 too. The fast
paths can therefore only improve constants and output-sensitivity; the
paper's worst-case asymptotics (Theorems 7, 10, 13) are preserved
unconditionally, mirroring the specializer's guarantee clamps. Every
outcome is counted exactly on :data:`repro.stats.axis_kernel_stats`
(``fused_hits`` / ``fallback_scans`` per scalar dispatch,
``vector_program_runs`` / ``vector_ops`` per program and vectorized
op).

Linear-time techniques of the Definition-1 scans, keyed to the pre-order
numbering of :mod:`repro.xml.document`:

* ``descendant(X)`` — interval stabbing with a difference array over
  ``pre`` numbers (each ``x`` contributes the interval
  ``(pre(x), pre(x)+size(x))``), one prefix-sum pass.
* ``following(X)`` — the pre-order suffix starting at
  ``min_{x∈X}(pre(x)+size(x))``; ``preceding(X)`` — all nodes whose
  subtree ends at or before ``max_{x∈X} pre(x)``.
* sibling axes — group ``X`` by parent and take one suffix/prefix of each
  parent's child list.

Attribute nodes follow the W3C data model: they are reached only via the
``attribute`` axis, have no siblings, and are excluded from
``descendant``/``following``/``preceding`` results.

The ``id`` pseudo-axis of Section 4 of the paper (``x id→ y`` iff the id
of ``y`` occurs as a whitespace token in ``strval(x)``) is also provided,
with its inverse computed from the document's cached token index.
"""

from __future__ import annotations

import contextlib
from bisect import bisect_left
from typing import Iterable, Iterator

from repro import stats
from repro.axes.order import FORWARD_AXES, REVERSE_AXES, is_forward_axis
from repro.xml.document import Document, Node, NodeKind
from repro.xml.index import merge_intersection, merge_union, node_index
from repro.xpath.ast import NodeTest

#: Every axis this library supports. ``id`` is the pseudo-axis of
#: Section 4; the paper's eleven named axes plus ``attribute``.
ALL_AXES = frozenset(FORWARD_AXES | REVERSE_AXES)

#: Axes whose principal node type is attribute (name tests select
#: attribute nodes); all others select elements.
AXIS_PRINCIPAL_ATTRIBUTE = frozenset({"attribute"})

# ----------------------------------------------------------------------
# Per-node enumeration (proximity order)
# ----------------------------------------------------------------------


def axis_nodes(document: Document, axis: str, node: Node) -> Iterator[Node]:
    """Yield ``χ({node})`` in proximity order (``<doc,χ``)."""
    stats.count("axis_single_calls")
    if axis == "self":
        yield node
    elif axis == "child":
        yield from node.children
    elif axis == "parent":
        if node.parent is not None:
            yield node.parent
    elif axis == "descendant":
        yield from _descendants(node)
    elif axis == "descendant-or-self":
        yield node
        yield from _descendants(node)
    elif axis == "ancestor":
        yield from node.ancestors()
    elif axis == "ancestor-or-self":
        yield node
        yield from node.ancestors()
    elif axis == "following-sibling":
        if node.parent is not None and node.child_index is not None:
            yield from node.parent.children[node.child_index + 1 :]
    elif axis == "preceding-sibling":
        if node.parent is not None and node.child_index is not None:
            yield from reversed(node.parent.children[: node.child_index])
    elif axis == "following":
        start = node.pre + node.size
        for candidate in document.nodes[start:]:
            if not candidate.is_attribute:
                yield candidate
    elif axis == "preceding":
        limit = node.pre
        # Proximity order for preceding is reverse document order.
        for candidate in reversed(document.nodes[:limit]):
            if candidate.pre + candidate.size <= limit and not candidate.is_attribute:
                yield candidate
    elif axis == "attribute":
        yield from node.attributes
    elif axis == "id":
        yield from document.in_document_order(document.deref_ids(node.string_value))
    else:
        raise ValueError(f"unknown axis: {axis}")


def _descendants(node: Node) -> Iterator[Node]:
    for child in node.children:
        yield child
        yield from _descendants(child)


def axis_test_nodes(
    document: Document, axis: str, node: Node, test: NodeTest
) -> list[Node]:
    """``χ({node}) ∩ T(t)`` in proximity order (``<doc,χ``) — the fused
    per-node form of :func:`axis_nodes`.

    The per-context evaluators' positional loops rank candidates by
    proximity position, so their enumerations must stay in ``<doc,χ``
    order — which is exactly what the interval-axis partition kernels
    emit for free: ascending pre *is* proximity order for
    ``descendant``/``descendant-or-self``/``following`` (and its reverse
    for ``preceding``), so a singleton interval query plus the slice
    direction replaces a full-document walk with filtering. The same
    predicted-cost dispatch as :func:`axis_test_pres` applies (a
    rejected kernel falls back to the enumerate-then-filter scan; one
    ``fused_hits``/``fallback_scans`` tick per interval-axis dispatch in
    non-scan mode, none otherwise — scan mode and the non-interval axes
    never consult the index here, so they are not dispatches).
    """
    mode = _kernel_mode
    if mode != "scan" and axis in INTERVAL_AXES:
        out = _interval_axis_pres(document, axis, [node.pre], test, mode != "auto")
        if out is not None:
            stats.axis_kernel_stats.fused()
            nodes = document.nodes
            if axis == "preceding":
                return [nodes[p] for p in reversed(out)]
            return [nodes[p] for p in out]
        stats.axis_kernel_stats.fallback()
    return [
        candidate
        for candidate in axis_nodes(document, axis, node)
        if matches_node_test(candidate, test, axis)
    ]


# ----------------------------------------------------------------------
# Set functions (Definition 1), each O(|D|)
# ----------------------------------------------------------------------


def axis_set(document: Document, axis: str, node_set: Iterable[Node]) -> set[Node]:
    """The axis function ``χ(X) = {y | ∃x ∈ X : x χ y}``."""
    stats.count("axis_set_calls")
    X = node_set if isinstance(node_set, (set, frozenset, list, tuple)) else list(node_set)
    if axis == "self":
        return set(X)
    if axis == "child":
        result: set[Node] = set()
        for x in X:
            result.update(x.children)
        return result
    if axis == "parent":
        return {x.parent for x in X if x.parent is not None}
    if axis == "descendant":
        return _descendant_set(document, X, include_self=False)
    if axis == "descendant-or-self":
        result = _descendant_set(document, X, include_self=False)
        result.update(X)
        return result
    if axis == "ancestor":
        return _ancestor_set(X, include_self=False)
    if axis == "ancestor-or-self":
        result = _ancestor_set(X, include_self=False)
        result.update(X)
        return result
    if axis == "following":
        return _following_set(document, X)
    if axis == "preceding":
        return _preceding_set(document, X)
    if axis == "following-sibling":
        return _sibling_set(X, forward=True)
    if axis == "preceding-sibling":
        return _sibling_set(X, forward=False)
    if axis == "attribute":
        result = set()
        for x in X:
            result.update(x.attributes)
        return result
    if axis == "id":
        result = set()
        for x in X:
            result.update(document.deref_ids(x.string_value))
        return result
    raise ValueError(f"unknown axis: {axis}")


def inverse_axis_set(document: Document, axis: str, node_set: Iterable[Node]) -> set[Node]:
    """Definition 1's ``χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅}``, in ``O(|D|)``.

    For most tree axes this is the converse axis's set function
    (``child⁻¹ = parent`` etc.). Attribute nodes make four corners
    asymmetric — an attribute has ancestors/following/preceding but is
    nobody's descendant/following/preceding, and it has a parent without
    being a child — so those cases are computed directly from the
    definition rather than via the converse axis. ``id⁻¹(Y)`` uses the
    cached per-node string-value token index (the ``F[[Op]]⁻¹`` of
    Section 4, shown linear-time in [11]).
    """
    stats.count("axis_inverse_calls")
    Y = node_set if isinstance(node_set, (set, frozenset)) else set(node_set)
    if axis == "self":
        return set(Y)
    if axis == "child":
        # x has a child in Y — attribute members of Y are nobody's child.
        return {y.parent for y in Y if not y.is_attribute and y.parent is not None}
    if axis == "parent":
        # x's parent is in Y — children of Y plus attributes of Y.
        result = axis_set(document, "child", Y)
        result |= axis_set(document, "attribute", Y)
        return result
    if axis == "descendant":
        return _ancestor_set((y for y in Y if not y.is_attribute), include_self=False)
    if axis == "descendant-or-self":
        result = _ancestor_set((y for y in Y if not y.is_attribute), include_self=False)
        result.update(Y)
        return result
    if axis == "ancestor":
        # x has an ancestor in Y: everything strictly inside Y's subtree
        # intervals, attributes included (an attribute's ancestors are its
        # element's ancestor-or-self chain).
        return _interval_cover(document, Y, include_self=False, include_attributes=True)
    if axis == "ancestor-or-self":
        result = _interval_cover(document, Y, include_self=False, include_attributes=True)
        result.update(Y)
        return result
    if axis == "following":
        # following(x) ∩ Y ≠ ∅ ⟺ some non-attribute y ∈ Y starts at or
        # after x's subtree end. x itself may be any kind, attributes too.
        cutoff = None
        for y in Y:
            if not y.is_attribute and (cutoff is None or y.pre > cutoff):
                cutoff = y.pre
        if cutoff is None:
            return set()
        return {x for x in document.nodes if x.pre + x.size <= cutoff}
    if axis == "preceding":
        cutoff = None
        for y in Y:
            if not y.is_attribute:
                end = y.pre + y.size
                if cutoff is None or end < cutoff:
                    cutoff = end
        if cutoff is None:
            return set()
        return set(document.nodes[cutoff:])
    if axis == "following-sibling":
        return _sibling_set(Y, forward=False)
    if axis == "preceding-sibling":
        return _sibling_set(Y, forward=True)
    if axis == "attribute":
        return {y.parent for y in Y if y.is_attribute and y.parent is not None}
    if axis == "id":
        ids = {y.xml_id for y in Y}
        ids.discard(None)
        if not ids:
            return set()
        return {node for node, tokens in document.id_tokens() if not ids.isdisjoint(tokens)}
    raise ValueError(f"unknown axis: {axis}")


def _interval_cover(
    document: Document, X: Iterable[Node], include_self: bool, include_attributes: bool
) -> set[Node]:
    """Nodes covered by the subtree intervals of ``X`` (difference-array
    sweep like :func:`_descendant_set`, optionally keeping attributes)."""
    nodes = document.nodes
    total = len(nodes)
    delta = [0] * (total + 1)
    any_interval = False
    for x in X:
        lo = x.pre if include_self else x.pre + 1
        hi = x.pre + x.size
        if lo < hi:
            delta[lo] += 1
            delta[hi] -= 1
            any_interval = True
    if not any_interval:
        return set()
    result: set[Node] = set()
    coverage = 0
    for pre, node in enumerate(nodes):
        coverage += delta[pre]
        if coverage > 0 and (include_attributes or not node.is_attribute):
            result.add(node)
    return result


def _descendant_set(document: Document, X: Iterable[Node], include_self: bool) -> set[Node]:
    """Union of subtree intervals via a difference array: O(|D| + |X|)."""
    nodes = document.nodes
    total = len(nodes)
    delta = [0] * (total + 1)
    any_interval = False
    for x in X:
        lo = x.pre if include_self else x.pre + 1
        hi = x.pre + x.size
        if lo < hi:
            delta[lo] += 1
            delta[hi] -= 1
            any_interval = True
    if not any_interval:
        return set()
    result: set[Node] = set()
    coverage = 0
    for pre, node in enumerate(nodes):
        coverage += delta[pre]
        if coverage > 0 and not node.is_attribute:
            result.add(node)
    return result


def _ancestor_set(X: Iterable[Node], include_self: bool, keep=None) -> set[Node]:
    """Union of ancestor chains with sharing: O(|D|) total.

    ``keep`` (optional predicate) filters nodes as they are produced —
    the fused kernels pass the node test here so there is exactly one
    copy of the shared-visited chain walk; the Definition-1 scans pass
    nothing and keep everything.
    """
    visited: set[Node] = set()
    result: set[Node] = set()
    for x in X:
        if include_self and (keep is None or keep(x)):
            result.add(x)
        node = x.parent
        while node is not None and node not in visited:
            visited.add(node)
            if keep is None or keep(node):
                result.add(node)
            node = node.parent
    return result


def _following_set(document: Document, X: Iterable[Node]) -> set[Node]:
    cutoff = None
    for x in X:
        end = x.pre + x.size
        if cutoff is None or end < cutoff:
            cutoff = end
    if cutoff is None:
        return set()
    return {node for node in document.nodes[cutoff:] if not node.is_attribute}


def _preceding_set(document: Document, X: Iterable[Node]) -> set[Node]:
    cutoff = None
    for x in X:
        if cutoff is None or x.pre > cutoff:
            cutoff = x.pre
    if cutoff is None:
        return set()
    return {
        node
        for node in document.nodes[:cutoff]
        if node.pre + node.size <= cutoff and not node.is_attribute
    }


def _sibling_set(X: Iterable[Node], forward: bool, keep=None) -> set[Node]:
    """Group by parent, then one suffix (or prefix) per parent: O(|D|).

    ``keep`` as in :func:`_ancestor_set`: the single copy of the
    extreme-child-index selection serves the scans (``keep=None``) and
    the fused kernels (node-test predicate) alike.
    """
    extremes: dict[int, tuple[Node, int]] = {}
    for x in X:
        if x.parent is None or x.child_index is None:
            continue  # document node and attributes have no siblings
        key = id(x.parent)
        current = extremes.get(key)
        if current is None:
            extremes[key] = (x.parent, x.child_index)
        else:
            parent, index = current
            if (forward and x.child_index < index) or (not forward and x.child_index > index):
                extremes[key] = (parent, x.child_index)
    result: set[Node] = set()
    for parent, index in extremes.values():
        siblings = parent.children[index + 1 :] if forward else parent.children[:index]
        if keep is None:
            result.update(siblings)
        else:
            result.update(sibling for sibling in siblings if keep(sibling))
    return result


# ----------------------------------------------------------------------
# Node tests (the paper's ``T`` function, generalized to node kinds)
# ----------------------------------------------------------------------


def matches_node_test(node: Node, test: NodeTest, axis: str) -> bool:
    """Does ``node`` pass node test ``t`` on the given axis?

    Name tests and ``*`` select the axis's *principal node type*
    (attributes on the attribute axis, elements elsewhere) — this is how
    the paper's ``T(*) = dom`` specializes once non-element node kinds
    exist; on the paper's element-only examples the two coincide.
    """
    if test.kind == "node":
        return True
    if test.kind == "text":
        return node.kind is NodeKind.TEXT
    if test.kind == "comment":
        return node.kind is NodeKind.COMMENT
    if test.kind == "pi":
        if node.kind is not NodeKind.PROCESSING_INSTRUCTION:
            return False
        return test.name is None or node.name == test.name
    principal = (
        NodeKind.ATTRIBUTE if axis in AXIS_PRINCIPAL_ATTRIBUTE else NodeKind.ELEMENT
    )
    if node.kind is not principal:
        return False
    if test.kind == "wildcard":
        return True
    return node.name == test.name


# ----------------------------------------------------------------------
# Fused axis + name-test kernels (output-sensitive fast path)
# ----------------------------------------------------------------------

#: Axes whose fused forward kernels are NodeIndex partition queries
#: (binary-search ranges / suffix slices over sorted pre arrays).
INTERVAL_AXES = frozenset(
    {"descendant", "descendant-or-self", "following", "preceding"}
)

#: Axes whose fused *inverse* kernels emit pre-number ranges directly.
INVERSE_INTERVAL_AXES = frozenset(
    {"ancestor", "ancestor-or-self", "following", "preceding"}
)

#: Dispatch modes: ``auto`` (predicted-cost dispatch across all three
#: tiers — the default), ``indexed`` (always take the scalar index
#: kernels where one exists, never the vector programs), ``vector``
#: (route every Core sweep through the block-vectorized column programs
#: of :mod:`repro.axes.vec`, forcing the vector primitives regardless of
#: block width), ``scan`` (always run the Definition-1 scans — the A/B
#: baseline the EXP-AXIS/EXP-VEC value and speedup gates compare
#: against).
KERNEL_MODES = ("auto", "indexed", "vector", "scan")

_kernel_mode = "auto"


def kernel_mode() -> str:
    """The active dispatch mode (see :data:`KERNEL_MODES`)."""
    return _kernel_mode


def set_kernel_mode(mode: str) -> str:
    """Set the dispatch mode process-wide; returns the previous mode.

    A benchmarking/testing knob (not synchronized with in-flight
    evaluations): results are byte-identical in every mode, only the
    fused/fallback split changes.
    """
    global _kernel_mode
    if mode not in KERNEL_MODES:
        raise ValueError(f"unknown kernel mode: {mode!r} (pick from {KERNEL_MODES})")
    previous = _kernel_mode
    _kernel_mode = mode
    return previous


@contextlib.contextmanager
def kernel_mode_forced(mode: str):
    """Context manager form of :func:`set_kernel_mode`."""
    previous = set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)


def _scan_axis_set(document: Document, axis: str, X, test: NodeTest) -> set[Node]:
    """The guaranteed path: Definition-1 scan, then the node-test filter."""
    return {y for y in axis_set(document, axis, X) if matches_node_test(y, test, axis)}


def fused_axis_set(
    document: Document, axis: str, node_set: Iterable[Node], test: NodeTest
) -> set[Node]:
    """``χ(X) ∩ T(t)`` through the fused-kernel dispatch.

    Byte-identical to ``axis_set`` + ``matches_node_test`` in every mode;
    output-sensitive whenever the dispatch takes a kernel. Exactly one of
    ``fused_hits``/``fallback_scans`` is counted per call.
    """
    X = node_set if isinstance(node_set, (set, frozenset, list, tuple)) else list(node_set)
    mode = _kernel_mode
    if mode != "scan":
        if axis in INTERVAL_AXES:
            pres = sorted({x.pre for x in X})
            out = _interval_axis_pres(document, axis, pres, test, mode != "auto")
            if out is not None:
                stats.axis_kernel_stats.fused()
                nodes = document.nodes
                return {nodes[p] for p in out}
        else:
            stats.axis_kernel_stats.fused()
            return _enumerated_axis_set(document, axis, X, test)
    stats.axis_kernel_stats.fallback()
    return _scan_axis_set(document, axis, X, test)


def axis_test_pres(
    document: Document, axis: str, pres: list[int], test: NodeTest
) -> list[int]:
    """``χ(X) ∩ T(t)`` over sorted pre-order int arrays (document order
    in, document order out) — the form the sorted-array sweeps of
    :mod:`repro.core.corexpath` thread through whole queries.

    Interval axes ride :func:`_interval_axis_pres`; the pointer axes
    (self/child/parent/attribute) ride :func:`_pointer_axis_pres`, so
    every Core XPath step stays in the pre plane (on a lazy column
    document, no node is materialized). Sibling steps and ``id`` box
    their origins and run the fused enumerations as before."""
    mode = _kernel_mode
    if mode != "scan":
        if axis in INTERVAL_AXES:
            out = _interval_axis_pres(document, axis, pres, test, mode != "auto")
            if out is not None:
                stats.axis_kernel_stats.fused()
                return out
        else:
            out = _pointer_axis_pres(document, axis, pres, test)
            if out is not None:
                stats.axis_kernel_stats.fused()
                return out
    nodes = document.nodes
    X = [nodes[p] for p in pres]
    if mode != "scan" and axis not in INTERVAL_AXES:
        stats.axis_kernel_stats.fused()
        result = _enumerated_axis_set(document, axis, X, test)
    else:
        stats.axis_kernel_stats.fallback()
        result = _scan_axis_set(document, axis, X, test)
    return sorted(y.pre for y in result)


def fused_inverse_axis_set(
    document: Document, axis: str, node_set: Iterable[Node]
) -> set[Node]:
    """``χ⁻¹(Y)`` through the fused-kernel dispatch (kernels exist for
    the interval axes; everything else runs the Definition-1 form, whose
    implementations are already per-``Y`` enumerations)."""
    Y = node_set if isinstance(node_set, (set, frozenset, list, tuple)) else list(node_set)
    mode = _kernel_mode
    if mode != "scan" and axis in INVERSE_INTERVAL_AXES:
        pres = sorted({y.pre for y in Y})
        out = _inverse_interval_pres(document, axis, pres, mode != "auto")
        if out is not None:
            stats.axis_kernel_stats.fused()
            nodes = document.nodes
            return {nodes[p] for p in out}
    stats.axis_kernel_stats.fallback()
    return inverse_axis_set(document, axis, Y)


def inverse_axis_test_pres(
    document: Document, axis: str, pres: list[int]
) -> list[int]:
    """``χ⁻¹(Y)`` over sorted pre-order int arrays.

    Interval axes ride :func:`_inverse_interval_pres`; the pointer axes
    (self/child/parent/attribute, plus the descendant inverses — i.e.
    ancestor chains) ride :func:`_inverse_pointer_pres` — parent-column
    gathers and interval child hops, so the backward predicate sweeps of
    :mod:`repro.core.corexpath` stay entirely in the pre plane (on a
    lazy column document, no node is materialized). The sibling and
    ``id`` inverses fall back to the boxed Definition-1 forms."""
    mode = _kernel_mode
    if mode != "scan":
        if axis in INVERSE_INTERVAL_AXES:
            out = _inverse_interval_pres(document, axis, pres, mode != "auto")
        else:
            out = _inverse_pointer_pres(document, axis, pres)
        if out is not None:
            stats.axis_kernel_stats.fused()
            return out
    stats.axis_kernel_stats.fallback()
    nodes = document.nodes
    result = inverse_axis_set(document, axis, [nodes[p] for p in pres])
    return sorted(y.pre for y in result)


def _interval_axis_pres(
    document: Document, axis: str, pres: list[int], test: NodeTest, forced: bool
) -> list[int] | None:
    """Partition kernel for a forward interval axis, or ``None`` when the
    predicted cost exceeds the ``O(|D|)`` scan bound (caller falls back).

    ``pres`` must be sorted ascending and duplicate-free. The returned
    array is sorted (interval slices are emitted over disjoint ascending
    ranges).
    """
    index = node_index(document)
    partition = index.partition(test, axis)
    if partition is None:
        return None
    if not pres or not partition:
        # An empty partition settles it: only node() matches attribute
        # selves, and its partition (non_attributes) is never empty.
        return []
    size = index.size
    if axis == "following":
        # One suffix of the partition: every partition member at or past
        # the earliest subtree end is a following of that context node.
        # The slice stays a zero-copy view of the packed partition (a
        # list copy only in the packed=False reference form): callers
        # bisect/iterate/merge pre arrays, never mutate them, so there
        # is no reason to materialize the partition tail.
        cutoff = min(p + size[p] for p in pres)
        return partition[bisect_left(partition, cutoff):]
    if axis == "preceding":
        # One prefix, minus the ≤ depth ancestors of the cutoff node
        # (the only prefix members whose subtree is still open there).
        cutoff = pres[-1]
        stop = bisect_left(partition, cutoff)
        return [p for p in partition[:stop] if p + size[p] <= cutoff]
    include_self = axis == "descendant-or-self"
    spans: list[tuple[int, int]] = []
    max_end = -1
    output = 0
    for p in pres:
        if p < max_end:
            continue  # nested inside the previous maximal interval
        lo = p if include_self else p + 1
        hi = p + size[p]
        max_end = hi
        if lo >= hi:
            continue
        lo_idx = bisect_left(partition, lo)
        hi_idx = bisect_left(partition, hi, lo_idx)
        if lo_idx < hi_idx:
            spans.append((lo_idx, hi_idx))
            output += hi_idx - lo_idx
    if not forced:
        # The dispatch rule: predicted kernel cost (bisections + exact
        # output, both already known) must beat the scan's |D| bound.
        predicted = output + len(pres) * max(1, index.total.bit_length())
        if predicted > index.total:
            return None
    result: list[int] = []
    for lo_idx, hi_idx in spans:
        result.extend(partition[lo_idx:hi_idx])
    if include_self and test.kind == "node":
        # Attribute context nodes match node() but live in no partition
        # the interval query reads; or-self must still return them. The
        # membership test is a bisect into the attribute partition — a
        # lazy column document must not materialize nodes here.
        attributes = index.attributes
        attribute_selves = [p for p in pres if _sorted_contains(attributes, p)]
        if attribute_selves:
            result = merge_union(result, attribute_selves)
    return result


def _sorted_contains(partition, pre: int) -> bool:
    """Membership in a sorted pre array (packed memoryview or list)."""
    i = bisect_left(partition, pre)
    return i < len(partition) and partition[i] == pre


def _membership(partition, block_size: int):
    """O(1)-membership predicate over a sorted pre array.

    When the candidate block outnumbers the partition, the per-candidate
    bisects would cost more than one pass over the partition — build a
    set once and answer in O(1). Otherwise keep the bisect (no pass over
    a partition that may be much larger than the block).
    """
    if block_size > len(partition):
        return set(partition).__contains__
    return lambda pre: _sorted_contains(partition, pre)


def _pointer_axis_pres(
    document: Document, axis: str, pres: list[int], test: NodeTest
) -> list[int] | None:
    """Column-plane ``χ(X) ∩ T(t)`` for the pointer axes, or ``None``
    for axes without a columnar form (siblings, ``id``).

    Candidates come from parent-column gathers (``parent``), attribute
    runs (``attribute`` — contiguity: attribute ``a`` of element ``p``
    satisfies ``parent_pre[a] == p`` and sits right after ``p``), or
    sibling hops ``child += size[child]`` across the subtree interval
    (``child``); the node test is then one sorted-merge intersection
    with the matching partition. Output-sensitive, no boxed nodes.
    """
    if axis == "self":
        candidates = pres
    elif axis == "parent":
        parent_pre = node_index(document).parent_pre
        candidates = sorted({parent_pre[p] for p in pres if p != 0})
    elif axis == "attribute":
        index = node_index(document)
        parent_pre = index.parent_pre
        total = index.total
        # ≥ 1 membership probe per context node: when the block is
        # larger than the attribute partition, one pass over the
        # partition (set build) beats per-probe bisects.
        is_attribute = _membership(index.attributes, len(pres))
        candidates = []
        for p in pres:
            a = p + 1
            while a < total and parent_pre[a] == p and is_attribute(a):
                candidates.append(a)
                a += 1
    elif axis == "child":
        index = node_index(document)
        size = index.size
        is_attribute = _membership(index.attributes, len(pres))
        candidates = []
        for p in pres:
            end = p + size[p]
            child = p + 1
            while child < end and is_attribute(child):
                child += 1  # skip the origin's attribute run
            while child < end:
                candidates.append(child)
                child += size[child]
        candidates.sort()  # runs of nested origins interleave in pre order
    else:
        return None
    partition = node_index(document).filter_partition(
        test, attribute_principal=axis in AXIS_PRINCIPAL_ATTRIBUTE
    )
    if partition is None:  # node() matches every kind
        return list(candidates)
    return merge_intersection(candidates, partition)


def _inverse_pointer_pres(
    document: Document, axis: str, pres: list[int]
) -> list[int] | None:
    """Column-plane inverses for the pointer axes, or ``None`` for axes
    that have no columnar form (sibling inverses, ``id``).

    ``self⁻¹`` is the identity; ``child⁻¹``/``attribute⁻¹`` are parent-
    column gathers (children of Y's members never duplicate, attributes
    are nobody's child and filtered by a bisect into the attribute
    partition); ``parent⁻¹`` — children plus attributes of Y — is the
    per-member run ``pre+1, +size, ...`` to the subtree's first grand-
    child boundary, i.e. every node whose ``parent_pre`` lands in Y.
    All output-sensitive, none touches a boxed node.
    """
    if axis == "self":
        return list(pres)
    if axis not in ("child", "parent", "attribute", "descendant", "descendant-or-self"):
        return None
    index = node_index(document)
    if axis in ("descendant", "descendant-or-self"):
        # descendant⁻¹ = strict ancestors of Y's non-attribute members
        # (attributes are nobody's descendant); or-self adds Y itself.
        # Level-synchronous parent-column walk: hop the whole frontier
        # one generation at a time, deduplicating *before* each hop, so
        # shared ancestor prefixes are gathered once for the block
        # instead of once per chain — the union costs its own size, not
        # chains × depth.
        parent_pre = index.parent_pre
        is_attribute = _membership(index.attributes, len(pres))
        frontier = {parent_pre[p] for p in pres if not is_attribute(p)}
        frontier.discard(-1)
        seen: set[int] = set()
        while frontier:
            seen |= frontier
            frontier = {parent_pre[a] for a in frontier}
            frontier.difference_update(seen)
            frontier.discard(-1)
        if axis == "descendant-or-self":
            seen.update(pres)
        return sorted(seen)
    if axis == "child":
        parent_pre = index.parent_pre
        is_attribute = _membership(index.attributes, len(pres))
        return sorted(
            {parent_pre[p] for p in pres if p != 0 and not is_attribute(p)}
        )
    if axis == "attribute":
        parent_pre = index.parent_pre
        is_attribute = _membership(index.attributes, len(pres))
        return sorted({parent_pre[p] for p in pres if is_attribute(p)})
    size = index.size
    result: list[int] = []
    for p in pres:
        end = p + size[p]
        child = p + 1
        while child < end:
            result.append(child)
            child += size[child]
    result.sort()  # runs of nested origins interleave in pre order
    return result


def _inverse_interval_pres(
    document: Document, axis: str, pres: list[int], forced: bool
) -> list[int] | None:
    """Range-emitting kernel for an inverse interval axis, or ``None``
    to fall back. ``pres`` must be sorted ascending."""
    if not pres:
        return []
    index = node_index(document)
    size = index.size
    attributes = index.attributes
    if axis == "following":
        # following(x) ∩ Y ≠ ∅ ⟺ x's subtree ends at or before the
        # latest non-attribute member of Y: every pre below the cutoff
        # except the cutoff node's (still-open) ancestors. Attribute
        # membership is a bisect into the attribute partition, never a
        # node touch (a lazy column document must stay lazy here).
        cutoff = None
        for p in pres:
            if not _sorted_contains(attributes, p):
                cutoff = p  # pres ascend: the last non-attribute wins
        if cutoff is None:
            return []
        excluded = set(index.ancestors_of(cutoff))
        return [p for p in range(cutoff) if p not in excluded]
    if axis == "preceding":
        # The pre-order suffix from the earliest subtree end of Y.
        cutoff = None
        for p in pres:
            end = p + size[p]
            if not _sorted_contains(attributes, p) and (
                cutoff is None or end < cutoff
            ):
                cutoff = end
        if cutoff is None:
            return []
        return list(range(cutoff, index.total))
    # ancestor / ancestor-or-self inverses: the (strict) interior of Y's
    # subtree intervals, attributes included. Maximal intervals emit
    # disjoint ascending pre ranges — output cost, no scan.
    include_self = axis == "ancestor-or-self"
    spans: list[tuple[int, int]] = []
    max_end = -1
    output = 0
    for p in pres:
        if p < max_end:
            continue
        lo = p if include_self else p + 1
        hi = p + size[p]
        max_end = hi
        if lo < hi:
            spans.append((lo, hi))
            output += hi - lo
    if not forced and output > index.total:
        return None
    result: list[int] = []
    for lo, hi in spans:
        result.extend(range(lo, hi))
    return result


def _enumerated_axis_set(
    document: Document, axis: str, X: Iterable[Node], test: NodeTest
) -> set[Node]:
    """Single-pass fused enumeration for the per-node axes: the same
    candidates the Definition-1 forms enumerate, filtered as they are
    produced (no intermediate unfiltered set)."""
    result: set[Node] = set()
    if axis == "self":
        for x in X:
            if matches_node_test(x, test, axis):
                result.add(x)
        return result
    if axis == "child":
        for x in X:
            for child in x.children:
                if matches_node_test(child, test, axis):
                    result.add(child)
        return result
    if axis == "parent":
        for x in X:
            parent = x.parent
            if parent is not None and matches_node_test(parent, test, axis):
                result.add(parent)
        return result
    if axis == "attribute":
        for x in X:
            for attribute in x.attributes:
                if matches_node_test(attribute, test, axis):
                    result.add(attribute)
        return result
    if axis in ("ancestor", "ancestor-or-self"):
        return _ancestor_set(
            X,
            include_self=axis == "ancestor-or-self",
            keep=lambda node: matches_node_test(node, test, axis),
        )
    if axis in ("following-sibling", "preceding-sibling"):
        return _sibling_set(
            X,
            forward=axis == "following-sibling",
            keep=lambda node: matches_node_test(node, test, axis),
        )
    if axis == "id":
        for x in X:
            for target in document.deref_ids(x.string_value):
                if matches_node_test(target, test, axis):
                    result.add(target)
        return result
    raise ValueError(f"unknown axis: {axis}")
