"""Axis functions ``χ`` and inverse axis functions ``χ⁻¹`` (Definition 1).

Two interfaces:

* :func:`axis_nodes` — enumerate ``χ({x})`` for one context node, in
  ``<doc,χ`` proximity order. Used by the per-context evaluators (naive,
  single-context loops) where proximity positions matter.
* :func:`axis_set` / :func:`inverse_axis_set` — the set functions
  ``χ(X)`` and ``χ⁻¹(Y)`` of Definition 1, each computed in ``O(|D|)``
  regardless of ``|X|`` (the paper's complexity theorems depend on this
  bound; see the remark below Definition 1 citing [11]).

Linear-time techniques, keyed to the pre-order numbering of
:mod:`repro.xml.document`:

* ``descendant(X)`` — interval stabbing with a difference array over
  ``pre`` numbers (each ``x`` contributes the interval
  ``(pre(x), pre(x)+size(x))``), one prefix-sum pass.
* ``following(X)`` — the pre-order suffix starting at
  ``min_{x∈X}(pre(x)+size(x))``; ``preceding(X)`` — all nodes whose
  subtree ends at or before ``max_{x∈X} pre(x)``.
* sibling axes — group ``X`` by parent and take one suffix/prefix of each
  parent's child list.

Attribute nodes follow the W3C data model: they are reached only via the
``attribute`` axis, have no siblings, and are excluded from
``descendant``/``following``/``preceding`` results.

The ``id`` pseudo-axis of Section 4 of the paper (``x id→ y`` iff the id
of ``y`` occurs as a whitespace token in ``strval(x)``) is also provided,
with its inverse computed from the document's cached token index.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro import stats
from repro.axes.order import FORWARD_AXES, REVERSE_AXES, is_forward_axis
from repro.xml.document import Document, Node

#: Every axis this library supports. ``id`` is the pseudo-axis of
#: Section 4; the paper's eleven named axes plus ``attribute``.
ALL_AXES = frozenset(FORWARD_AXES | REVERSE_AXES)

#: Axes whose principal node type is attribute (name tests select
#: attribute nodes); all others select elements.
AXIS_PRINCIPAL_ATTRIBUTE = frozenset({"attribute"})

# ----------------------------------------------------------------------
# Per-node enumeration (proximity order)
# ----------------------------------------------------------------------


def axis_nodes(document: Document, axis: str, node: Node) -> Iterator[Node]:
    """Yield ``χ({node})`` in proximity order (``<doc,χ``)."""
    stats.count("axis_single_calls")
    if axis == "self":
        yield node
    elif axis == "child":
        yield from node.children
    elif axis == "parent":
        if node.parent is not None:
            yield node.parent
    elif axis == "descendant":
        yield from _descendants(node)
    elif axis == "descendant-or-self":
        yield node
        yield from _descendants(node)
    elif axis == "ancestor":
        yield from node.ancestors()
    elif axis == "ancestor-or-self":
        yield node
        yield from node.ancestors()
    elif axis == "following-sibling":
        if node.parent is not None and node.child_index is not None:
            yield from node.parent.children[node.child_index + 1 :]
    elif axis == "preceding-sibling":
        if node.parent is not None and node.child_index is not None:
            yield from reversed(node.parent.children[: node.child_index])
    elif axis == "following":
        start = node.pre + node.size
        for candidate in document.nodes[start:]:
            if not candidate.is_attribute:
                yield candidate
    elif axis == "preceding":
        limit = node.pre
        # Proximity order for preceding is reverse document order.
        for candidate in reversed(document.nodes[:limit]):
            if candidate.pre + candidate.size <= limit and not candidate.is_attribute:
                yield candidate
    elif axis == "attribute":
        yield from node.attributes
    elif axis == "id":
        yield from document.in_document_order(document.deref_ids(node.string_value))
    else:
        raise ValueError(f"unknown axis: {axis}")


def _descendants(node: Node) -> Iterator[Node]:
    for child in node.children:
        yield child
        yield from _descendants(child)


# ----------------------------------------------------------------------
# Set functions (Definition 1), each O(|D|)
# ----------------------------------------------------------------------


def axis_set(document: Document, axis: str, node_set: Iterable[Node]) -> set[Node]:
    """The axis function ``χ(X) = {y | ∃x ∈ X : x χ y}``."""
    stats.count("axis_set_calls")
    X = node_set if isinstance(node_set, (set, frozenset, list, tuple)) else list(node_set)
    if axis == "self":
        return set(X)
    if axis == "child":
        result: set[Node] = set()
        for x in X:
            result.update(x.children)
        return result
    if axis == "parent":
        return {x.parent for x in X if x.parent is not None}
    if axis == "descendant":
        return _descendant_set(document, X, include_self=False)
    if axis == "descendant-or-self":
        result = _descendant_set(document, X, include_self=False)
        result.update(X)
        return result
    if axis == "ancestor":
        return _ancestor_set(X, include_self=False)
    if axis == "ancestor-or-self":
        result = _ancestor_set(X, include_self=False)
        result.update(X)
        return result
    if axis == "following":
        return _following_set(document, X)
    if axis == "preceding":
        return _preceding_set(document, X)
    if axis == "following-sibling":
        return _sibling_set(X, forward=True)
    if axis == "preceding-sibling":
        return _sibling_set(X, forward=False)
    if axis == "attribute":
        result = set()
        for x in X:
            result.update(x.attributes)
        return result
    if axis == "id":
        result = set()
        for x in X:
            result.update(document.deref_ids(x.string_value))
        return result
    raise ValueError(f"unknown axis: {axis}")


def inverse_axis_set(document: Document, axis: str, node_set: Iterable[Node]) -> set[Node]:
    """Definition 1's ``χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅}``, in ``O(|D|)``.

    For most tree axes this is the converse axis's set function
    (``child⁻¹ = parent`` etc.). Attribute nodes make four corners
    asymmetric — an attribute has ancestors/following/preceding but is
    nobody's descendant/following/preceding, and it has a parent without
    being a child — so those cases are computed directly from the
    definition rather than via the converse axis. ``id⁻¹(Y)`` uses the
    cached per-node string-value token index (the ``F[[Op]]⁻¹`` of
    Section 4, shown linear-time in [11]).
    """
    stats.count("axis_inverse_calls")
    Y = node_set if isinstance(node_set, (set, frozenset)) else set(node_set)
    if axis == "self":
        return set(Y)
    if axis == "child":
        # x has a child in Y — attribute members of Y are nobody's child.
        return {y.parent for y in Y if not y.is_attribute and y.parent is not None}
    if axis == "parent":
        # x's parent is in Y — children of Y plus attributes of Y.
        result = axis_set(document, "child", Y)
        result |= axis_set(document, "attribute", Y)
        return result
    if axis == "descendant":
        return _ancestor_set((y for y in Y if not y.is_attribute), include_self=False)
    if axis == "descendant-or-self":
        result = _ancestor_set((y for y in Y if not y.is_attribute), include_self=False)
        result.update(Y)
        return result
    if axis == "ancestor":
        # x has an ancestor in Y: everything strictly inside Y's subtree
        # intervals, attributes included (an attribute's ancestors are its
        # element's ancestor-or-self chain).
        return _interval_cover(document, Y, include_self=False, include_attributes=True)
    if axis == "ancestor-or-self":
        result = _interval_cover(document, Y, include_self=False, include_attributes=True)
        result.update(Y)
        return result
    if axis == "following":
        # following(x) ∩ Y ≠ ∅ ⟺ some non-attribute y ∈ Y starts at or
        # after x's subtree end. x itself may be any kind, attributes too.
        cutoff = None
        for y in Y:
            if not y.is_attribute and (cutoff is None or y.pre > cutoff):
                cutoff = y.pre
        if cutoff is None:
            return set()
        return {x for x in document.nodes if x.pre + x.size <= cutoff}
    if axis == "preceding":
        cutoff = None
        for y in Y:
            if not y.is_attribute:
                end = y.pre + y.size
                if cutoff is None or end < cutoff:
                    cutoff = end
        if cutoff is None:
            return set()
        return set(document.nodes[cutoff:])
    if axis == "following-sibling":
        return _sibling_set(Y, forward=False)
    if axis == "preceding-sibling":
        return _sibling_set(Y, forward=True)
    if axis == "attribute":
        return {y.parent for y in Y if y.is_attribute and y.parent is not None}
    if axis == "id":
        ids = {y.xml_id for y in Y}
        ids.discard(None)
        if not ids:
            return set()
        return {node for node, tokens in document.id_tokens() if not ids.isdisjoint(tokens)}
    raise ValueError(f"unknown axis: {axis}")


def _interval_cover(
    document: Document, X: Iterable[Node], include_self: bool, include_attributes: bool
) -> set[Node]:
    """Nodes covered by the subtree intervals of ``X`` (difference-array
    sweep like :func:`_descendant_set`, optionally keeping attributes)."""
    nodes = document.nodes
    total = len(nodes)
    delta = [0] * (total + 1)
    any_interval = False
    for x in X:
        lo = x.pre if include_self else x.pre + 1
        hi = x.pre + x.size
        if lo < hi:
            delta[lo] += 1
            delta[hi] -= 1
            any_interval = True
    if not any_interval:
        return set()
    result: set[Node] = set()
    coverage = 0
    for pre, node in enumerate(nodes):
        coverage += delta[pre]
        if coverage > 0 and (include_attributes or not node.is_attribute):
            result.add(node)
    return result


def _descendant_set(document: Document, X: Iterable[Node], include_self: bool) -> set[Node]:
    """Union of subtree intervals via a difference array: O(|D| + |X|)."""
    nodes = document.nodes
    total = len(nodes)
    delta = [0] * (total + 1)
    any_interval = False
    for x in X:
        lo = x.pre if include_self else x.pre + 1
        hi = x.pre + x.size
        if lo < hi:
            delta[lo] += 1
            delta[hi] -= 1
            any_interval = True
    if not any_interval:
        return set()
    result: set[Node] = set()
    coverage = 0
    for pre, node in enumerate(nodes):
        coverage += delta[pre]
        if coverage > 0 and not node.is_attribute:
            result.add(node)
    return result


def _ancestor_set(X: Iterable[Node], include_self: bool) -> set[Node]:
    """Union of ancestor chains with sharing: O(|D|) total."""
    result: set[Node] = set()
    for x in X:
        if include_self:
            result.add(x)
        node = x.parent
        while node is not None and node not in result:
            result.add(node)
            node = node.parent
    return result


def _following_set(document: Document, X: Iterable[Node]) -> set[Node]:
    cutoff = None
    for x in X:
        end = x.pre + x.size
        if cutoff is None or end < cutoff:
            cutoff = end
    if cutoff is None:
        return set()
    return {node for node in document.nodes[cutoff:] if not node.is_attribute}


def _preceding_set(document: Document, X: Iterable[Node]) -> set[Node]:
    cutoff = None
    for x in X:
        if cutoff is None or x.pre > cutoff:
            cutoff = x.pre
    if cutoff is None:
        return set()
    return {
        node
        for node in document.nodes[:cutoff]
        if node.pre + node.size <= cutoff and not node.is_attribute
    }


def _sibling_set(X: Iterable[Node], forward: bool) -> set[Node]:
    """Group by parent, then one suffix (or prefix) per parent: O(|D|)."""
    extremes: dict[int, tuple[Node, int]] = {}
    for x in X:
        if x.parent is None or x.child_index is None:
            continue  # document node and attributes have no siblings
        key = id(x.parent)
        current = extremes.get(key)
        if current is None:
            extremes[key] = (x.parent, x.child_index)
        else:
            parent, index = current
            if (forward and x.child_index < index) or (not forward and x.child_index > index):
                extremes[key] = (parent, x.child_index)
    result: set[Node] = set()
    for parent, index in extremes.values():
        if forward:
            result.update(parent.children[index + 1 :])
        else:
            result.update(parent.children[:index])
    return result
