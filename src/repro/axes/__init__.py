"""Axis relations of the XPath data model — three tiers, one semantics.

**Tier 0 — Definition-1 scans.** Every axis ``χ`` is available as a
per-node iterator (:func:`axis_nodes`) and as a set function
``χ : 2^dom → 2^dom`` (:func:`axis_set`) with an inverse ``χ⁻¹(Y) =
{x | χ({x}) ∩ Y ≠ ∅}`` (:func:`inverse_axis_set`). These run in
``O(|D|)`` time regardless of ``|X|`` — the bound the paper's
complexity theorems rely on (see the remark below Definition 1) — and
are the guaranteed fallback of everything below.

**Tier 1 — indexed scalar kernels.** Each axis fused with its node test
over the per-document :class:`repro.xml.index.NodeIndex`
(name-partitioned sorted pre-order arrays): :func:`fused_axis_set` /
:func:`fused_inverse_axis_set` (node-set interface) and
:func:`axis_test_pres` / :func:`inverse_axis_test_pres` (sorted
pre-array interface). A ``descendant::a`` dispatch costs
``O(|X|·log|D| + output)`` via binary search over the ``a`` partition;
``following``/``preceding`` are partition suffix/prefix slices; inverse
interval axes emit pre ranges directly. Output-sensitive, but iterating
context nodes one pre at a time in Python.

**Tier 2 — vector column programs** (:mod:`repro.axes.vec`). Whole Core
XPath sweeps compiled to a linear IR executed batch-at-a-time over the
flat columns — interval joins, pointer gathers, child-span/attribute-run
gathers, partition intersects — with no per-node Python dispatch in the
loop body, on a stdlib executor always and a byte-identical
auto-detected numpy executor (:mod:`repro.axes.vec_np`) when importable
(:func:`set_vector_backend` / :func:`vector_backend_forced` select).

**The fallback guarantee lives in the dispatch**: every fused call whose
predicted cost (computed exactly from partition bisections) exceeds the
``O(|D|)`` scan bound — or every call while :func:`set_kernel_mode`
forces ``scan`` — runs the Definition-1 implementation verbatim, and the
vector primitives are forced-kernel forms of the same tier-1 code paths,
so results are byte-identical in every mode/backend and worst-case
asymptotics never regress. Dispatch outcomes are counted exactly on
:data:`repro.stats.axis_kernel_stats` (``fused_hits``/``fallback_scans``
for scalar dispatches, ``vector_program_runs``/``vector_ops`` for the
vector tier).
"""

from repro.axes.axes import (
    ALL_AXES,
    FORWARD_AXES,
    INTERVAL_AXES,
    INVERSE_INTERVAL_AXES,
    KERNEL_MODES,
    REVERSE_AXES,
    AXIS_PRINCIPAL_ATTRIBUTE,
    axis_nodes,
    axis_set,
    axis_test_pres,
    fused_axis_set,
    fused_inverse_axis_set,
    inverse_axis_set,
    inverse_axis_test_pres,
    is_forward_axis,
    kernel_mode,
    kernel_mode_forced,
    matches_node_test,
    set_kernel_mode,
)
from repro.axes.order import axis_order_key, index_in_axis_order, sort_in_axis_order
from repro.axes.vec import (
    FORWARD_VECTOR_AXES,
    INVERSE_VECTOR_AXES,
    VECTOR_BACKENDS,
    VECTOR_MIN_BLOCK,
    active_backend_name,
    compile_backward_steps,
    compile_forward_steps,
    numpy_available,
    run_program,
    set_vector_backend,
    sweep_engaged,
    vector_backend,
    vector_backend_forced,
)

__all__ = [
    "ALL_AXES",
    "FORWARD_AXES",
    "INTERVAL_AXES",
    "INVERSE_INTERVAL_AXES",
    "KERNEL_MODES",
    "REVERSE_AXES",
    "AXIS_PRINCIPAL_ATTRIBUTE",
    "axis_nodes",
    "axis_set",
    "axis_test_pres",
    "fused_axis_set",
    "fused_inverse_axis_set",
    "inverse_axis_set",
    "inverse_axis_test_pres",
    "is_forward_axis",
    "kernel_mode",
    "kernel_mode_forced",
    "matches_node_test",
    "set_kernel_mode",
    "axis_order_key",
    "index_in_axis_order",
    "sort_in_axis_order",
    "FORWARD_VECTOR_AXES",
    "INVERSE_VECTOR_AXES",
    "VECTOR_BACKENDS",
    "VECTOR_MIN_BLOCK",
    "active_backend_name",
    "compile_backward_steps",
    "compile_forward_steps",
    "numpy_available",
    "run_program",
    "set_vector_backend",
    "sweep_engaged",
    "vector_backend",
    "vector_backend_forced",
]
