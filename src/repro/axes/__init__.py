"""Axis relations of the XPath data model.

Implements Definition 1 of the paper: every axis ``χ`` is available both
as a per-node iterator and as a *set function* ``χ : 2^dom → 2^dom`` with
an inverse ``χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅}``. All set functions run in
``O(|D|)`` time, which is the bound the paper's complexity theorems rely
on (see the remark below Definition 1).
"""

from repro.axes.axes import (
    ALL_AXES,
    FORWARD_AXES,
    REVERSE_AXES,
    AXIS_PRINCIPAL_ATTRIBUTE,
    axis_nodes,
    axis_set,
    inverse_axis_set,
    is_forward_axis,
)
from repro.axes.order import axis_order_key, index_in_axis_order, sort_in_axis_order

__all__ = [
    "ALL_AXES",
    "FORWARD_AXES",
    "REVERSE_AXES",
    "AXIS_PRINCIPAL_ATTRIBUTE",
    "axis_nodes",
    "axis_set",
    "inverse_axis_set",
    "is_forward_axis",
    "axis_order_key",
    "index_in_axis_order",
    "sort_in_axis_order",
]
