"""Axis relations of the XPath data model — two regimes, one semantics.

The *guaranteed* layer implements Definition 1 of the paper: every axis
``χ`` is available as a per-node iterator (:func:`axis_nodes`) and as a
set function ``χ : 2^dom → 2^dom`` (:func:`axis_set`) with an inverse
``χ⁻¹(Y) = {x | χ({x}) ∩ Y ≠ ∅}`` (:func:`inverse_axis_set`). These run
in ``O(|D|)`` time regardless of ``|X|`` — the bound the paper's
complexity theorems rely on (see the remark below Definition 1).

The *output-sensitive* layer fuses each axis with its node test over the
per-document :class:`repro.xml.index.NodeIndex` (name-partitioned sorted
pre-order arrays): :func:`fused_axis_set` / :func:`fused_inverse_axis_set`
(node-set interface) and :func:`axis_test_pres` /
:func:`inverse_axis_test_pres` (sorted pre-array interface). A
``descendant::a`` dispatch costs ``O(|X|·log|D| + output)`` via binary
search over the ``a`` partition; ``following``/``preceding`` are
partition suffix/prefix slices; sibling axes are child-table slice
arithmetic; inverse interval axes emit pre ranges directly.

**The fallback guarantee lives in the dispatch**: every fused call whose
predicted cost (computed exactly from partition bisections) exceeds the
``O(|D|)`` scan bound — or every call while :func:`set_kernel_mode`
forces ``scan`` — runs the Definition-1 implementation verbatim, so
results are byte-identical in every mode and worst-case asymptotics
never regress. Dispatch outcomes are counted exactly on
:data:`repro.stats.axis_kernel_stats`.
"""

from repro.axes.axes import (
    ALL_AXES,
    FORWARD_AXES,
    INTERVAL_AXES,
    INVERSE_INTERVAL_AXES,
    KERNEL_MODES,
    REVERSE_AXES,
    AXIS_PRINCIPAL_ATTRIBUTE,
    axis_nodes,
    axis_set,
    axis_test_pres,
    fused_axis_set,
    fused_inverse_axis_set,
    inverse_axis_set,
    inverse_axis_test_pres,
    is_forward_axis,
    kernel_mode,
    kernel_mode_forced,
    matches_node_test,
    set_kernel_mode,
)
from repro.axes.order import axis_order_key, index_in_axis_order, sort_in_axis_order

__all__ = [
    "ALL_AXES",
    "FORWARD_AXES",
    "INTERVAL_AXES",
    "INVERSE_INTERVAL_AXES",
    "KERNEL_MODES",
    "REVERSE_AXES",
    "AXIS_PRINCIPAL_ATTRIBUTE",
    "axis_nodes",
    "axis_set",
    "axis_test_pres",
    "fused_axis_set",
    "fused_inverse_axis_set",
    "inverse_axis_set",
    "inverse_axis_test_pres",
    "is_forward_axis",
    "kernel_mode",
    "kernel_mode_forced",
    "matches_node_test",
    "set_kernel_mode",
    "axis_order_key",
    "index_in_axis_order",
    "sort_in_axis_order",
]
