"""XPath 1.0 value system.

The four XPath types of Section 2.2 — ``nset``, ``num``, ``str``,
``bool`` — are represented by Python ``set[Node]``/``frozenset[Node]``,
``float``, ``str``, and ``bool``. This package implements the conversion
and comparison entries of the paper's Figure 1 (the "effective semantics
function" ``F``), deferring, as the paper does, to the W3C XPath 1.0
recommendation [18] for the precise rules (IEEE-754 numbers, NaN, the
number↔string grammar, and the node-set comparison semantics).
"""

from repro.values.numbers import (
    NAN,
    to_number,
    number_to_string,
    xpath_floor,
    xpath_ceiling,
    xpath_round,
)
from repro.values.coerce import to_boolean, to_number_value, to_string_value
from repro.values.compare import compare_values, RELATIONAL_OPS, EQUALITY_OPS

__all__ = [
    "NAN",
    "to_number",
    "number_to_string",
    "xpath_floor",
    "xpath_ceiling",
    "xpath_round",
    "to_boolean",
    "to_number_value",
    "to_string_value",
    "compare_values",
    "RELATIONAL_OPS",
    "EQUALITY_OPS",
]
