"""XPath 1.0 number semantics (``to_number`` / ``to_string`` of §2.1).

XPath numbers are IEEE-754 doubles, so Python ``float`` is the right
carrier. What needs care is the *boundary* behaviour the paper's Figure 1
relies on:

* ``to_number`` parses exactly the XPath ``Number`` grammar
  (``Digits ('.' Digits?)? | '.' Digits`` with optional leading ``-`` and
  surrounding whitespace — no exponent, no ``+``), everything else is NaN;
* ``to_string`` renders integers without a decimal point ("4", not
  "4.0"), negative zero as "0", and NaN/±Infinity by name;
* ``boolean(num)`` is false exactly for ``±0`` and NaN (Figure 1);
* ``round()`` rounds half toward positive infinity (not banker's
  rounding), and ``round(-0.5)`` is negative zero.
"""

from __future__ import annotations

import decimal
import math
import re

NAN = float("nan")
INF = float("inf")

_NUMBER_PATTERN = re.compile(r"^[ \t\r\n]*-?(\d+(\.\d*)?|\.\d+)[ \t\r\n]*$")


def to_number(text: str) -> float:
    """The XPath 1.0 string→number conversion.

    Follows the ``Number`` production: optional minus, digits with an
    optional fractional part (or a bare fractional part), surrounded by
    optional whitespace. Any other string converts to NaN — including
    ``''``, ``'+1'``, ``'1e3'``, and ``'Infinity'``.
    """
    if _NUMBER_PATTERN.match(text):
        return float(text)
    return NAN


def number_to_string(value: float) -> str:
    """The XPath 1.0 number→string conversion.

    NaN → ``"NaN"``; ±∞ → ``"±Infinity"``; integers (including -0) render
    without a decimal point or sign of zero; other values use the shortest
    decimal representation Python offers, expanded out of scientific
    notation because XPath strings never carry exponents.
    """
    if math.isnan(value):
        return "NaN"
    if value == INF:
        return "Infinity"
    if value == -INF:
        return "-Infinity"
    if value == 0:
        return "0"  # covers -0.0
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    text = repr(value)
    if "e" in text or "E" in text:
        # Expand scientific notation exactly (Decimal of the shortest
        # repr), covering both huge and tiny magnitudes without loss.
        text = format(decimal.Decimal(text), "f")
    return text


def xpath_floor(value: float) -> float:
    """``floor()``: largest integer ≤ value; NaN/∞ pass through."""
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.floor(value))


def xpath_ceiling(value: float) -> float:
    """``ceiling()``: smallest integer ≥ value; NaN/∞ pass through."""
    if math.isnan(value) or math.isinf(value):
        return value
    return float(math.ceil(value))


def xpath_round(value: float) -> float:
    """``round()``: nearest integer, ties toward +∞ (spec §4.4).

    ``round(0.5) = 1``, ``round(-0.5) = -0`` (negative zero),
    ``round(-1.5) = -1``. NaN and the infinities pass through.
    """
    if math.isnan(value) or math.isinf(value):
        return value
    if value == int(value):
        return value  # already integral (covers |v| >= 2^52, where v+0.5 would lose precision)
    if -0.5 <= value < 0:
        return -0.0
    return float(math.floor(value + 0.5))


def xpath_divide(left: float, right: float) -> float:
    """IEEE division: ``x div 0`` is ±∞ (or NaN for ``0 div 0``)."""
    if right == 0:
        if math.isnan(left) or left == 0:
            return NAN
        positive = (left > 0) == (not _is_negative_zero(right) and right >= 0)
        return INF if positive else -INF
    return left / right


def xpath_modulo(left: float, right: float) -> float:
    """XPath ``mod``: remainder with the sign of the dividend (like Java/C
    ``%``, *not* Python's floored ``%``). ``5 mod -2 = 1``,
    ``-5 mod 2 = -1``."""
    if math.isnan(left) or math.isnan(right) or math.isinf(left) or right == 0:
        return NAN
    if math.isinf(right):
        return left
    result = math.fmod(left, right)
    return result


def _is_negative_zero(value: float) -> bool:
    return value == 0 and math.copysign(1.0, value) < 0
