"""Type conversions: the ``boolean``/``string``/``number`` rows of Figure 1.

These functions take a runtime value plus its static XPath type tag (one
of ``"nset"``, ``"num"``, ``"str"``, ``"bool"``). XPath 1.0 types are
statically known, so the evaluators always have the tag at hand; passing
it explicitly keeps the dispatch faithful to Figure 1's typed signatures
rather than sniffing Python types (``bool`` being an ``int`` subclass
makes sniffing error-prone anyway).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.values.numbers import number_to_string, to_number
from repro.xml.document import Node

#: The four XPath 1.0 static types.
TYPES = ("nset", "num", "str", "bool")


def _first_in_document_order(nodes: Iterable[Node]) -> Node | None:
    best: Node | None = None
    for node in nodes:
        if best is None or node.pre < best.pre:
            best = node
    return best


def to_boolean(value, value_type: str) -> bool:
    """Figure 1's ``F[[boolean : t → bool]]``.

    * nset: nonempty;
    * num: neither ±0 nor NaN;
    * str: nonempty;
    * bool: identity.
    """
    if value_type == "bool":
        return value
    if value_type == "num":
        return not (value == 0 or math.isnan(value))
    if value_type == "str":
        return value != ""
    if value_type == "nset":
        return bool(value)
    raise ValueError(f"unknown XPath type: {value_type}")


def to_string_value(value, value_type: str) -> str:
    """Figure 1's ``F[[string : t → str]]``.

    * nset: the string value of the first node in document order, or ""
      for the empty set;
    * num: :func:`repro.values.numbers.number_to_string`;
    * bool: ``"true"``/``"false"``;
    * str: identity.
    """
    if value_type == "str":
        return value
    if value_type == "num":
        return number_to_string(value)
    if value_type == "bool":
        return "true" if value else "false"
    if value_type == "nset":
        first = _first_in_document_order(value)
        return "" if first is None else first.string_value
    raise ValueError(f"unknown XPath type: {value_type}")


def to_number_value(value, value_type: str) -> float:
    """Figure 1's ``F[[number : t → num]]``.

    * str: the XPath number grammar (else NaN);
    * bool: 1 or 0;
    * nset: ``number(string(nset))``;
    * num: identity.
    """
    if value_type == "num":
        return value
    if value_type == "str":
        return to_number(value)
    if value_type == "bool":
        return 1.0 if value else 0.0
    if value_type == "nset":
        return to_number(to_string_value(value, "nset"))
    raise ValueError(f"unknown XPath type: {value_type}")


def convert(value, from_type: str, to_type: str):
    """Convert between XPath types (no conversion *to* nset exists)."""
    if to_type == from_type:
        return value
    if to_type == "bool":
        return to_boolean(value, from_type)
    if to_type == "str":
        return to_string_value(value, from_type)
    if to_type == "num":
        return to_number_value(value, from_type)
    raise ValueError(f"cannot convert {from_type} to {to_type}")
