"""Comparison semantics: the ``RelOp``/``EqOp``/``GtOp`` rows of Figure 1.

Implements XPath 1.0 §3.4 comparisons, which Figure 1 of the paper
transcribes. The existential node-set cases are the interesting ones:
``S1 = S2`` holds iff *some* pair of nodes has equal string values, and
``S < v`` iff *some* node's numeric string value is below ``v``. A naive
implementation of ``nset × nset`` would enumerate all pairs; we use the
standard set-intersection / extremum tricks so each comparison stays
linear in the operand sizes, which keeps the evaluators inside the
theorems' bounds (each comparison result must be computable in
``O(|D|)``-ish time per context).

One deliberate spec-fidelity note: for relational operators (``<`` etc.)
with a node-set against a *string*, the W3C rule converts both sides to
numbers; the paper's Figure 1 abbreviates this case as a string
comparison. We follow the W3C rule (the paper itself defers to [18] for
precise semantics, and none of the paper's examples exercise the
difference).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.values.coerce import to_boolean, to_number_value
from repro.values.numbers import to_number
from repro.xml.document import Node

EQUALITY_OPS = ("=", "!=")
RELATIONAL_OPS = ("<", "<=", ">", ">=")

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _scalar_compare(op: str, left: float | str, right: float | str) -> bool:
    """Compare two like-typed scalars; NaN makes everything false except
    ``NaN != x``."""
    if op == "=":
        return left == right
    if op == "!=":
        if isinstance(left, float) and math.isnan(left):
            return True
        if isinstance(right, float) and math.isnan(right):
            return True
        return left != right
    # Relational: IEEE semantics — any NaN operand yields false.
    if isinstance(left, float) and math.isnan(left):
        return False
    if isinstance(right, float) and math.isnan(right):
        return False
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison operator: {op}")


def _string_values(nodes: Iterable[Node]) -> list[str]:
    return [node.string_value for node in nodes]


def _numeric_values(nodes: Iterable[Node]) -> list[float]:
    return [to_number(node.string_value) for node in nodes]


def _exists_numeric(op: str, values: list[float], bound: float) -> bool:
    """∃ v ∈ values : v op bound — via extremum instead of scanning pairs."""
    if math.isnan(bound):
        return op == "!=" and bool(values)
    finite = [v for v in values if not math.isnan(v)]
    if op == "=":
        return bound in finite
    if op == "!=":
        return any(v != bound for v in finite) or (len(finite) < len(values))
    if not finite:
        return False
    if op == "<":
        return min(finite) < bound
    if op == "<=":
        return min(finite) <= bound
    if op == ">":
        return max(finite) > bound
    if op == ">=":
        return max(finite) >= bound
    raise ValueError(f"unknown comparison operator: {op}")


def _nset_vs_nset(op: str, left: Iterable[Node], right: Iterable[Node]) -> bool:
    left_nodes = list(left)
    right_nodes = list(right)
    if not left_nodes or not right_nodes:
        return False
    if op == "=":
        return not set(_string_values(left_nodes)).isdisjoint(_string_values(right_nodes))
    if op == "!=":
        left_distinct = set(_string_values(left_nodes))
        right_distinct = set(_string_values(right_nodes))
        if len(left_distinct) > 1 or len(right_distinct) > 1:
            return True
        return next(iter(left_distinct)) != next(iter(right_distinct))
    # Relational: ∃ pair of numeric string values ⇔ extrema comparison.
    left_numbers = [v for v in _numeric_values(left_nodes) if not math.isnan(v)]
    right_numbers = [v for v in _numeric_values(right_nodes) if not math.isnan(v)]
    if not left_numbers or not right_numbers:
        return False
    if op == "<":
        return min(left_numbers) < max(right_numbers)
    if op == "<=":
        return min(left_numbers) <= max(right_numbers)
    if op == ">":
        return max(left_numbers) > min(right_numbers)
    if op == ">=":
        return max(left_numbers) >= min(right_numbers)
    raise ValueError(f"unknown comparison operator: {op}")


def _nset_vs_scalar(op: str, nodes: Iterable[Node], value, value_type: str) -> bool:
    node_list = list(nodes)
    if value_type == "bool":
        # Boolean comparisons go through boolean(nset) even for the empty
        # set (false = false is true); the existential reading below only
        # applies to numbers and strings.
        left = to_boolean(node_list, "nset")
        return _scalar_compare(op, float(left), float(value))
    if not node_list:
        return False
    if value_type == "num":
        return _exists_numeric(op, _numeric_values(node_list), value)
    if value_type == "str":
        if op in EQUALITY_OPS:
            strings = set(_string_values(node_list))
            if op == "=":
                return value in strings
            return any(s != value for s in strings)
        # W3C: relational against a string converts both sides to number.
        return _exists_numeric(op, _numeric_values(node_list), to_number(value))
    raise ValueError(f"unknown XPath type: {value_type}")


def compare_values(op: str, left, left_type: str, right, right_type: str) -> bool:
    """Full XPath 1.0 comparison dispatch (§3.4 / the paper's Figure 1).

    Args:
        op: one of ``= != < <= > >=``.
        left, right: runtime values.
        left_type, right_type: static type tags (``nset num str bool``).
    """
    if left_type == "nset" and right_type == "nset":
        return _nset_vs_nset(op, left, right)
    if left_type == "nset":
        return _nset_vs_scalar(op, left, right, right_type)
    if right_type == "nset":
        return _nset_vs_scalar(_FLIPPED[op], right, left, left_type)
    # Neither side is a node-set.
    if op in EQUALITY_OPS:
        if left_type == "bool" or right_type == "bool":
            return _scalar_compare(
                op, float(to_boolean(left, left_type)), float(to_boolean(right, right_type))
            )
        if left_type == "num" or right_type == "num":
            return _scalar_compare(
                op, to_number_value(left, left_type), to_number_value(right, right_type)
            )
        return _scalar_compare(op, left, right)
    # Relational on scalars always compares numbers (Figure 1's GtOp row).
    return _scalar_compare(
        op, to_number_value(left, left_type), to_number_value(right, right_type)
    )
