"""Lightweight instrumentation for complexity experiments.

The benchmark harness validates the paper's complexity *claims* (Theorems
7, 10, 13) not only with wall-clock measurements but also with abstract
operation counts, which are immune to interpreter noise:

* ``count(name)`` — bump a named counter (axis calls, contexts evaluated,
  predicate loop iterations, ...).
* ``table_cells_allocated`` / ``table_cells_freed`` — track the number of
  live context-value-table cells, maintaining a peak. This is the space
  measure in the paper's space bounds (each table entry is one unit;
  Theorem 7's ``O(|D|^2·|Q|^2)`` counts exactly these).
* :class:`CacheStats` — hit/miss/eviction accounting for the service
  layer's plan and result caches (:mod:`repro.service`). Every event is
  mirrored into the active collectors as ``<name>_hits`` /
  ``<name>_misses`` / ``<name>_evictions`` counters, so one
  :func:`collect` block sees evaluation work and cache traffic together.

Collection is opt-in and nestable::

    with stats.collect() as s:
        engine.evaluate(query)
    print(s.counters["contexts_evaluated"], s.peak_table_cells)

When no collector is active the hooks are near-free (one truthiness check
on a module-level list).
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field


@dataclass
class Stats:
    """Counters gathered during one :func:`collect` block."""

    counters: dict[str, int] = field(default_factory=dict)
    live_table_cells: int = 0
    peak_table_cells: int = 0

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def cells_allocated(self, amount: int) -> None:
        self.live_table_cells += amount
        if self.live_table_cells > self.peak_table_cells:
            self.peak_table_cells = self.live_table_cells

    def cells_freed(self, amount: int) -> None:
        self.live_table_cells -= amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Counters plus the space gauges, as a plain dict."""
        merged = dict(self.counters)
        merged["live_table_cells"] = self.live_table_cells
        merged["peak_table_cells"] = self.peak_table_cells
        return merged


@dataclass
class CacheStats:
    """Hit/miss/eviction bookkeeping for one cache instance.

    The counters are exact (every lookup is either a hit or a miss, every
    capacity overflow is an eviction) — the plan-cache tests assert on
    them literally. Exactness must survive concurrent drivers (one
    :class:`~repro.service.QueryService` shared across threads, or the
    async front end offloading to a thread pool), so every counter update
    happens inside the instance's lock; ``+=`` on a shared int is a
    read-modify-write that loses increments under interleaving.
    """

    name: str = "cache"
    capacity: int | None = None
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def hit(self, amount: int = 1) -> None:
        with self._lock:
            self.hits += amount
        count(f"{self.name}_hits", amount)

    def miss(self, amount: int = 1) -> None:
        with self._lock:
            self.misses += amount
        count(f"{self.name}_misses", amount)

    def eviction(self, amount: int = 1) -> None:
        with self._lock:
            self.evictions += amount
        count(f"{self.name}_evictions", amount)

    def absorb(self, other: "CacheStats") -> None:
        """Fold another instance's counters into this one (used when
        aggregating across sessions and when retiring evicted ones)."""
        self.absorb_snapshot(other.snapshot())

    def absorb_snapshot(self, snapshot: dict) -> None:
        """Fold a counter snapshot (a :meth:`snapshot` dict, or a shard's
        merged stats) into this instance — the incremental form of the
        scheduler layer's barrier merge. The streaming front end calls
        this once per completed shard and reaches totals identical to
        merging all snapshots at the end: addition is associative and
        each shard's counters are folded exactly once.
        """
        with self._lock:
            self.hits += snapshot.get("hits", 0)
            self.misses += snapshot.get("misses", 0)
            self.evictions += snapshot.get("evictions", 0)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, object]:
        """A consistent point-in-time copy of the counters (taken under
        the lock, so a concurrent hit/miss can't tear the dict)."""
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
        lookups = hits + misses
        return {
            "name": self.name,
            "capacity": self.capacity,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": hits / lookups if lookups else 0.0,
        }


@dataclass
class TimingStats:
    """Observed wall-clock timings, keyed by name (one key per algorithm).

    The physical-plan specializer (:mod:`repro.service.specialize`) seeds
    its cost model from the paper's complexity bounds and then *refines*
    it online: every uncached evaluation reports ``(key, units, seconds)``
    — the abstract cost units the model predicted and the seconds the
    evaluation actually took — and the per-key exponentially-weighted
    seconds-per-unit rate corrects systematic constant-factor error in
    the seed model. Counters are lock-protected for the same reason
    :class:`CacheStats` counters are: concurrent drivers must not lose
    observations. Every observation is also mirrored into the active
    :func:`collect` collectors as ``<name>_<key>_observations`` /
    ``<name>_<key>_ns`` counters.
    """

    name: str = "timings"
    #: EMA smoothing: weight of the newest observation.
    smoothing: float = 0.2
    _rates: dict = field(default_factory=dict, repr=False)
    _counts: dict = field(default_factory=dict, repr=False)
    _totals: dict = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def observe(self, key: str, units: float, seconds: float) -> None:
        """Record one evaluation: ``units`` predicted cost units took
        ``seconds`` of wall clock. Non-positive units are clamped so a
        degenerate estimate can never poison the rate with an infinity."""
        per_unit = seconds / max(units, 1.0)
        with self._lock:
            previous = self._rates.get(key)
            if previous is None:
                self._rates[key] = per_unit
            else:
                self._rates[key] = (
                    previous + self.smoothing * (per_unit - previous)
                )
            self._counts[key] = self._counts.get(key, 0) + 1
            self._totals[key] = self._totals.get(key, 0.0) + seconds
        count(f"{self.name}_{key}_observations")
        count(f"{self.name}_{key}_ns", int(seconds * 1e9))

    def rate(self, key: str) -> float | None:
        """The observed seconds-per-unit EMA for a key, or ``None`` when
        the key has never been observed (callers must not mix observed
        rates with made-up defaults — see the specializer)."""
        with self._lock:
            return self._rates.get(key)

    def observation_count(self, key: str) -> int:
        with self._lock:
            return self._counts.get(key, 0)

    def snapshot(self) -> dict[str, dict]:
        """Per-key ``{rate, observations, total_seconds}``, copied under
        the lock."""
        with self._lock:
            return {
                key: {
                    "rate": self._rates[key],
                    "observations": self._counts.get(key, 0),
                    "total_seconds": self._totals.get(key, 0.0),
                }
                for key in self._rates
            }


@dataclass
class KernelStats:
    """Exact accounting for the output-sensitive axis kernels.

    Eight counters, each updated under the instance lock (the same
    exactness contract as :class:`CacheStats` — the thread-safety hammer
    asserts them with ``==``):

    * ``index_builds`` — :class:`repro.xml.index.NodeIndex` constructions
      (at most one per document, ever: the index cache builds under its
      lock);
    * ``index_adoptions`` — prebuilt indexes seeded into the cache by
      snapshot loads (:func:`repro.xml.index.adopt_node_index`); kept
      apart from ``index_builds`` so the one-build-per-document
      exactness stays assertable;
    * ``fused_hits`` — fused axis+name-test dispatches served by an
      output-sensitive kernel;
    * ``fallback_scans`` — dispatches that ran the paper's ``O(|D|)``
      Definition-1 scan instead (predicted output too large, or scan
      mode forced);
    * ``lazy_documents`` — column-only documents constructed by the lazy
      snapshot decode path (:class:`repro.xml.columns.ColumnDocument`);
    * ``nodes_materialized`` — boxed ``Node`` objects actually built on
      those documents, each pre counted exactly once ever (the
      materialization runs under the per-document lock). A lazy batch's
      delta is the O(output) the column path promises;
    * ``vector_program_runs`` — whole-sweep column programs executed by
      :func:`repro.axes.vec.run_program` (one per Core XPath main-path
      or backward-predicate sweep routed through the vector tier);
    * ``vector_ops`` — program ops actually executed by a vector backend
      (block-at-a-time column primitives). Ops a program delegates to a
      scalar kernel (narrow block under ``auto`` dispatch, or an axis
      without a columnar form) tick the existing ``fused_hits`` /
      ``fallback_scans`` counters instead, so the three counters
      partition a program's step work exactly.

    Every fused/fallback event is exactly one dispatched call, so
    ``fused_hits + fallback_scans`` equals the number of fused-dispatch
    calls — the invariant the EXP-AXIS counter gate checks. Events are
    mirrored into active :func:`collect` collectors as
    ``axis_index_builds`` / ``axis_index_adoptions`` /
    ``axis_fused_kernels`` / ``axis_fallback_scans``.
    """

    name: str = "axis_kernels"
    index_builds: int = 0
    index_adoptions: int = 0
    fused_hits: int = 0
    fallback_scans: int = 0
    lazy_documents: int = 0
    nodes_materialized: int = 0
    vector_program_runs: int = 0
    vector_ops: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def index_build(self, amount: int = 1) -> None:
        with self._lock:
            self.index_builds += amount
        count("axis_index_builds", amount)

    def index_adoption(self, amount: int = 1) -> None:
        with self._lock:
            self.index_adoptions += amount
        count("axis_index_adoptions", amount)

    def fused(self, amount: int = 1) -> None:
        with self._lock:
            self.fused_hits += amount
        count("axis_fused_kernels", amount)

    def fallback(self, amount: int = 1) -> None:
        with self._lock:
            self.fallback_scans += amount
        count("axis_fallback_scans", amount)

    def lazy_document(self, amount: int = 1) -> None:
        with self._lock:
            self.lazy_documents += amount
        count("axis_lazy_documents", amount)

    def node_materialized(self, amount: int = 1) -> None:
        with self._lock:
            self.nodes_materialized += amount
        count("axis_nodes_materialized", amount)

    def vector_run(self, amount: int = 1) -> None:
        with self._lock:
            self.vector_program_runs += amount
        count("axis_vector_programs", amount)

    def vector_op(self, amount: int = 1) -> None:
        with self._lock:
            self.vector_ops += amount
        count("axis_vector_ops", amount)

    def snapshot(self) -> dict[str, int]:
        """A consistent point-in-time copy of the counters."""
        with self._lock:
            return {
                "index_builds": self.index_builds,
                "index_adoptions": self.index_adoptions,
                "fused_hits": self.fused_hits,
                "fallback_scans": self.fallback_scans,
                "lazy_documents": self.lazy_documents,
                "nodes_materialized": self.nodes_materialized,
                "vector_program_runs": self.vector_program_runs,
                "vector_ops": self.vector_ops,
            }


#: The process-wide kernel counters: the node-index cache and the fused
#: axis dispatch are process-global (indexes are per *document*, not per
#: service), so their exact accounting is too. CLI ``batch --stats``
#: prints this; the thread-safety hammer asserts it.
axis_kernel_stats = KernelStats()


@dataclass
class BatchPlanStats:
    """Exact accounting for one batch-shared step DAG
    (:mod:`repro.service.batchplan`).

    One instance per :meth:`~repro.service.QueryService.evaluate_many`
    call with sharing on, so the counters need no delta arithmetic. The
    same exactness contract as :class:`CacheStats` holds, with two
    reconciliation identities the tests and the EXP-MQO counter gate
    assert literally:

    * ``cells == memo_hits + shared_evaluations + fallback_cells`` —
      every shared (plan, document) cell is either served by the session
      memo, evaluated as a residual over a materialized prefix, or (on a
      per-cell error) fell back to an independent evaluation;
    * ``steps_saved == steps_independent - steps_shared >= 0`` whenever
      ``fallback_cells == 0`` — prefixes are materialized lazily (only
      when a consumer actually misses the memo) and each is computed as
      a residual of its longest materialized proper prefix, so the
      telescoped prefix work assigned to a miss cell never exceeds the
      steps independent evaluation would have spent on that cell.
      Sharing only ever removes work.

    ``steps_independent`` counts, for each shared evaluation, the
    location steps an independent evaluation of that cell would have
    applied; ``steps_shared`` counts the residual steps actually applied
    plus every materialized-prefix step (each prefix computed at most
    once per document, through the memo). Plan-level fields
    (``sharable_plans``/``shared_plans``/``independent_plans``/
    ``prefix_nodes``) describe the DAG built for the batch; merged
    sharded snapshots sum them across shards.
    """

    name: str = "batch_plan"
    sharable_plans: int = 0
    shared_plans: int = 0
    independent_plans: int = 0
    prefix_nodes: int = 0
    cells: int = 0
    memo_hits: int = 0
    shared_evaluations: int = 0
    fallback_cells: int = 0
    prefix_evaluations: int = 0
    prefix_memo_hits: int = 0
    steps_independent: int = 0
    steps_shared: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def plan_counts(
        self, sharable: int, shared: int, independent: int, prefixes: int
    ) -> None:
        """Record the DAG shape chosen at build time."""
        with self._lock:
            self.sharable_plans += sharable
            self.shared_plans += shared
            self.independent_plans += independent
            self.prefix_nodes += prefixes

    def cell(self, amount: int = 1) -> None:
        with self._lock:
            self.cells += amount
        count(f"{self.name}_cells", amount)

    def memo_hit(self, amount: int = 1) -> None:
        with self._lock:
            self.memo_hits += amount
        count(f"{self.name}_memo_hits", amount)

    def shared_evaluation(self, total_steps: int, residual_steps: int) -> None:
        """One miss cell evaluated as a residual: independent evaluation
        would have applied ``total_steps``; sharing applied only the
        ``residual_steps`` past the materialized base prefix."""
        with self._lock:
            self.shared_evaluations += 1
            self.steps_independent += total_steps
            self.steps_shared += residual_steps
        count(f"{self.name}_shared_evaluations")

    def fallback(self, amount: int = 1) -> None:
        with self._lock:
            self.fallback_cells += amount
        count(f"{self.name}_fallbacks", amount)

    def prefix_evaluation(self, steps: int) -> None:
        """One materialized prefix actually computed (memo miss), as a
        residual of ``steps`` location steps over its parent prefix."""
        with self._lock:
            self.prefix_evaluations += 1
            self.steps_shared += steps
        count(f"{self.name}_prefix_evaluations")

    def prefix_memo_hit(self, amount: int = 1) -> None:
        with self._lock:
            self.prefix_memo_hits += amount
        count(f"{self.name}_prefix_memo_hits", amount)

    @property
    def steps_saved(self) -> int:
        with self._lock:
            return self.steps_independent - self.steps_shared

    def absorb_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. one shard's batch-plan
        stats) into this instance; derived fields are recomputed, never
        summed."""
        if not snapshot:
            return
        with self._lock:
            for key in (
                "sharable_plans",
                "shared_plans",
                "independent_plans",
                "prefix_nodes",
                "cells",
                "memo_hits",
                "shared_evaluations",
                "fallback_cells",
                "prefix_evaluations",
                "prefix_memo_hits",
                "steps_independent",
                "steps_shared",
            ):
                setattr(self, key, getattr(self, key) + snapshot.get(key, 0))

    def snapshot(self) -> dict[str, int]:
        """A consistent point-in-time copy of the counters, including the
        derived ``steps_saved``."""
        with self._lock:
            merged = {
                "sharable_plans": self.sharable_plans,
                "shared_plans": self.shared_plans,
                "independent_plans": self.independent_plans,
                "prefix_nodes": self.prefix_nodes,
                "cells": self.cells,
                "memo_hits": self.memo_hits,
                "shared_evaluations": self.shared_evaluations,
                "fallback_cells": self.fallback_cells,
                "prefix_evaluations": self.prefix_evaluations,
                "prefix_memo_hits": self.prefix_memo_hits,
                "steps_independent": self.steps_independent,
                "steps_shared": self.steps_shared,
            }
        merged["steps_saved"] = (
            merged["steps_independent"] - merged["steps_shared"]
        )
        return merged


@dataclass
class ServeStats:
    """Exact accounting for the serving daemon (:mod:`repro.serve`).

    The daemon keeps one instance per client plus one global instance
    and bumps both on every event, so the global counters are the exact
    per-client sums at all times (the EXP-SERVE gate asserts this with
    ``==``). The same exactness contract as :class:`CacheStats` holds —
    every update happens under the instance lock — with two
    reconciliation identities the tests and the benchmark gate assert
    literally against protocol-level request counts:

    * ``queries == admitted + rejected_overload + rejected_rate +
      rejected_quota + rejected_draining + request_errors`` — every
      query that reached the admission pipeline was admitted, rejected
      (with a typed reason), or failed request validation *before*
      admission (unknown document, unparsable query);
    * ``admitted == completed + deadlined + failed`` — every admitted
      query produced exactly one response: its value, a typed
      ``DEADLINE`` marker, or a typed evaluation error. Nothing is ever
      admitted and then lost — the zero-lost-responses drain gate is
      this identity plus a client-side response count.

    ``degraded`` counts admissions that were priced over budget and
    downgraded (cheapest admissible algorithm, batch sharing dropped)
    instead of rejected — a subset of ``admitted``. ``drained`` counts
    responses (completed, deadlined, or failed) delivered while the
    daemon was draining — a subset of the outcome counters, never a
    separate outcome.
    """

    name: str = "serve"
    requests: int = 0
    malformed: int = 0
    queries: int = 0
    admitted: int = 0
    degraded: int = 0
    rejected_overload: int = 0
    rejected_rate: int = 0
    rejected_quota: int = 0
    rejected_draining: int = 0
    request_errors: int = 0
    completed: int = 0
    deadlined: int = 0
    failed: int = 0
    drained: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def request(self, amount: int = 1) -> None:
        with self._lock:
            self.requests += amount
        count(f"{self.name}_requests", amount)

    def malformed_frame(self, amount: int = 1) -> None:
        with self._lock:
            self.malformed += amount
        count(f"{self.name}_malformed", amount)

    def query(self, amount: int = 1) -> None:
        """One query reached the admission pipeline."""
        with self._lock:
            self.queries += amount
        count(f"{self.name}_queries", amount)

    def admit(self, degraded: bool = False) -> None:
        with self._lock:
            self.admitted += 1
            if degraded:
                self.degraded += 1
        count(f"{self.name}_admitted")

    def reject(self, reason: str) -> None:
        """One typed pre-evaluation rejection: ``overload`` (admission),
        ``rate`` (token bucket), ``quota`` (in-flight cap), or
        ``draining`` (shutdown in progress)."""
        field_name = f"rejected_{reason}"
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + 1)
        count(f"{self.name}_{field_name}")

    def request_error(self, amount: int = 1) -> None:
        """One query refused before admission for a request-shape error
        (unknown document, unparsable query, bad arguments)."""
        with self._lock:
            self.request_errors += amount
        count(f"{self.name}_request_errors", amount)

    def complete(self, drained: bool = False) -> None:
        with self._lock:
            self.completed += 1
            if drained:
                self.drained += 1
        count(f"{self.name}_completed")

    def deadline(self, drained: bool = False) -> None:
        with self._lock:
            self.deadlined += 1
            if drained:
                self.drained += 1
        count(f"{self.name}_deadlined")

    def fail(self, drained: bool = False) -> None:
        with self._lock:
            self.failed += 1
            if drained:
                self.drained += 1
        count(f"{self.name}_failed")

    @property
    def rejected(self) -> int:
        with self._lock:
            return (
                self.rejected_overload
                + self.rejected_rate
                + self.rejected_quota
                + self.rejected_draining
            )

    def absorb_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this instance (derived
        fields recomputed, never summed)."""
        with self._lock:
            for key in (
                "requests",
                "malformed",
                "queries",
                "admitted",
                "degraded",
                "rejected_overload",
                "rejected_rate",
                "rejected_quota",
                "rejected_draining",
                "request_errors",
                "completed",
                "deadlined",
                "failed",
                "drained",
            ):
                setattr(self, key, getattr(self, key) + snapshot.get(key, 0))

    def snapshot(self) -> dict[str, int]:
        """A consistent point-in-time copy, including the derived
        ``rejected`` total."""
        with self._lock:
            merged = {
                "requests": self.requests,
                "malformed": self.malformed,
                "queries": self.queries,
                "admitted": self.admitted,
                "degraded": self.degraded,
                "rejected_overload": self.rejected_overload,
                "rejected_rate": self.rejected_rate,
                "rejected_quota": self.rejected_quota,
                "rejected_draining": self.rejected_draining,
                "request_errors": self.request_errors,
                "completed": self.completed,
                "deadlined": self.deadlined,
                "failed": self.failed,
                "drained": self.drained,
            }
        merged["rejected"] = (
            merged["rejected_overload"]
            + merged["rejected_rate"]
            + merged["rejected_quota"]
            + merged["rejected_draining"]
        )
        return merged


# Active collectors; almost always empty, occasionally one deep.
_active: list[Stats] = []


def count(name: str, amount: int = 1) -> None:
    """Bump a counter on every active collector."""
    if _active:
        for collector in _active:
            collector.bump(name, amount)


def table_cells_allocated(amount: int) -> None:
    """Record allocation of ``amount`` context-value-table cells."""
    if _active:
        for collector in _active:
            collector.cells_allocated(amount)


def table_cells_freed(amount: int) -> None:
    """Record release of ``amount`` context-value-table cells."""
    if _active:
        for collector in _active:
            collector.cells_freed(amount)


def cell_weight(value) -> int:
    """Space weight of one table entry: node-set values occupy one cell
    per member (plus the row itself) — this is what makes an inner-path
    relation ``⊆ dom × 2^dom`` cost ``Θ(|D|²)`` in the paper's space
    accounting, while a boolean/number row costs ``O(1)``."""
    if isinstance(value, (set, frozenset, list, tuple)):
        return 1 + len(value)
    return 1


@contextlib.contextmanager
def collect():
    """Context manager that gathers stats for its dynamic extent."""
    collector = Stats()
    _active.append(collector)
    try:
        yield collector
    finally:
        _active.remove(collector)
