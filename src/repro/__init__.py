"""repro — a reproduction of Gottlob, Koch & Pichler,
"XPath Query Evaluation: Improving Time and Space Efficiency" (ICDE 2003).

A complete, from-scratch XPath 1.0 query evaluation stack:

* an XML substrate (parser, data model, serializer) — :mod:`repro.xml`;
* linear-time axis set functions and inverses — :mod:`repro.axes`;
* a full XPath 1.0 front end with the paper's normalizations and the
  ``Relev`` analysis — :mod:`repro.xpath`;
* five evaluation algorithms, from the exponential "contemporary engine"
  baseline to the paper's MINCONTEXT and OPTMINCONTEXT — :mod:`repro.core`;
* an engine facade with fragment-aware dispatch — :mod:`repro.engine`;
* a service layer with a compiled-plan LRU cache and a batch evaluation
  API — :mod:`repro.service`.

Quickstart (one document, one query at a time)::

    from repro import XPathEngine, parse_document

    doc = parse_document("<lib><book year='2001'/><book year='2003'/></lib>")
    engine = XPathEngine(doc)
    recent = engine.evaluate("//book[@year > 2002]")

Serving workloads — the service layer
-------------------------------------

The paper's complexity theorems bound *evaluation* cost; the per-call
frontend pipeline (parse → normalize → rewrite → relevance → fragment
dispatch) is pure overhead on repeated queries. :class:`QueryService`
amortizes it with a *two-stage* compiler: stage 1 turns each distinct
``(query, options)`` pair into a document-independent
:class:`LogicalPlan` held in an LRU cache; stage 2 specializes ``auto``
evaluations per document — a cost model over the document's profile
(size, depth, fanout, text ratio) picks the cheapest of the paper's
worst-case-bounded evaluators, refined online by observed timings
(``specialize=False`` restores the static fragment dispatch). Each
document gets a session that memoizes ``(plan, context) → result``. The
batch API evaluates whole workloads in one call::

    from repro import QueryService, parse_document

    service = QueryService(plan_capacity=128)
    documents = [parse_document(source) for source in sources]
    batch = service.evaluate_many(
        ["//book/title", "//book[price > 20]", "//book/title"],  # dupes are free
        documents,
    )
    batch.value(0, 1)          # document 0, second query
    batch.algorithms           # resolved per-query algorithm (fragment dispatch)
    service.cache_stats()      # {'plan_cache': {...hits/misses/hit_rate...}, ...}

The same machinery backs the CLI's ``plan`` (inspect a compiled plan)
and ``batch`` (evaluate many queries × many documents, with cache
statistics) subcommands — see ``python -m repro plan --help``.

Scaling out — sharded execution and the scheduler seam
------------------------------------------------------

Batches shard by document: ``evaluate_many(..., workers=4,
shard_by="size-balanced", backend="process")`` partitions the documents
across workers (round-robin, or balanced on node count), evaluates the
shards concurrently, and merges the per-shard results with exact
cache-statistics aggregation. The *backend* names a pluggable
:class:`~repro.service.scheduler.Scheduler` — ``serial`` (reference),
``thread`` (in-process overlap), ``process`` (true parallelism;
documents are rebuilt per worker from serialized markup and node-set
results rebound to the caller's trees), or ``async`` (a coroutine
scheduler). The CLI exposes the same knobs: ``repro-xpath batch ...
--workers 4 --shard-by size-balanced --backend process``. See
:mod:`repro.service.scheduler`.

Serving from an event loop — the async front end
------------------------------------------------

:class:`QueryService` is thread-safe, and :class:`AsyncQueryService`
puts coroutines in front of it: ``await evaluate(...)``, ``await
evaluate_many(..., workers=4)``, and ``stream_many(...)`` — an async
iterator that yields each (query, document) result as its shard
completes, so consumers see first results while the slowest shard is
still evaluating. ``repro-xpath batch ... --backend async --stream`` is
the CLI form. See :mod:`repro.service.async_service`.
"""

from repro.engine import ALGORITHMS, CompiledPlan, CompiledQuery, XPathEngine
from repro.service import (
    DocumentProfile,
    LogicalPlan,
    PhysicalPlan,
    PlanSpecializer,
    ShardTimingHistory,
    document_profile,
)
from repro.errors import (
    EvaluationError,
    FragmentViolationError,
    ReproError,
    UnboundVariableError,
    UnknownAlgorithmError,
    UnknownFunctionError,
    XMLSyntaxError,
    XPathSyntaxError,
    XPathTypeError,
)
from repro.core.context import Context
from repro.service import (
    AsyncQueryService,
    BatchResult,
    BatchStream,
    DocumentSession,
    PlanCache,
    PlanOptions,
    QueryPlanner,
    QueryService,
    ShardedExecutor,
    StreamItem,
)
from repro.xml.builder import DocumentBuilder, element, text
from repro.xml.document import Document, Node, NodeKind
from repro.xml.parser import parse_document, parse_fragment
from repro.xml.serializer import serialize

__version__ = "1.1.0"

__all__ = [
    "ALGORITHMS",
    "AsyncQueryService",
    "BatchResult",
    "BatchStream",
    "CompiledPlan",
    "CompiledQuery",
    "Context",
    "Document",
    "DocumentBuilder",
    "DocumentProfile",
    "DocumentSession",
    "EvaluationError",
    "FragmentViolationError",
    "LogicalPlan",
    "Node",
    "NodeKind",
    "PhysicalPlan",
    "PlanCache",
    "PlanOptions",
    "PlanSpecializer",
    "QueryPlanner",
    "QueryService",
    "ReproError",
    "ShardTimingHistory",
    "ShardedExecutor",
    "StreamItem",
    "document_profile",
    "UnboundVariableError",
    "UnknownAlgorithmError",
    "UnknownFunctionError",
    "XMLSyntaxError",
    "XPathEngine",
    "XPathSyntaxError",
    "XPathTypeError",
    "element",
    "parse_document",
    "parse_fragment",
    "serialize",
    "text",
    "__version__",
]
