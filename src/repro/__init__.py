"""repro — a reproduction of Gottlob, Koch & Pichler,
"XPath Query Evaluation: Improving Time and Space Efficiency" (ICDE 2003).

A complete, from-scratch XPath 1.0 query evaluation stack:

* an XML substrate (parser, data model, serializer) — :mod:`repro.xml`;
* linear-time axis set functions and inverses — :mod:`repro.axes`;
* a full XPath 1.0 front end with the paper's normalizations and the
  ``Relev`` analysis — :mod:`repro.xpath`;
* five evaluation algorithms, from the exponential "contemporary engine"
  baseline to the paper's MINCONTEXT and OPTMINCONTEXT — :mod:`repro.core`;
* an engine facade with fragment-aware dispatch — :mod:`repro.engine`.

Quickstart::

    from repro import XPathEngine, parse_document

    doc = parse_document("<lib><book year='2001'/><book year='2003'/></lib>")
    engine = XPathEngine(doc)
    recent = engine.evaluate("//book[@year > 2002]")
"""

from repro.engine import ALGORITHMS, CompiledQuery, XPathEngine
from repro.errors import (
    EvaluationError,
    FragmentViolationError,
    ReproError,
    UnboundVariableError,
    UnknownFunctionError,
    XMLSyntaxError,
    XPathSyntaxError,
    XPathTypeError,
)
from repro.core.context import Context
from repro.xml.builder import DocumentBuilder, element, text
from repro.xml.document import Document, Node, NodeKind
from repro.xml.parser import parse_document, parse_fragment
from repro.xml.serializer import serialize

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "CompiledQuery",
    "Context",
    "Document",
    "DocumentBuilder",
    "EvaluationError",
    "FragmentViolationError",
    "Node",
    "NodeKind",
    "ReproError",
    "UnboundVariableError",
    "UnknownFunctionError",
    "XMLSyntaxError",
    "XPathEngine",
    "XPathSyntaxError",
    "XPathTypeError",
    "element",
    "parse_document",
    "parse_fragment",
    "serialize",
    "text",
    "__version__",
]
