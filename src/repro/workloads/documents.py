"""Document generators.

All generators return finalized :class:`repro.xml.document.Document`
instances and are deterministic given their parameters (``random_document``
takes an explicit ``random.Random``).
"""

from __future__ import annotations

import random

from repro.xml.builder import DocumentBuilder
from repro.xml.document import Document

#: The Figure 2 document, verbatim.
RUNNING_EXAMPLE_XML = """\
<?xml version="1.0"?>
<a id="10">
  <b id="11">
    <c id="12">21 22</c>
    <c id="13">23 24</c>
    <d id="14">100</d>
  </b>
  <b id="21">
    <c id="22">11 12</c>
    <d id="23">13 14</d>
    <d id="24">100</d>
  </b>
</a>
"""


def running_example_document() -> Document:
    """The paper's Figure 2 sample document.

    Parsed with whitespace-only text nodes dropped so that ``dom``
    matches the paper's reading: nine elements (plus the document node
    and the data text nodes).
    """
    from repro.xml.parser import parse_document

    return parse_document(RUNNING_EXAMPLE_XML, keep_whitespace_text=False)


def doubling_document() -> Document:
    """``<a><b/><b/></a>`` — the minimal document on which the
    ``parent/child`` doubling query family blows naive engines up
    (EXP-X1; the [11] experiment shape)."""
    builder = DocumentBuilder()
    builder.start("a", id="0")
    builder.leaf("b", attributes={"id": "1"})
    builder.leaf("b", attributes={"id": "2"})
    builder.end()
    return builder.build()


def balanced_tree(depth: int, fanout: int, tags: tuple[str, ...] = ("a", "b", "c")) -> Document:
    """A complete ``fanout``-ary tree of the given depth.

    Tag names cycle through ``tags`` by level; every element carries a
    numeric id and a small text payload, so value comparisons and ``id()``
    have something to chew on.
    """
    builder = DocumentBuilder()
    counter = [0]

    def grow(level: int) -> None:
        tag = tags[level % len(tags)]
        counter[0] += 1
        number = counter[0]
        builder.start(tag, id=str(number))
        if level + 1 < depth:
            for _ in range(fanout):
                grow(level + 1)
        else:
            builder.text(str(number * 10))
        builder.end()

    grow(0)
    return builder.build()


def deep_chain(length: int, tags: tuple[str, ...] = ("a", "b")) -> Document:
    """A single path of ``length`` nested elements — maximal depth for a
    given ``|D|``; stresses ancestor/descendant propagation."""
    builder = DocumentBuilder()
    for index in range(length):
        builder.start(tags[index % len(tags)], id=str(index))
    builder.text("100")
    for _ in range(length):
        builder.end()
    return builder.build()


def wide_tree(width: int, tag: str = "item", root: str = "list") -> Document:
    """One root with ``width`` children — maximal fanout; stresses the
    sibling axes and position predicates (``cs`` equals ``width``)."""
    builder = DocumentBuilder()
    builder.start(root, id="root")
    for index in range(width):
        builder.leaf(tag, str(index), attributes={"id": str(index + 1)})
    builder.end()
    return builder.build()


def numbered_line(length: int, tag: str = "n") -> Document:
    """``<line><n>1</n><n>2</n>...</line>`` — a flat sequence of numbered
    elements, the canonical Wadler-fragment workload (value and position
    predicates over a line of items)."""
    builder = DocumentBuilder()
    builder.start("line", id="line")
    for index in range(1, length + 1):
        builder.leaf(tag, str(index), attributes={"id": str(index)})
    builder.end()
    return builder.build()


def book_catalog(books: int, chapters_per_book: int = 3) -> Document:
    """A realistic bibliography document (the domain XPath was designed
    for): books with attributes, nested authors and chapters, prices, and
    cross-references via ``ref`` elements whose text holds ids."""
    builder = DocumentBuilder()
    builder.start("catalog", id="catalog")
    for number in range(1, books + 1):
        year = 1990 + (number * 7) % 30
        price = 10 + (number * 13) % 90
        builder.start(
            "book",
            id=f"bk{number}",
            year=str(year),
            lang="en" if number % 3 else "de",
        )
        builder.leaf("title", f"Title {number}")
        builder.start("authors")
        builder.leaf("author", f"Author {number % 7}")
        if number % 2:
            builder.leaf("author", f"Author {(number + 3) % 7}")
        builder.end()
        builder.leaf("price", str(price))
        for chapter in range(1, chapters_per_book + 1):
            builder.start("chapter", id=f"bk{number}c{chapter}", num=str(chapter))
            builder.leaf("heading", f"Chapter {chapter}")
            builder.leaf("pages", str(10 + (number * chapter) % 40))
            builder.end()
        if number > 1:
            builder.leaf("ref", f"bk{number - 1}")
        builder.end()
    builder.end()
    return builder.build()


def random_document(
    rng: random.Random,
    max_nodes: int = 30,
    tags: tuple[str, ...] = ("a", "b", "c", "d"),
    text_values: tuple[str, ...] = ("1", "2", "100", "x", ""),
    attribute_probability: float = 0.4,
) -> Document:
    """A random tree for differential and property-based testing.

    Shape, tags, attributes, and text are all drawn from ``rng``; element
    ids are sequential so ``id()`` queries can hit. Deterministic given
    the generator state.
    """
    builder = DocumentBuilder()
    remaining = [max(1, max_nodes)]
    counter = [0]

    def grow(depth: int) -> None:
        counter[0] += 1
        remaining[0] -= 1
        attributes = {"id": str(counter[0])}
        if rng.random() < attribute_probability:
            attributes["kind"] = rng.choice(tags)
        builder.start(rng.choice(tags), attributes)
        if rng.random() < 0.5:
            builder.text(rng.choice(text_values))
        while remaining[0] > 0 and depth < 6 and rng.random() < 0.55:
            grow(depth + 1)
        builder.end()

    grow(0)
    return builder.build()
