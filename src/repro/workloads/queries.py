"""Query-family generators for the benchmark sweeps and random testing.

Each family is keyed to one experiment in DESIGN.md §4:

* :func:`doubling_query` — EXP-X1, the exponential baseline;
* :func:`core_family` — EXP-T13, linear-time Core XPath;
* :func:`wadler_family` — EXP-T10, the Extended Wadler Fragment;
* :func:`position_heavy_query` — EXP-T7, full-XPath MINCONTEXT;
* :func:`running_example_query` / :func:`example9_query` — the paper's
  worked examples;
* :func:`random_query` — the differential-testing fuzzer;
* :func:`random_core_query` / :func:`random_full_query` — the Core-only
  and full-XPath grammars behind the six-way differential fuzz suite.
"""

from __future__ import annotations

import random


def running_example_query() -> str:
    """Section 2.4's query ``e`` (Figures 3–5)."""
    return "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]"


def example9_query() -> str:
    """Example 9's query ``Q`` (Figure 6)."""
    return (
        "/child::a/descendant::*[boolean(following::d["
        "(position() != last()) and (preceding-sibling::*/preceding::* = 100)"
        "]/following::d)]"
    )


def doubling_query(pairs: int) -> str:
    """``//b`` followed by ``pairs`` ``parent::a/child::b`` bounces.

    On :func:`repro.workloads.documents.doubling_document`, naive
    list-based engines do ``Θ(2^pairs)`` work while the polynomial
    algorithms stay flat — the [11] experiment that motivates the paper.
    """
    query = "descendant-or-self::node()/child::a/child::b"
    query += "/parent::a/child::b" * pairs
    return "/" + query


def core_family(depth: int, with_predicates: bool = True) -> str:
    """A Core XPath query of ``depth`` steps with nested path predicates.

    Example (depth 3): ``/descendant-or-self::node()/child::a[child::b]/
    child::b[not(child::c)]/child::c`` — axes, node tests, and
    and/or/not over location paths, nothing else (Definition 12).
    """
    tags = ("a", "b", "c")
    steps = ["descendant-or-self::node()"]
    for level in range(depth):
        tag = tags[level % 3]
        next_tag = tags[(level + 1) % 3]
        if with_predicates and level % 2 == 0:
            steps.append(f"child::{tag}[child::{next_tag} or self::{tag}]")
        elif with_predicates:
            steps.append(f"child::{tag}[not(child::{tag})]")
        else:
            steps.append(f"child::{tag}")
    return "/" + "/".join(steps)


def wadler_family(levels: int) -> str:
    """An Extended-Wadler query with position arithmetic and value tests.

    Built for :func:`repro.workloads.documents.numbered_line`: every step
    walks the sibling line and keeps a large fraction of it alive, so the
    position loops and backward propagations do real work at every size.
    Ingredients: existential value comparisons (``π RelOp const``),
    position/last arithmetic, and nested sibling paths — Restrictions 1–3
    all satisfied.
    """
    predicates = [
        "position() > last()*0.25",
        "position() != last()",
        "following-sibling::* = 100 or position() = 1",
        "self::* >= 2",
    ]
    steps = ["child::*", f"child::*[{predicates[0]}]"]
    for level in range(max(0, levels)):
        steps.append(f"following-sibling::*[{predicates[(level + 1) % len(predicates)]}]")
    return "/" + "/".join(steps)


def position_heavy_query(levels: int) -> str:
    """Full-XPath query outside the Wadler fragment (uses ``count``),
    exercising MINCONTEXT's (cp, cs) loop — the EXP-T7 workload."""
    steps = []
    for level in range(max(1, levels)):
        if level % 2 == 0:
            steps.append("descendant::*[position() > count(child::*)]")
        else:
            steps.append("child::*[position() != last() or count(descendant::*) > 1]")
    return "/" + "/".join(steps)


# ----------------------------------------------------------------------
# Random query generation (differential testing)
# ----------------------------------------------------------------------

_AXES = (
    "self",
    "child",
    "parent",
    "descendant",
    "ancestor",
    "descendant-or-self",
    "ancestor-or-self",
    "following",
    "preceding",
    "following-sibling",
    "preceding-sibling",
)

_TESTS = ("a", "b", "c", "d", "*", "node()", "text()")


def random_query(
    rng: random.Random,
    max_steps: int = 4,
    max_depth: int = 2,
    allow_positions: bool = True,
) -> str:
    """Generate a random (always grammatical, always type-correct) query.

    The distribution is tuned so most queries return nonempty results on
    the :func:`repro.workloads.documents.random_document` trees: child and
    descendant axes dominate, predicates are rare-ish and shallow.
    """
    return _random_path(rng, max_steps, max_depth, absolute=True)


def _random_path(rng: random.Random, max_steps: int, depth: int, absolute: bool) -> str:
    steps = []
    for _ in range(rng.randint(1, max(1, max_steps))):
        axis = rng.choice(_AXES if rng.random() < 0.4 else ("child", "descendant", "descendant-or-self", "self"))
        test = rng.choice(_TESTS)
        if test in ("node()", "text()") or rng.random() < 0.25:
            step = f"{axis}::{test}"
        else:
            step = f"{axis}::{test}"
        if depth > 0 and rng.random() < 0.45:
            step += f"[{_random_predicate(rng, depth - 1)}]"
        steps.append(step)
    body = "/".join(steps)
    return ("/" + body) if absolute else body


def random_core_query(
    rng: random.Random,
    max_steps: int = 4,
    max_depth: int = 2,
) -> str:
    """Generate a random query inside Core XPath (Definition 12).

    The grammar is exactly the fragment's: absolute location paths whose
    step predicates are and/or/not combinations of (relative or absolute)
    location paths — no position(), no functions, no comparisons. Every
    generated query is therefore evaluable by all six algorithms,
    including the linear-time ``corexpath`` evaluator, which makes this
    the generator behind the six-way differential fuzz suite.
    """
    return _random_core_path(rng, max_steps, max_depth, absolute=True)


def _random_grammar_path(
    rng: random.Random,
    max_steps: int,
    depth: int,
    absolute: bool,
    predicate_fn,
    predicate_probability: float,
) -> str:
    """Shared step/axis shape of the Core and full grammars; only the
    predicate pool (and how often one is attached) differs."""
    steps = []
    for _ in range(rng.randint(1, max(1, max_steps))):
        axis = rng.choice(
            _AXES
            if rng.random() < 0.4
            else ("child", "descendant", "descendant-or-self", "self")
        )
        step = f"{axis}::{rng.choice(_TESTS)}"
        if depth > 0 and rng.random() < predicate_probability:
            step += f"[{predicate_fn(rng, depth - 1)}]"
        steps.append(step)
    body = "/".join(steps)
    return ("/" + body) if absolute else body


def _random_core_path(
    rng: random.Random, max_steps: int, depth: int, absolute: bool
) -> str:
    return _random_grammar_path(
        rng, max_steps, depth, absolute, _random_core_predicate, 0.4
    )


def _random_core_predicate(rng: random.Random, depth: int) -> str:
    choice = rng.random()
    if choice < 0.55 or depth <= 0:
        return _random_core_path(rng, 2, depth, absolute=rng.random() < 0.15)
    if choice < 0.75:
        left = _random_core_predicate(rng, depth - 1)
        right = _random_core_predicate(rng, depth - 1)
        return f"{left} {rng.choice(('and', 'or'))} {right}"
    return f"not({_random_core_predicate(rng, depth - 1)})"


def random_full_query(
    rng: random.Random,
    max_steps: int = 4,
    max_depth: int = 2,
    variables: dict[str, object] | None = None,
    nodeset_names: tuple = (),
) -> str:
    """Generate a random full-XPath query: the Core grammar of
    :func:`random_core_query` extended with ``position()``/``last()``
    (including ``+ - * div mod`` arithmetic), ``count()``, the string
    function library (``contains``, ``starts-with``, ``substring``,
    ``string-length``, ``normalize-space``, ``concat``, ``translate``),
    the ``id`` pseudo-axis (``id('k')``, ``id(π)``, nested ``id(id(…))``
    — see :func:`_random_id_predicate`), top-level union
    (``path | path``), union-of-paths *predicates* whose arms may be
    absolute (``[π₁ | /π₂]`` — see :func:`_random_union_predicate`), and
    — when ``variables`` is given — ``$v`` variable references.

    ``variables`` is a *mutable* dict the generator both reads and
    writes: the first time a name is drawn, a scalar binding (number or
    string, matched to the reference's type context) is generated into
    the dict; later draws of the same name reuse the recorded value, so
    one dict accumulated across a corpus stays consistent for every
    query in it. Callers evaluate the corpus with exactly that dict as
    the engine/service bindings. ``None`` (the default) disables
    variable references entirely, keeping the pre-existing grammar.

    ``nodeset_names`` (requires ``variables``) additionally lets
    predicates reference *node-set-valued* variables: for each name
    drawn, the generator records an **empty-tuple placeholder** in
    ``variables`` — the generator cannot invent document nodes, so the
    caller must rebind each listed name to a real node-set of the
    document under test before evaluating (e.g.
    ``bindings["ns"] = engine.evaluate("//b")``). Node-set bindings are
    evaluable by the serial/thread/async backends; the process backend
    rejects them by construction (nodes cannot cross the process
    boundary).

    Every query is grammatical and type-correct, so it is evaluable by
    the five full-XPath algorithms; a fraction of the distribution stays
    inside Core XPath (predicates drawn from the core pool), so the
    differential fuzz suite can apply a *corexpath-aware skip* — run all
    six algorithms when the compiled plan classifies as Core, five
    otherwise — instead of partitioning the corpus by generator. The new
    forms never misclassify: a top-level union normalizes to a
    :class:`~repro.xpath.ast.Union` (not a location path, hence outside
    Core), and variable references only occur inside full-pool
    comparison/function predicates, which are non-Core already.
    """
    query = _random_full_path(
        rng, max_steps, max_depth, absolute=True, variables=variables,
        nodeset_names=nodeset_names,
    )
    if rng.random() < 0.18:
        query += " | " + _random_full_path(
            rng, max(1, max_steps - 1), max_depth, absolute=True,
            variables=variables, nodeset_names=nodeset_names,
        )
    return query


def _random_full_path(
    rng: random.Random,
    max_steps: int,
    depth: int,
    absolute: bool,
    variables: dict[str, object] | None = None,
    nodeset_names: tuple = (),
) -> str:
    def predicate(rng: random.Random, depth: int) -> str:
        return _random_full_predicate(rng, depth, variables, nodeset_names)

    return _random_grammar_path(rng, max_steps, depth, absolute, predicate, 0.45)


#: String constants the string-function predicates probe for; chosen to
#: sometimes match the workload documents' text/ids ('1', '100', 'x', ...).
_FULL_STRINGS = ("1", "2", "100", "x", "0")

#: Id tokens the ``id()`` predicates probe for — chosen to sometimes hit
#: the sequential ids of :func:`repro.workloads.documents.random_document`
#: (every element carries one), the running example's ids (10–24), and
#: the wide/balanced trees' numeric ids.
_ID_TOKENS = ("1", "2", "3", "4", "7", "10", "12", "14", "23")


def _random_id_predicate(rng: random.Random) -> str:
    """A predicate exercising the ``id`` pseudo-axis of Section 4 (the
    ROADMAP fuzz frontier): ``id(s)`` on a string stays a function call,
    ``id(π)`` on a node-set normalizes to a pseudo-axis step, and
    nesting chains the steps (``id(id(...))`` → ``.../id/id``). All the
    workload document generators assign id attributes, so these forms
    dereference real nodes a useful fraction of the time. Every form is
    outside Core XPath (the pseudo-axis is not in Definition 12), which
    the corexpath-aware differential skip handles by classification."""
    token = rng.choice(_ID_TOKENS)
    choice = rng.random()
    if choice < 0.30:
        tokens = " ".join(rng.sample(_ID_TOKENS, rng.randint(1, 2)))
        return f"id('{tokens}')"
    if choice < 0.50:
        comparator = rng.choice(("=", ">", "<", ">="))
        return f"count(id('{token}')) {comparator} {rng.randint(0, 2)}"
    if choice < 0.70:
        return "id(self::node())"
    if choice < 0.85:
        return f"id(child::*)/self::{rng.choice(('a', 'b', 'c', 'd', '*'))}"
    return f"id(id('{token}'))"

def _random_union_predicate(rng: random.Random, depth: int) -> str:
    """A union-of-paths predicate whose arms may be **absolute** location
    paths (the PR 7 fuzz frontier): ``[π₁ | π₂]`` holds where the union
    is nonempty, and an absolute arm re-roots at the document node
    regardless of the context node — existence of something anywhere in
    the document gates a step mid-path. Union is outside Definition 12's
    predicate grammar, so these queries are non-Core by classification
    (the corexpath-aware differential skip handles them), and their
    plans still carry ``step_keys`` — the main path stays a plain
    absolute path — so they participate in batch-step sharing with the
    union evaluated on the residual side."""
    arms = [
        _random_core_path(
            rng, 2, max(0, depth - 1), absolute=rng.random() < 0.55
        )
        for _ in range(rng.randint(2, 3))
    ]
    union = " | ".join(arms)
    if rng.random() < 0.35:
        comparator = rng.choice(("=", ">", "<", ">="))
        return f"count({union}) {comparator} {rng.randint(0, 3)}"
    return union


#: Variable-name pools for the fuzz grammar, split by the type of scalar
#: bound to them (so a reference always lands in a matching context).
_NUMERIC_VARIABLES = ("v", "w", "lim")
_STRING_VARIABLES = ("s", "t")


def _random_variable_predicate(
    rng: random.Random, variables: dict[str, object]
) -> str:
    """A predicate referencing a ``$``-variable, generating (or reusing)
    its scalar binding in ``variables``. Numeric names bind small
    numbers, string names bind :data:`_FULL_STRINGS` members."""
    if rng.random() < 0.6:
        name = rng.choice(_NUMERIC_VARIABLES)
        if name not in variables:
            variables[name] = float(rng.randint(1, 4))
        comparator = rng.choice(("=", "!=", "<", ">", "<=", ">="))
        return rng.choice(
            (
                f"position() {comparator} ${name}",
                f"self::* {comparator} ${name}",
                f"count(child::*) {comparator} ${name}",
                f"position() + ${name} >= last()",
            )
        )
    name = rng.choice(_STRING_VARIABLES)
    if name not in variables:
        variables[name] = rng.choice(_FULL_STRINGS)
    return rng.choice(
        (
            f"contains(string(self::node()), ${name})",
            f"starts-with(string(child::*), ${name})",
            f"string(child::*) = ${name}",
            f"concat(${name}, 'z') != string(self::node())",
        )
    )


def _random_nodeset_variable_predicate(
    rng: random.Random, variables: dict[str, object], nodeset_names: tuple
) -> str:
    """A predicate referencing a node-set-valued ``$``-variable. The
    binding recorded is an empty-tuple *placeholder*: callers rebind it
    to a real node-set of the document under test before evaluating.
    Every form is type-correct for any node-set value (including the
    placeholder itself)."""
    name = rng.choice(nodeset_names)
    variables.setdefault(name, ())
    comparator = rng.choice(("=", "!=", "<", ">", "<=", ">="))
    return rng.choice(
        (
            f"count(${name}) {comparator} {rng.randint(0, 3)}",
            f"${name}",
            f"self::* = ${name}",
            f"count(${name}) >= position()",
            f"string(${name}) != ''",
        )
    )


def _random_full_predicate(
    rng: random.Random,
    depth: int,
    variables: dict[str, object] | None = None,
    nodeset_names: tuple = (),
) -> str:
    choice = rng.random()
    if variables is not None and nodeset_names and choice < 0.10:
        return _random_nodeset_variable_predicate(rng, variables, nodeset_names)
    if variables is not None and choice < 0.12 + (0.08 if nodeset_names else 0.0):
        return _random_variable_predicate(rng, variables)
    if choice < 0.28:
        # Stay inside Core XPath — keeps the corpus straddling the
        # fragment boundary so the six-way check still gets exercised.
        return _random_core_predicate(rng, depth)
    if choice < 0.36:
        return _random_id_predicate(rng)
    if choice < 0.42:
        return _random_union_predicate(rng, depth)
    if choice < 0.48:
        comparator = rng.choice(("=", "!=", "<", ">", "<=", ">="))
        return f"position() {comparator} {rng.randint(1, 4)}"
    if choice < 0.57:
        return rng.choice(
            (
                "position() = last()",
                "position() >= last() - 1",
                "position() * 2 <= last() + 1",
                f"position() + {rng.randint(0, 2)} != last()",
                "position() mod 2 = 1",
                "floor(position() div 2) >= 1",
            )
        )
    if choice < 0.70:
        path = _random_core_path(rng, 2, 0, absolute=rng.random() < 0.15)
        if rng.random() < 0.5:
            comparator = rng.choice(("=", ">", "<", ">="))
            return f"count({path}) {comparator} {rng.randint(0, 3)}"
        return f"count({path}) + {rng.randint(0, 2)} > position()"
    if choice < 0.85:
        subject = rng.choice(
            (
                "string(self::node())",
                "string(child::*)",
                "string(descendant-or-self::text())",
            )
        )
        constant = rng.choice(_FULL_STRINGS)
        return rng.choice(
            (
                f"contains({subject}, '{constant}')",
                f"starts-with({subject}, '{constant}')",
                f"string-length({subject}) {rng.choice(('=', '>', '<'))} {rng.randint(0, 3)}",
                f"normalize-space({subject}) != ''",
                f"substring({subject}, 1, 2) = '{constant}'",
                f"concat('{constant}', {subject}) != '{constant}'",
                f"translate({subject}, '12', 'xy') = '{constant}'",
            )
        )
    if depth > 0 and choice < 0.95:
        left = _random_full_predicate(rng, depth - 1, variables, nodeset_names)
        right = _random_full_predicate(rng, depth - 1, variables, nodeset_names)
        return f"{left} {rng.choice(('and', 'or'))} {right}"
    return f"not({_random_full_predicate(rng, max(0, depth - 1), variables, nodeset_names)})"


def _random_predicate(rng: random.Random, depth: int) -> str:
    choice = rng.random()
    if choice < 0.3:
        return _random_path(rng, 2, depth, absolute=rng.random() < 0.2)
    if choice < 0.5:
        comparator = rng.choice(("=", "!=", "<", ">", "<=", ">="))
        constant = rng.choice(("1", "2", "100", "'x'", "'1'"))
        return f"{_random_path(rng, 2, 0, absolute=False)} {comparator} {constant}"
    if choice < 0.65:
        return f"position() {rng.choice(('=', '!=', '<', '>'))} {rng.randint(1, 4)}"
    if choice < 0.75:
        return "position() = last()"
    if choice < 0.85 and depth > 0:
        return (
            f"{_random_predicate(rng, depth - 1)} "
            f"{rng.choice(('and', 'or'))} {_random_predicate(rng, depth - 1)}"
        )
    if choice < 0.92:
        return f"not({_random_predicate(rng, max(0, depth - 1))})"
    return f"count({_random_path(rng, 2, 0, absolute=False)}) {rng.choice(('=', '>', '<'))} {rng.randint(0, 3)}"
