"""Synthetic workloads: document generators and query families.

Everything the benchmark harness sweeps over lives here, so experiments
are reproducible from parameters alone (no external data needed — the
paper's own evaluation artifacts are worked examples plus complexity
claims; see DESIGN.md §4).
"""

from repro.workloads.documents import (
    balanced_tree,
    book_catalog,
    deep_chain,
    doubling_document,
    numbered_line,
    random_document,
    running_example_document,
    wide_tree,
)
from repro.workloads.queries import (
    core_family,
    doubling_query,
    example9_query,
    position_heavy_query,
    random_query,
    running_example_query,
    wadler_family,
)

__all__ = [
    "balanced_tree",
    "book_catalog",
    "deep_chain",
    "doubling_document",
    "numbered_line",
    "random_document",
    "running_example_document",
    "wide_tree",
    "core_family",
    "doubling_query",
    "example9_query",
    "position_heavy_query",
    "random_query",
    "running_example_query",
    "wadler_family",
]
