"""XML serialization: turn a :class:`Document` back into markup.

Together with the parser this gives a round-trip property that the test
suite checks with hypothesis: ``parse(serialize(doc))`` is isomorphic to
``doc`` (same kinds, names, values, attributes in order).
"""

from __future__ import annotations

from repro.xml.document import Document, Node, NodeKind


def _escape_text(value: str) -> str:
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attribute(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


def serialize_node(node: Node) -> str:
    """Serialize a single node (and its subtree) to markup."""
    if node.kind is NodeKind.DOCUMENT:
        return "".join(serialize_node(child) for child in node.children)
    if node.kind is NodeKind.ELEMENT:
        parts = [f"<{node.name}"]
        for attr in node.attributes:
            parts.append(f' {attr.name}="{_escape_attribute(attr.value or "")}"')
        if not node.children:
            parts.append("/>")
            return "".join(parts)
        parts.append(">")
        for child in node.children:
            parts.append(serialize_node(child))
        parts.append(f"</{node.name}>")
        return "".join(parts)
    if node.kind is NodeKind.TEXT:
        return _escape_text(node.value or "")
    if node.kind is NodeKind.COMMENT:
        return f"<!--{node.value or ''}-->"
    if node.kind is NodeKind.PROCESSING_INSTRUCTION:
        data = f" {node.value}" if node.value else ""
        return f"<?{node.name}{data}?>"
    if node.kind is NodeKind.ATTRIBUTE:
        return f'{node.name}="{_escape_attribute(node.value or "")}"'
    raise AssertionError(f"unhandled node kind {node.kind}")  # pragma: no cover


def serialize(document: Document, xml_declaration: bool = False) -> str:
    """Serialize a whole document."""
    body = serialize_node(document.root)
    if xml_declaration:
        return f'<?xml version="1.0"?>{body}'
    return body
