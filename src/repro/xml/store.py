"""Persistent document store (the paper's §7 future-work direction).

The conclusion of the paper points at "using our techniques for XPath
processors that query XML documents stored in a database". This module
provides the minimal substrate for that: a single-file store that
persists finalized documents in a compact node-table format and
reconstructs them with their document order (and therefore every axis
computation) intact.

Format (JSON, one file per store):

    {"version": 1,
     "documents": {
        "<name>": {
            "id_attribute": "id",
            "nodes": [[kind, name, value, parent], ...]   # pre-order
        }, ...}}

``kind`` is a single-character code; ``parent`` is the parent's pre-order
index (the document node, index 0, has parent -1). Attributes are plain
rows with their owner element as parent — reconstruction re-attaches them
via ``set_attribute_node`` so the rebuilt tree is node-for-node
isomorphic to the original, with identical ``pre`` numbering.

Writes are atomic (temp file + ``os.replace``). The store is a catalog of
independent documents; engines operate on loaded documents exactly as on
parsed ones.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.errors import ReproError
from repro.xml.document import Document, Node, NodeKind

_KIND_CODES = {
    NodeKind.DOCUMENT: "D",
    NodeKind.ELEMENT: "E",
    NodeKind.ATTRIBUTE: "A",
    NodeKind.TEXT: "T",
    NodeKind.COMMENT: "C",
    NodeKind.PROCESSING_INSTRUCTION: "P",
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

_FORMAT_VERSION = 1


class DocumentStoreError(ReproError):
    """Raised for missing documents, format problems, or corrupt files."""


class DocumentStore:
    """A named collection of persisted documents in one JSON file."""

    def __init__(self, path: str | os.PathLike):
        self.path = pathlib.Path(path)
        self._data = self._read()

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------

    def _read(self) -> dict:
        if not self.path.exists():
            return {"version": _FORMAT_VERSION, "documents": {}}
        try:
            with open(self.path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise DocumentStoreError(f"cannot read store {self.path}: {error}") from error
        if not isinstance(data, dict) or "documents" not in data:
            raise DocumentStoreError(f"{self.path} is not a document store file")
        if data.get("version") != _FORMAT_VERSION:
            raise DocumentStoreError(
                f"unsupported store version {data.get('version')!r} in {self.path}"
            )
        return data

    def _write(self) -> None:
        temp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(self._data, handle, separators=(",", ":"))
        os.replace(temp_path, self.path)

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Stored document names, sorted."""
        return sorted(self._data["documents"])

    def __contains__(self, name: str) -> bool:
        return name in self._data["documents"]

    def __len__(self) -> int:
        return len(self._data["documents"])

    def save(self, name: str, document: Document) -> None:
        """Persist a finalized document under ``name`` (overwrites)."""
        document._require_finalized()
        rows = []
        for node in document.nodes:
            parent = node.parent.pre if node.parent is not None else -1
            rows.append([_KIND_CODES[node.kind], node.name, node.value, parent])
        self._data["documents"][name] = {
            "id_attribute": document.id_attribute,
            "nodes": rows,
        }
        self._write()

    def load(self, name: str) -> Document:
        """Reconstruct the document stored under ``name``.

        The rebuilt tree has identical pre-order numbering, subtree
        sizes, and string values — every axis computation gives the same
        answers as on the original.
        """
        entry = self._data["documents"].get(name)
        if entry is None:
            raise DocumentStoreError(f"no document named {name!r} in {self.path}")
        document = Document(id_attribute=entry.get("id_attribute", "id"))
        nodes: list[Node] = []
        for index, row in enumerate(entry["nodes"]):
            code, node_name, value, parent_index = row
            kind = _CODE_KINDS.get(code)
            if kind is None:
                raise DocumentStoreError(f"corrupt store: unknown node kind {code!r}")
            if kind is NodeKind.DOCUMENT:
                if index != 0:
                    raise DocumentStoreError("corrupt store: document node not first")
                nodes.append(document.root)
                continue
            node = document.new_node(kind, name=node_name, value=value)
            if not (0 <= parent_index < index):
                raise DocumentStoreError(
                    f"corrupt store: node {index} has invalid parent {parent_index}"
                )
            parent = nodes[parent_index]
            if kind is NodeKind.ATTRIBUTE:
                document.set_attribute_node(parent, node)
            else:
                document.append_child(parent, node)
            nodes.append(node)
        if not nodes:
            raise DocumentStoreError("corrupt store: empty node table")
        return document.finalize()

    def delete(self, name: str) -> None:
        """Remove a document from the store."""
        if name not in self._data["documents"]:
            raise DocumentStoreError(f"no document named {name!r} in {self.path}")
        del self._data["documents"][name]
        self._write()
