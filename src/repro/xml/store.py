"""Persistent document store (the paper's §7 future-work direction).

The conclusion of the paper points at "using our techniques for XPath
processors that query XML documents stored in a database". This module
provides the substrate for that: a named catalog of finalized documents
that reconstructs them with their document order (and therefore every
axis computation) intact. Two formats coexist:

**Format v1 (JSON, read-only legacy).** The whole store is one JSON
file; each document is an inline pre-order node table::

    {"version": 1,
     "documents": {
        "<name>": {
            "id_attribute": "id",
            "nodes": [[kind, name, value, parent], ...]   # pre-order
        }, ...}}

``kind`` is a single-character code; ``parent`` is the parent's pre-order
index (the document node, index 0, has parent -1). v1 stores open
transparently; their entries load (with full row validation — malformed
rows raise :class:`DocumentStoreError`, never bare ``ValueError`` /
``TypeError``) but every *save* writes format v2.

**Format v2 (JSON catalog + binary sidecars, current).** The catalog
file holds only ``{"format": 2, "file": "<sidecar>"}`` entries; each
document's payload is a versioned binary snapshot
(:mod:`repro.xml.snapshot`: magic, version, flat ``parent_pre`` /
``size`` / ``post`` / ``depth`` columns, string tables, CRC-32) in its
own file under ``<store>.d/``. Saving one document touches one sidecar
plus the small catalog — O(1) in the number of *other* stored documents,
where v1 rewrote every node table on every save. Snapshot-loaded
documents come back with their :class:`~repro.xml.index.NodeIndex`
pre-seeded, which is why :class:`~repro.service.scheduler.
ProcessScheduler` workers consume snapshots (via
:meth:`DocumentStore.load_snapshot` or the scheduler's in-memory blobs)
instead of re-parsing markup.

:meth:`DocumentStore.migrate` rewrites remaining v1 inline entries as
sidecars in place.

Writes are atomic *and durable*: content is serialized first (a failing
serialization can never leave debris), written to a temp file, fsynced,
``os.replace``d over the target, and the directory entry fsynced; the
temp file is removed on any error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro.errors import DocumentStoreError
from repro.xml.document import Document, NodeKind
from repro.xml.snapshot import (
    decode_snapshot,
    encode_snapshot,
    snapshot_column_sizes,
)

__all__ = ["DocumentStore", "DocumentStoreError"]

_KIND_CODES = {
    NodeKind.DOCUMENT: "D",
    NodeKind.ELEMENT: "E",
    NodeKind.ATTRIBUTE: "A",
    NodeKind.TEXT: "T",
    NodeKind.COMMENT: "C",
    NodeKind.PROCESSING_INSTRUCTION: "P",
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

_LEGACY_VERSION = 1
_FORMAT_VERSION = 2


def _write_bytes_durably(path: pathlib.Path, data: bytes) -> None:
    """Atomic + durable file replacement: temp file, fsync, rename,
    directory fsync; the temp file never survives an error."""
    temp_path = path.with_name(path.name + ".tmp")
    try:
        with open(temp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except OSError as error:
        try:
            temp_path.unlink()
        except OSError:
            pass
        raise DocumentStoreError(f"cannot write {path}: {error}") from error
    try:
        directory_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir open
        return
    try:
        os.fsync(directory_fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(directory_fd)


class DocumentStore:
    """A named collection of persisted documents: one JSON catalog plus
    one binary snapshot sidecar per (format-v2) document."""

    def __init__(self, path: str | os.PathLike):
        self.path = pathlib.Path(path)
        self._data = self._read()

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------

    @property
    def sidecar_dir(self) -> pathlib.Path:
        """Directory holding the per-document snapshot files."""
        return self.path.with_name(self.path.name + ".d")

    def _read(self) -> dict:
        if not self.path.exists():
            return {"version": _FORMAT_VERSION, "documents": {}}
        try:
            with open(self.path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise DocumentStoreError(f"cannot read store {self.path}: {error}") from error
        if not isinstance(data, dict) or not isinstance(data.get("documents"), dict):
            raise DocumentStoreError(f"{self.path} is not a document store file")
        version = data.get("version")
        if version not in (_LEGACY_VERSION, _FORMAT_VERSION):
            raise DocumentStoreError(
                f"unsupported store version {version!r} in {self.path}"
            )
        # v1 catalogs normalize in memory; the first save persists v2.
        data["version"] = _FORMAT_VERSION
        return data

    def _write(self) -> None:
        # Serialize before touching the filesystem: a failing
        # json.dumps must not create (or strand) a temp file.
        payload = json.dumps(self._data, separators=(",", ":")).encode("utf-8")
        _write_bytes_durably(self.path, payload)

    def _sidecar_path(self, entry: dict) -> pathlib.Path:
        filename = entry.get("file")
        if not isinstance(filename, str) or os.sep in filename or filename in (
            "",
            ".",
            "..",
        ):
            raise DocumentStoreError(f"corrupt store: bad sidecar name {filename!r}")
        return self.sidecar_dir / filename

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        """Stored document names, sorted."""
        return sorted(self._data["documents"])

    def __contains__(self, name: str) -> bool:
        return name in self._data["documents"]

    def __len__(self) -> int:
        return len(self._data["documents"])

    def save(self, name: str, document: Document) -> None:
        """Persist a finalized document under ``name`` (overwrites).

        Writes format v2: the snapshot sidecar first (durably), then the
        small catalog — saving one document no longer rewrites every
        other document's payload.
        """
        self.save_snapshot(name, document)

    def save_snapshot(self, name: str, document: Document) -> pathlib.Path:
        """Persist ``document`` as a binary snapshot sidecar; returns the
        sidecar path."""
        document._require_finalized()
        blob = encode_snapshot(document)
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:24]
        filename = f"{digest}.snap"
        self.sidecar_dir.mkdir(parents=True, exist_ok=True)
        sidecar = self.sidecar_dir / filename
        _write_bytes_durably(sidecar, blob)
        self._data["documents"][name] = {"format": _FORMAT_VERSION, "file": filename}
        self._write()
        return sidecar

    def _entry(self, name: str) -> dict:
        entry = self._data["documents"].get(name)
        if entry is None:
            raise DocumentStoreError(f"no document named {name!r} in {self.path}")
        if not isinstance(entry, dict):
            raise DocumentStoreError(f"corrupt store: malformed entry for {name!r}")
        return entry

    def load(self, name: str, lazy: bool = False) -> Document:
        """Reconstruct the document stored under ``name``.

        The rebuilt tree has identical pre-order numbering, subtree
        sizes, and string values — every axis computation gives the same
        answers as on the original. Snapshot-backed (v2) documents also
        arrive with their node index pre-seeded. With ``lazy=True`` the
        load stops at the flat columns
        (:class:`~repro.xml.columns.ColumnDocument`): no ``Node``
        objects until touched; legacy (v1 inline) entries round-trip
        through a snapshot encode to reach the same representation.
        """
        entry = self._entry(name)
        if entry.get("format") == _FORMAT_VERSION:
            return decode_snapshot(self.load_snapshot(name), lazy=lazy)
        document = self._load_legacy(entry)
        if lazy:
            return decode_snapshot(encode_snapshot(document), lazy=True)
        return document

    def load_snapshot(self, name: str) -> bytes:
        """The raw v2 snapshot blob for ``name`` (decodable with
        :func:`repro.xml.snapshot.decode_snapshot`). Legacy inline
        entries are encoded on the fly."""
        entry = self._entry(name)
        if entry.get("format") == _FORMAT_VERSION:
            sidecar = self._sidecar_path(entry)
            try:
                return sidecar.read_bytes()
            except OSError as error:
                raise DocumentStoreError(
                    f"cannot read snapshot {sidecar}: {error}"
                ) from error
        return encode_snapshot(self._load_legacy(entry))

    def column_sizes(self, name: str) -> dict[str, int]:
        """Per-document storage accounting for ``store list``: node
        count, bytes on disk (the blob as stored; legacy entries report
        their on-the-fly encoding), and the decoded flat-column bytes a
        lazy load keeps resident — what eager tree building pays on top
        is Python objects, which is exactly the saving the lazy path
        claims. See :func:`repro.xml.snapshot.snapshot_column_sizes`."""
        return snapshot_column_sizes(self.load_snapshot(name))

    def migrate(self) -> list[str]:
        """Rewrite every legacy (v1 inline) entry as a v2 snapshot
        sidecar; returns the migrated names, sorted."""
        migrated = []
        for name in self.names():
            if self._data["documents"][name].get("format") != _FORMAT_VERSION:
                self.save_snapshot(name, self._load_legacy(self._entry(name)))
                migrated.append(name)
        return migrated

    def delete(self, name: str) -> None:
        """Remove a document (and its sidecar, if any) from the store."""
        entry = self._data["documents"].get(name)
        if entry is None:
            raise DocumentStoreError(f"no document named {name!r} in {self.path}")
        del self._data["documents"][name]
        self._write()
        if isinstance(entry, dict) and entry.get("format") == _FORMAT_VERSION:
            try:
                self._sidecar_path(entry).unlink()
            except (OSError, DocumentStoreError):
                pass  # the catalog no longer references it; best effort

    # ------------------------------------------------------------------
    # Legacy v1 inline node tables
    # ------------------------------------------------------------------

    def _load_legacy(self, entry: dict) -> Document:
        rows = entry.get("nodes")
        if not isinstance(rows, list) or not rows:
            raise DocumentStoreError("corrupt store: empty node table")
        id_attribute = entry.get("id_attribute", "id")
        if not isinstance(id_attribute, str):
            raise DocumentStoreError("corrupt store: malformed id attribute")
        document = Document(id_attribute=id_attribute)
        nodes = []
        for index, row in enumerate(rows):
            # Validate the row shape before unpacking: malformed rows
            # must surface as DocumentStoreError (the CLI keys its
            # error-family exit codes off the typed hierarchy), never as
            # bare ValueError/TypeError escaping from the plumbing.
            if not isinstance(row, (list, tuple)) or len(row) != 4:
                raise DocumentStoreError(
                    f"corrupt store: node row {index} has wrong shape"
                )
            code, node_name, value, parent_index = row
            kind = _CODE_KINDS.get(code)
            if kind is None:
                raise DocumentStoreError(f"corrupt store: unknown node kind {code!r}")
            if node_name is not None and not isinstance(node_name, str):
                raise DocumentStoreError(
                    f"corrupt store: node {index} has a non-string name"
                )
            if value is not None and not isinstance(value, str):
                raise DocumentStoreError(
                    f"corrupt store: node {index} has a non-string value"
                )
            if kind is NodeKind.DOCUMENT:
                if index != 0:
                    raise DocumentStoreError("corrupt store: document node not first")
                nodes.append(document.root)
                continue
            # bool is an int subclass; an explicit screen keeps True/False
            # from sneaking through as parent indexes 1/0.
            if isinstance(parent_index, bool) or not isinstance(parent_index, int):
                raise DocumentStoreError(
                    f"corrupt store: node {index} has a non-integer parent"
                )
            if not 0 <= parent_index < index:
                raise DocumentStoreError(
                    f"corrupt store: node {index} has invalid parent {parent_index}"
                )
            node = document.new_node(kind, name=node_name, value=value)
            parent = nodes[parent_index]
            try:
                if kind is NodeKind.ATTRIBUTE:
                    document.set_attribute_node(parent, node)
                else:
                    document.append_child(parent, node)
            except ValueError as error:
                raise DocumentStoreError(
                    f"corrupt store: node {index} cannot attach to its parent: {error}"
                ) from error
            nodes.append(node)
        if nodes[0] is not document.root:
            raise DocumentStoreError("corrupt store: document node missing")
        return document.finalize()
