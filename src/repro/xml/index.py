"""Per-document NodeIndex: output-sensitive axis-kernel substrate.

The paper's axis set functions (Definition 1) are ``O(|D|)`` per call —
the bound every complexity theorem relies on, but also the reason a
selective query over a large document spends almost all of its time
re-scanning the whole tree to produce a tiny node set. This module holds
the *derived* structures that make an output-sensitive fast path
possible, all computed once per document and cached process-wide:

* **pre/post numbering** — ``pre`` is positional (``nodes[i].pre == i``,
  assigned at finalize); ``post[i]`` is the post-order rank, so
  ancestorship is the classic two-number test
  ``pre(x) < pre(y) and post(x) > post(y)``;
* **size / depth / parent arrays** — ``size[i]`` (subtree size, interval
  arithmetic), ``depth[i]``, ``parent_pre[i]`` (``-1`` for the document
  node), so kernels never chase Python object attributes in their inner
  loops;
* **name-partitioned sorted pre-order arrays** — for every element tag
  (and every attribute name, every non-element node kind) the sorted
  array of pre numbers of matching nodes. ``descendant::a`` then becomes
  a binary-search range query over the ``a`` partition:
  ``O(|X|·log|D| + output)`` instead of ``O(|D|)``.

Node sets travel through the fast kernels as **sorted pre-order int
arrays** (document order for free, set algebra by linear merges —
:func:`merge_union` / :func:`merge_intersection` /
:func:`merge_difference`). The dispatch between these kernels and the
paper-bounded scans lives in :mod:`repro.axes.axes`
(:func:`~repro.axes.axes.fused_axis_set`); this module only provides the
machinery.

Since the flat-column rewrite the columns are **packed**: ``size`` /
``post`` / ``depth`` / ``parent_pre`` are ``memoryview``s over
``array('q')`` storage, and every name/kind partition is a zero-copy
``memoryview`` slice into one shared packed pre-number array (an offset
table maps partition → span). Indexing a memoryview yields a plain
``int`` and ``bisect`` works through ``__getitem__``/``__len__``, so the
kernels in :mod:`repro.axes.axes` bisect over unboxed 8-byte machine
words instead of lists of boxed ints — byte-identical results, smaller
and cache-friendlier storage, and the exact columns the binary snapshot
format (:mod:`repro.xml.snapshot`) persists. ``NodeIndex(document,
packed=False)`` keeps the historical boxed-list representation as the
reference implementation for property tests and benchmark gates.

Index construction is ``O(|D|)`` (two passes; the post numbering is the
closed form ``post = pre - depth + size - 1``), performed at most once
per document: :func:`node_index` is weak-cached like
:func:`repro.service.specialize.document_profile`, and the build runs
under the cache lock so racing threads see exactly one build
(``index_builds`` on :data:`repro.stats.axis_kernel_stats` is exact).
Snapshot loads skip the build entirely: :meth:`NodeIndex.from_columns`
adopts persisted columns without the post-order sort, and
:func:`adopt_node_index` seeds the cache with the prebuilt index
(counted as ``index_adoptions``, never ``index_builds``).
"""

from __future__ import annotations

import threading
import weakref
from array import array
from bisect import bisect_left

from repro.stats import axis_kernel_stats
from repro.xml.document import Document, NodeKind


class NodeIndex:
    """Derived per-document arrays and name partitions (read-only).

    Attributes:
        document: the indexed (finalized, immutable) document.
        total: ``|dom|``.
        packed: whether the columns are flat (``memoryview`` over
            ``array('q')`` storage) or boxed-int lists (the reference
            representation, ``packed=False``).
        size: ``size[i]`` — subtree size of the node with pre number ``i``.
        post: ``post[i]`` — post-order rank of the node with pre ``i``.
        depth: ``depth[i]`` — distance from the document node (root is 0;
            an attribute is one deeper than its element).
        parent_pre: ``parent_pre[i]`` — pre number of the parent (``-1``
            for the document node).
        by_tag: element tag → sorted pre numbers of elements with it.
        by_attribute: attribute name → sorted pre numbers of attributes.
        by_pi_target: PI target → sorted pre numbers.
        elements / attributes / non_attributes / text_nodes / comments /
        pis: kind partitions, each a sorted pre array.

    When ``packed``, every partition is a zero-copy slice into one shared
    packed array; all of them index/bisect/slice/iterate exactly like the
    list form, but ``partition == [..]`` is always ``False`` for a
    memoryview — comparisons must go through ``list(partition)``.
    """

    __slots__ = (
        "_document_ref",
        "total",
        "packed",
        "_child_offsets",
        "_child_packed",
        "_attribute_counts",
        "size",
        "post",
        "depth",
        "parent_pre",
        "by_tag",
        "by_attribute",
        "by_pi_target",
        "elements",
        "attributes",
        "non_attributes",
        "text_nodes",
        "comments",
        "pis",
    )

    def __init__(self, document: Document, packed: bool = True):
        if not document.is_finalized:
            raise ValueError("document must be finalized before indexing")
        # Weak back-reference only: the index is the *value* of a
        # weak-keyed cache whose key is the document — a strong reference
        # here would make every key strongly reachable from its own value
        # and pin every indexed document in memory forever.
        self._document_ref = weakref.ref(document)
        self._child_offsets = None
        self._child_packed = None
        self._attribute_counts = None
        nodes = document.nodes
        total = len(nodes)
        self.total = total
        self.size = [node.size for node in nodes]
        self.depth = [0] * total
        self.parent_pre = [-1] * total
        for pre, node in enumerate(nodes):
            parent = node.parent
            if parent is not None:
                # Parents precede children in pre-order, so their depth
                # is already final when the child is visited.
                self.parent_pre[pre] = parent.pre
                self.depth[pre] = self.depth[parent.pre] + 1
        self._build_partitions(nodes)
        # Post-order rank, closed form: the nodes finishing before pre
        # are exactly those started before it (pre of them) minus its
        # still-open ancestors (depth), plus its own descendants
        # (size - 1) — so post = pre - depth + size - 1, no sort needed.
        self.post = [
            pre - self.depth[pre] + self.size[pre] - 1 for pre in range(total)
        ]
        self.packed = packed
        if packed:
            self.size = memoryview(array("q", self.size))
            self.post = memoryview(array("q", self.post))
            self.depth = memoryview(array("q", self.depth))
            self.parent_pre = memoryview(array("q", self.parent_pre))
            self._pack_partitions()

    @classmethod
    def from_columns(
        cls,
        document: Document,
        *,
        size,
        post,
        depth,
        parent_pre,
        kinds=None,
        names=None,
    ) -> "NodeIndex":
        """Build a packed index from persisted flat columns.

        The columns must be ``array('q')`` (or any buffer of signed
        8-byte ints) already validated against ``document`` — this is the
        snapshot decoder's constructor: the persisted columns are adopted
        zero-copy, leaving one ``O(|D|)`` partition pass. When the
        decoder also passes the ``kinds`` byte column and the ``names``
        string column, that pass runs over the columns directly — the
        lazy decode path, which must not touch ``document.nodes`` (doing
        so would materialize every node of a
        :class:`~repro.xml.columns.ColumnDocument`).
        """
        if not document.is_finalized:
            raise ValueError("document must be finalized before indexing")
        index = cls.__new__(cls)
        index._document_ref = weakref.ref(document)
        index._child_offsets = None
        index._child_packed = None
        index._attribute_counts = None
        index.size = memoryview(size if isinstance(size, array) else array("q", size))
        index.post = memoryview(post if isinstance(post, array) else array("q", post))
        index.depth = memoryview(
            depth if isinstance(depth, array) else array("q", depth)
        )
        index.parent_pre = memoryview(
            parent_pre if isinstance(parent_pre, array) else array("q", parent_pre)
        )
        if kinds is not None and names is not None:
            index.total = len(kinds)
            index._build_partitions_from_columns(kinds, names)
        else:
            nodes = document.nodes
            index.total = len(nodes)
            index._build_partitions(nodes)
        index.packed = True
        index._pack_partitions()
        return index

    def _build_partitions(self, nodes) -> None:
        """One pre-order pass filling the kind and name partitions (as
        lists — sorted by construction, packed afterwards when asked)."""
        self.by_tag: dict[str, list[int]] = {}
        self.by_attribute: dict[str, list[int]] = {}
        self.by_pi_target: dict[str, list[int]] = {}
        self.elements: list[int] = []
        self.attributes: list[int] = []
        self.non_attributes: list[int] = []
        self.text_nodes: list[int] = []
        self.comments: list[int] = []
        self.pis: list[int] = []
        for pre, node in enumerate(nodes):
            kind = node.kind
            if kind is NodeKind.ATTRIBUTE:
                self.attributes.append(pre)
                self.by_attribute.setdefault(node.name, []).append(pre)
                continue
            self.non_attributes.append(pre)
            if kind is NodeKind.ELEMENT:
                self.elements.append(pre)
                self.by_tag.setdefault(node.name, []).append(pre)
            elif kind is NodeKind.TEXT:
                self.text_nodes.append(pre)
            elif kind is NodeKind.COMMENT:
                self.comments.append(pre)
            elif kind is NodeKind.PROCESSING_INSTRUCTION:
                self.pis.append(pre)
                self.by_pi_target.setdefault(node.name, []).append(pre)

    def _build_partitions_from_columns(self, kinds, names) -> None:
        """:meth:`_build_partitions` driven by the snapshot kind/name
        columns alone — identical partitions, no ``Node`` attribute
        chasing (and, on a lazy document, no materialization)."""
        self.by_tag: dict[str, list[int]] = {}
        self.by_attribute: dict[str, list[int]] = {}
        self.by_pi_target: dict[str, list[int]] = {}
        self.elements: list[int] = []
        self.attributes: list[int] = []
        self.non_attributes: list[int] = []
        self.text_nodes: list[int] = []
        self.comments: list[int] = []
        self.pis: list[int] = []
        element, attribute = ord("E"), ord("A")
        text, comment, pi = ord("T"), ord("C"), ord("P")
        by_tag, by_attribute, by_pi = self.by_tag, self.by_attribute, self.by_pi_target
        elements_append = self.elements.append
        attributes_append = self.attributes.append
        non_attributes_append = self.non_attributes.append
        text_append = self.text_nodes.append
        comment_append = self.comments.append
        pi_append = self.pis.append
        # This loop runs on every lazy decode; iterating the kind bytes
        # directly (ints) with bound appends keeps it cheap.
        for pre, code in enumerate(kinds):
            if code == attribute:
                attributes_append(pre)
                name = names[pre]
                bucket = by_attribute.get(name)
                if bucket is None:
                    bucket = by_attribute[name] = []
                bucket.append(pre)
                continue
            non_attributes_append(pre)
            if code == element:
                elements_append(pre)
                name = names[pre]
                bucket = by_tag.get(name)
                if bucket is None:
                    bucket = by_tag[name] = []
                bucket.append(pre)
            elif code == text:
                text_append(pre)
            elif code == comment:
                comment_append(pre)
            elif code == pi:
                pi_append(pre)
                by_pi.setdefault(names[pre], []).append(pre)

    def _pack_partitions(self) -> None:
        """Concatenate every partition into one ``array('q')`` and
        re-point the partition attributes at zero-copy ``memoryview``
        slices of it (the offset table is consumed on the spot; the
        shared storage stays alive through each view's ``.obj``)."""
        data = array("q")

        def reserve(values) -> tuple[int, int]:
            lo = len(data)
            data.extend(values)
            return lo, len(data)

        kind_spans = [
            reserve(partition)
            for partition in (
                self.elements,
                self.attributes,
                self.non_attributes,
                self.text_nodes,
                self.comments,
                self.pis,
            )
        ]
        tag_spans = {name: reserve(p) for name, p in self.by_tag.items()}
        attribute_spans = {name: reserve(p) for name, p in self.by_attribute.items()}
        pi_spans = {name: reserve(p) for name, p in self.by_pi_target.items()}
        view = memoryview(data)
        (
            self.elements,
            self.attributes,
            self.non_attributes,
            self.text_nodes,
            self.comments,
            self.pis,
        ) = [view[lo:hi] for lo, hi in kind_spans]
        self.by_tag = {name: view[lo:hi] for name, (lo, hi) in tag_spans.items()}
        self.by_attribute = {
            name: view[lo:hi] for name, (lo, hi) in attribute_spans.items()
        }
        self.by_pi_target = {
            name: view[lo:hi] for name, (lo, hi) in pi_spans.items()
        }

    # ------------------------------------------------------------------

    @property
    def document(self) -> Document:
        """The indexed document (weakly held — see ``__init__``)."""
        document = self._document_ref()
        if document is None:  # pragma: no cover - needs a caller that
            # outlives the document it handed in
            raise ReferenceError("the indexed document has been garbage-collected")
        return document

    def partition(self, test, axis: str):
        """The sorted pre array of ``T(t)`` for a node test, restricted to
        the principal-capable node kinds the partition axes can reach —
        a ``memoryview`` slice when packed, a list otherwise.

        Only meaningful for the non-attribute-principal axes (the
        interval/suffix kernels never enumerate attribute nodes — the
        attribute axis is handled by per-node enumeration). Returns
        ``None`` only for test shapes with no precomputed partition.
        """
        kind = test.kind
        if kind == "name":
            return self.by_tag.get(test.name, [])
        if kind == "wildcard":
            return self.elements
        if kind == "node":
            return self.non_attributes
        if kind == "text":
            return self.text_nodes
        if kind == "comment":
            return self.comments
        if kind == "pi":
            if test.name is None:
                return self.pis
            return self.by_pi_target.get(test.name, [])
        return None

    def filter_partition(self, test, attribute_principal: bool = False):
        """The sorted pre array equal to ``{p | matches_node_test}`` for
        *arbitrary* candidate nodes — the membership filter the backward
        sweeps intersect with. ``None`` means "matches everything"
        (``node()``, which is kind-blind). Unlike :meth:`partition`, name
        and wildcard tests here honor the axis's principal node type:
        the caller passes ``attribute_principal`` (``axis in
        repro.axes.AXIS_PRINCIPAL_ATTRIBUTE``) — a bool parameter keeps
        the xml layer below the axes layer.
        """
        kind = test.kind
        if kind == "node":
            return None
        if kind in ("name", "wildcard"):
            if attribute_principal:
                if kind == "wildcard":
                    return self.attributes
                return self.by_attribute.get(test.name, [])
            if kind == "wildcard":
                return self.elements
            return self.by_tag.get(test.name, [])
        if kind == "text":
            return self.text_nodes
        if kind == "comment":
            return self.comments
        if kind == "pi":
            if test.name is None:
                return self.pis
            return self.by_pi_target.get(test.name, [])
        return None

    # ------------------------------------------------------------------
    # Block accessors (the vector tier's gatherable columns)
    # ------------------------------------------------------------------

    @property
    def child_table_ready(self) -> bool:
        """Whether :meth:`child_table` is already memoized (probe for
        callers that want the fast path only when it costs nothing —
        e.g. a lazy document answering one node's ``children``)."""
        return self._child_offsets is not None

    @property
    def attribute_counts_ready(self) -> bool:
        """Whether :meth:`attribute_counts` is already memoized."""
        return self._attribute_counts is not None

    def child_table(self):
        """``(offsets, children)`` — the contiguous child-span table.

        ``children[offsets[p]:offsets[p+1]]`` is the ascending pre array
        of the children of ``p`` (attributes excluded), for every pre.
        Both columns are ``array('q')`` — gatherable by slice from the
        stdlib backend and zero-copy adoptable by ``numpy.frombuffer``.
        Built lazily in one counting-sort pass over ``parent_pre``
        (stable, so each span is ascending for free) and memoized; the
        build is idempotent, so a racing duplicate build is benign — the
        last assignment wins and both values are identical.
        """
        offsets = self._child_offsets
        if offsets is not None:
            return offsets, self._child_packed
        total = self.total
        parent_pre = self.parent_pre
        attribute_counts = self.attribute_counts()
        counts = [0] * (total + 1)
        for pre in self.non_attributes:
            parent = parent_pre[pre]
            if parent >= 0:
                counts[parent + 1] += 1
        for pre in range(total):
            counts[pre + 1] += counts[pre]
        offsets = array("q", counts)
        children = array("q", bytes(8 * offsets[total]))
        cursor = list(offsets[:total])
        for pre in self.non_attributes:
            parent = parent_pre[pre]
            if parent >= 0:
                children[cursor[parent]] = pre
                cursor[parent] += 1
        # attribute_counts() memoized first: a reader that sees the child
        # columns always sees the attribute column too.
        self._child_packed = children
        self._child_offsets = offsets
        return offsets, children

    def attribute_counts(self):
        """``array('q')`` of per-pre attribute counts: element ``p``'s
        attributes are exactly the contiguous run ``p+1 .. p+counts[p]``
        (the parser's attribute-contiguity invariant). Lazily built from
        the attribute partition, memoized; benign-race idempotent."""
        counts = self._attribute_counts
        if counts is None:
            counts = array("q", bytes(8 * self.total))
            parent_pre = self.parent_pre
            for pre in self.attributes:
                counts[parent_pre[pre]] += 1
            self._attribute_counts = counts
        return counts

    def ancestors_of(self, pre: int) -> list[int]:
        """Pre numbers of the proper ancestors of ``pre`` (nearest first)."""
        chain = []
        parent = self.parent_pre[pre]
        while parent >= 0:
            chain.append(parent)
            parent = self.parent_pre[parent]
        return chain

    def is_ancestor(self, x_pre: int, y_pre: int) -> bool:
        """The two-number ancestorship test (proper)."""
        return x_pre < y_pre and self.post[x_pre] > self.post[y_pre]

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Assert every invariant the fused kernels rely on; raises
        ``AssertionError`` with a description on violation. O(|D|²) in
        the pre/post cross-check — property-test use only.
        """
        nodes = self.document.nodes
        total = self.total
        assert total == len(nodes), "index size diverged from document"
        assert len(self.size) == len(self.post) == total, "column lengths diverged"
        assert len(self.depth) == len(self.parent_pre) == total, (
            "column lengths diverged"
        )
        assert sorted(self.post) == list(range(total)), "post is not a permutation"
        for pre, node in enumerate(nodes):
            assert self.size[pre] == node.size, f"size broken at pre={pre}"
            expected_parent = -1 if node.parent is None else node.parent.pre
            assert self.parent_pre[pre] == expected_parent, f"parent broken at pre={pre}"
            if node.parent is not None:
                assert self.depth[pre] == self.depth[node.parent.pre] + 1, (
                    f"depth broken at pre={pre}"
                )
            else:
                assert self.depth[pre] == 0, "document node depth must be 0"
        # Pre/post consistency: interval containment iff pre/post order.
        for x in range(total):
            x_end = x + self.size[x]
            for y in range(total):
                interval = x < y < x_end
                two_number = x < y and self.post[x] > self.post[y]
                assert interval == two_number, (
                    f"pre/post inconsistent for ({x}, {y})"
                )
        partitions = [
            self.elements,
            self.attributes,
            self.non_attributes,
            self.text_nodes,
            self.comments,
            self.pis,
            *self.by_tag.values(),
            *self.by_attribute.values(),
            *self.by_pi_target.values(),
        ]
        for partition in partitions:
            assert all(a < b for a, b in zip(partition, partition[1:])), (
                "partition not strictly sorted"
            )
        # Partitions may be memoryviews (packed) or lists — normalize
        # through list() for the equality checks.
        assert sum(len(p) for p in self.by_tag.values()) == len(self.elements)
        assert sorted(p for ps in self.by_tag.values() for p in ps) == list(
            self.elements
        )
        assert sorted(p for ps in self.by_attribute.values() for p in ps) == list(
            self.attributes
        )
        assert len(self.non_attributes) + len(self.attributes) == total
        for tag, members in self.by_tag.items():
            for pre in members:
                assert nodes[pre].is_element and nodes[pre].name == tag
        for name, members in self.by_attribute.items():
            for pre in members:
                assert nodes[pre].is_attribute and nodes[pre].name == name


# ----------------------------------------------------------------------
# Process-wide cache
# ----------------------------------------------------------------------

#: Indexes are immutable facts about finalized documents; cache them
#: process-wide so every evaluator over the same document shares one.
#: Weak keys (and a weak back-reference inside the index): the cache
#: never pins a document.
_INDEX_CACHE: "weakref.WeakKeyDictionary[Document, NodeIndex]" = (
    weakref.WeakKeyDictionary()
)
#: Per-document build locks (weak-keyed too): racing first callers of
#: one document serialize, builds of *different* documents proceed in
#: parallel — a sharded thread batch over fresh documents must not
#: funnel every O(|D|·log|D|) build through one global lock.
_BUILD_LOCKS: "weakref.WeakKeyDictionary[Document, threading.Lock]" = (
    weakref.WeakKeyDictionary()
)
_INDEX_LOCK = threading.Lock()


def node_index(document: Document) -> NodeIndex:
    """The (process-wide, weakly cached) :class:`NodeIndex` of a document.

    Exactness contract: one build per document, *ever* (asserted by the
    thread-safety hammer). The global lock only guards the dictionaries;
    the build itself runs under a per-document lock, so concurrent first
    callers of one document see one build and then hits, while unrelated
    documents index concurrently.
    """
    with _INDEX_LOCK:
        index = _INDEX_CACHE.get(document)
        if index is not None:
            return index
        build_lock = _BUILD_LOCKS.get(document)
        if build_lock is None:
            build_lock = threading.Lock()
            _BUILD_LOCKS[document] = build_lock
    with build_lock:
        with _INDEX_LOCK:
            index = _INDEX_CACHE.get(document)
            if index is not None:  # built by the racing caller we waited on
                return index
        index = NodeIndex(document)
        with _INDEX_LOCK:
            _INDEX_CACHE[document] = index
            axis_kernel_stats.index_build()
    return index


def adopt_node_index(document: Document, index: NodeIndex) -> NodeIndex:
    """Seed the process-wide cache with a prebuilt index (snapshot loads).

    Counts as ``index_adoptions`` on :data:`repro.stats.axis_kernel_stats`
    — never ``index_builds``, whose one-build-per-document exactness the
    thread hammer asserts. If a racing caller already built or adopted an
    index for ``document``, that one wins and is returned; the loser is
    dropped (both describe the same immutable document, so either is
    correct — first-in keeps identity stable for callers already holding
    it).
    """
    if index.document is not document:
        raise ValueError("index does not describe this document")
    with _INDEX_LOCK:
        existing = _INDEX_CACHE.get(document)
        if existing is not None:
            return existing
        _INDEX_CACHE[document] = index
        axis_kernel_stats.index_adoption()
    return index


# ----------------------------------------------------------------------
# Sorted-array node-set algebra
# ----------------------------------------------------------------------


def merge_union(a: list[int], b: list[int]) -> list[int]:
    """Union of two sorted int arrays (linear merge, duplicates dropped)."""
    if not a:
        return list(b)
    if not b:
        return list(a)
    out: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x < y:
            out.append(x)
            i += 1
        elif y < x:
            out.append(y)
            j += 1
        else:
            out.append(x)
            i += 1
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def merge_intersection(a: list[int], b: list[int]) -> list[int]:
    """Intersection of two sorted int arrays.

    Linear merge when the sides are comparable; when one side is much
    smaller, galloping (binary-search membership per small-side element)
    keeps the cost ``O(small · log large)`` — the shape the fused
    kernels produce (tiny context sets against big partitions).
    """
    if not a or not b:
        return []
    if len(a) > len(b):
        a, b = b, a
    len_a, len_b = len(a), len(b)
    if len_a * 16 < len_b:
        out = []
        lo = 0
        for x in a:
            lo = bisect_left(b, x, lo)
            if lo == len_b:
                break
            if b[lo] == x:
                out.append(x)
                lo += 1
        return out
    out = []
    i = j = 0
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x < y:
            i += 1
        elif y < x:
            j += 1
        else:
            out.append(x)
            i += 1
            j += 1
    return out


def merge_difference(a: list[int], b: list[int]) -> list[int]:
    """``a - b`` for sorted int arrays (linear merge)."""
    if not a:
        return []
    if not b:
        return list(a)
    out: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x < y:
            out.append(x)
            i += 1
        elif y < x:
            j += 1
        else:
            i += 1
            j += 1
    out.extend(a[i:])
    return out
