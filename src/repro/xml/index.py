"""Per-document NodeIndex: output-sensitive axis-kernel substrate.

The paper's axis set functions (Definition 1) are ``O(|D|)`` per call —
the bound every complexity theorem relies on, but also the reason a
selective query over a large document spends almost all of its time
re-scanning the whole tree to produce a tiny node set. This module holds
the *derived* structures that make an output-sensitive fast path
possible, all computed once per document and cached process-wide:

* **pre/post numbering** — ``pre`` is positional (``nodes[i].pre == i``,
  assigned at finalize); ``post[i]`` is the post-order rank, so
  ancestorship is the classic two-number test
  ``pre(x) < pre(y) and post(x) > post(y)``;
* **size / depth / parent arrays** — ``size[i]`` (subtree size, interval
  arithmetic), ``depth[i]``, ``parent_pre[i]`` (``-1`` for the document
  node), so kernels never chase Python object attributes in their inner
  loops;
* **name-partitioned sorted pre-order arrays** — for every element tag
  (and every attribute name, every non-element node kind) the sorted
  array of pre numbers of matching nodes. ``descendant::a`` then becomes
  a binary-search range query over the ``a`` partition:
  ``O(|X|·log|D| + output)`` instead of ``O(|D|)``.

Node sets travel through the fast kernels as **sorted pre-order int
arrays** (document order for free, set algebra by linear merges —
:func:`merge_union` / :func:`merge_intersection` /
:func:`merge_difference`). The dispatch between these kernels and the
paper-bounded scans lives in :mod:`repro.axes.axes`
(:func:`~repro.axes.axes.fused_axis_set`); this module only provides the
machinery.

Index construction is ``O(|D|·log|D|)`` (one pass plus one sort for the
post numbering), performed at most once per document:
:func:`node_index` is weak-cached like
:func:`repro.service.specialize.document_profile`, and the build runs
under the cache lock so racing threads see exactly one build
(``index_builds`` on :data:`repro.stats.axis_kernel_stats` is exact).
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left

from repro.stats import axis_kernel_stats
from repro.xml.document import Document, NodeKind


class NodeIndex:
    """Derived per-document arrays and name partitions (read-only).

    Attributes:
        document: the indexed (finalized, immutable) document.
        total: ``|dom|``.
        size: ``size[i]`` — subtree size of the node with pre number ``i``.
        post: ``post[i]`` — post-order rank of the node with pre ``i``.
        depth: ``depth[i]`` — distance from the document node (root is 0;
            an attribute is one deeper than its element).
        parent_pre: ``parent_pre[i]`` — pre number of the parent (``-1``
            for the document node).
        by_tag: element tag → sorted pre numbers of elements with it.
        by_attribute: attribute name → sorted pre numbers of attributes.
        by_pi_target: PI target → sorted pre numbers.
        elements / attributes / non_attributes / text_nodes / comments /
        pis: kind partitions, each a sorted pre array.
    """

    __slots__ = (
        "_document_ref",
        "total",
        "size",
        "post",
        "depth",
        "parent_pre",
        "by_tag",
        "by_attribute",
        "by_pi_target",
        "elements",
        "attributes",
        "non_attributes",
        "text_nodes",
        "comments",
        "pis",
    )

    def __init__(self, document: Document):
        if not document.is_finalized:
            raise ValueError("document must be finalized before indexing")
        # Weak back-reference only: the index is the *value* of a
        # weak-keyed cache whose key is the document — a strong reference
        # here would make every key strongly reachable from its own value
        # and pin every indexed document in memory forever.
        self._document_ref = weakref.ref(document)
        nodes = document.nodes
        total = len(nodes)
        self.total = total
        self.size = [node.size for node in nodes]
        self.depth = [0] * total
        self.parent_pre = [-1] * total
        self.by_tag: dict[str, list[int]] = {}
        self.by_attribute: dict[str, list[int]] = {}
        self.by_pi_target: dict[str, list[int]] = {}
        self.elements: list[int] = []
        self.attributes: list[int] = []
        self.non_attributes: list[int] = []
        self.text_nodes: list[int] = []
        self.comments: list[int] = []
        self.pis: list[int] = []
        for pre, node in enumerate(nodes):
            parent = node.parent
            if parent is not None:
                # Parents precede children in pre-order, so their depth
                # is already final when the child is visited.
                self.parent_pre[pre] = parent.pre
                self.depth[pre] = self.depth[parent.pre] + 1
            kind = node.kind
            if kind is NodeKind.ATTRIBUTE:
                self.attributes.append(pre)
                self.by_attribute.setdefault(node.name, []).append(pre)
                continue
            self.non_attributes.append(pre)
            if kind is NodeKind.ELEMENT:
                self.elements.append(pre)
                self.by_tag.setdefault(node.name, []).append(pre)
            elif kind is NodeKind.TEXT:
                self.text_nodes.append(pre)
            elif kind is NodeKind.COMMENT:
                self.comments.append(pre)
            elif kind is NodeKind.PROCESSING_INSTRUCTION:
                self.pis.append(pre)
                self.by_pi_target.setdefault(node.name, []).append(pre)
        # Post-order rank: a node finishes after everything in its
        # subtree. Sorting by (subtree end, -pre) realizes exactly that —
        # ends tie only along a rightmost-descendant chain, where the
        # deeper node (larger pre) finishes first.
        order = sorted(range(total), key=lambda pre: (pre + self.size[pre], -pre))
        self.post = [0] * total
        for rank, pre in enumerate(order):
            self.post[pre] = rank

    # ------------------------------------------------------------------

    @property
    def document(self) -> Document:
        """The indexed document (weakly held — see ``__init__``)."""
        document = self._document_ref()
        if document is None:  # pragma: no cover - needs a caller that
            # outlives the document it handed in
            raise ReferenceError("the indexed document has been garbage-collected")
        return document

    def partition(self, test, axis: str) -> list[int] | None:
        """The sorted pre array of ``T(t)`` for a node test, restricted to
        the principal-capable node kinds the partition axes can reach.

        Only meaningful for the non-attribute-principal axes (the
        interval/suffix kernels never enumerate attribute nodes — the
        attribute axis is handled by per-node enumeration). Returns
        ``None`` only for test shapes with no precomputed partition.
        """
        kind = test.kind
        if kind == "name":
            return self.by_tag.get(test.name, [])
        if kind == "wildcard":
            return self.elements
        if kind == "node":
            return self.non_attributes
        if kind == "text":
            return self.text_nodes
        if kind == "comment":
            return self.comments
        if kind == "pi":
            if test.name is None:
                return self.pis
            return self.by_pi_target.get(test.name, [])
        return None

    def filter_partition(
        self, test, attribute_principal: bool = False
    ) -> list[int] | None:
        """The sorted pre array equal to ``{p | matches_node_test}`` for
        *arbitrary* candidate nodes — the membership filter the backward
        sweeps intersect with. ``None`` means "matches everything"
        (``node()``, which is kind-blind). Unlike :meth:`partition`, name
        and wildcard tests here honor the axis's principal node type:
        the caller passes ``attribute_principal`` (``axis in
        repro.axes.AXIS_PRINCIPAL_ATTRIBUTE``) — a bool parameter keeps
        the xml layer below the axes layer.
        """
        kind = test.kind
        if kind == "node":
            return None
        if kind in ("name", "wildcard"):
            if attribute_principal:
                if kind == "wildcard":
                    return self.attributes
                return self.by_attribute.get(test.name, [])
            if kind == "wildcard":
                return self.elements
            return self.by_tag.get(test.name, [])
        if kind == "text":
            return self.text_nodes
        if kind == "comment":
            return self.comments
        if kind == "pi":
            if test.name is None:
                return self.pis
            return self.by_pi_target.get(test.name, [])
        return None

    def ancestors_of(self, pre: int) -> list[int]:
        """Pre numbers of the proper ancestors of ``pre`` (nearest first)."""
        chain = []
        parent = self.parent_pre[pre]
        while parent >= 0:
            chain.append(parent)
            parent = self.parent_pre[parent]
        return chain

    def is_ancestor(self, x_pre: int, y_pre: int) -> bool:
        """The two-number ancestorship test (proper)."""
        return x_pre < y_pre and self.post[x_pre] > self.post[y_pre]

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Assert every invariant the fused kernels rely on; raises
        ``AssertionError`` with a description on violation. O(|D|²) in
        the pre/post cross-check — property-test use only.
        """
        nodes = self.document.nodes
        total = self.total
        assert total == len(nodes), "index size diverged from document"
        assert sorted(self.post) == list(range(total)), "post is not a permutation"
        for pre, node in enumerate(nodes):
            assert self.size[pre] == node.size, f"size broken at pre={pre}"
            expected_parent = -1 if node.parent is None else node.parent.pre
            assert self.parent_pre[pre] == expected_parent, f"parent broken at pre={pre}"
            if node.parent is not None:
                assert self.depth[pre] == self.depth[node.parent.pre] + 1, (
                    f"depth broken at pre={pre}"
                )
            else:
                assert self.depth[pre] == 0, "document node depth must be 0"
        # Pre/post consistency: interval containment iff pre/post order.
        for x in range(total):
            x_end = x + self.size[x]
            for y in range(total):
                interval = x < y < x_end
                two_number = x < y and self.post[x] > self.post[y]
                assert interval == two_number, (
                    f"pre/post inconsistent for ({x}, {y})"
                )
        partitions: list[list[int]] = [
            self.elements,
            self.attributes,
            self.non_attributes,
            self.text_nodes,
            self.comments,
            self.pis,
            *self.by_tag.values(),
            *self.by_attribute.values(),
            *self.by_pi_target.values(),
        ]
        for partition in partitions:
            assert all(a < b for a, b in zip(partition, partition[1:])), (
                "partition not strictly sorted"
            )
        assert sum(len(p) for p in self.by_tag.values()) == len(self.elements)
        assert sorted(p for ps in self.by_tag.values() for p in ps) == self.elements
        assert sorted(p for ps in self.by_attribute.values() for p in ps) == (
            self.attributes
        )
        assert len(self.non_attributes) + len(self.attributes) == total
        for tag, members in self.by_tag.items():
            for pre in members:
                assert nodes[pre].is_element and nodes[pre].name == tag
        for name, members in self.by_attribute.items():
            for pre in members:
                assert nodes[pre].is_attribute and nodes[pre].name == name


# ----------------------------------------------------------------------
# Process-wide cache
# ----------------------------------------------------------------------

#: Indexes are immutable facts about finalized documents; cache them
#: process-wide so every evaluator over the same document shares one.
#: Weak keys (and a weak back-reference inside the index): the cache
#: never pins a document.
_INDEX_CACHE: "weakref.WeakKeyDictionary[Document, NodeIndex]" = (
    weakref.WeakKeyDictionary()
)
#: Per-document build locks (weak-keyed too): racing first callers of
#: one document serialize, builds of *different* documents proceed in
#: parallel — a sharded thread batch over fresh documents must not
#: funnel every O(|D|·log|D|) build through one global lock.
_BUILD_LOCKS: "weakref.WeakKeyDictionary[Document, threading.Lock]" = (
    weakref.WeakKeyDictionary()
)
_INDEX_LOCK = threading.Lock()


def node_index(document: Document) -> NodeIndex:
    """The (process-wide, weakly cached) :class:`NodeIndex` of a document.

    Exactness contract: one build per document, *ever* (asserted by the
    thread-safety hammer). The global lock only guards the dictionaries;
    the build itself runs under a per-document lock, so concurrent first
    callers of one document see one build and then hits, while unrelated
    documents index concurrently.
    """
    with _INDEX_LOCK:
        index = _INDEX_CACHE.get(document)
        if index is not None:
            return index
        build_lock = _BUILD_LOCKS.get(document)
        if build_lock is None:
            build_lock = threading.Lock()
            _BUILD_LOCKS[document] = build_lock
    with build_lock:
        with _INDEX_LOCK:
            index = _INDEX_CACHE.get(document)
            if index is not None:  # built by the racing caller we waited on
                return index
        index = NodeIndex(document)
        with _INDEX_LOCK:
            _INDEX_CACHE[document] = index
            axis_kernel_stats.index_build()
    return index


# ----------------------------------------------------------------------
# Sorted-array node-set algebra
# ----------------------------------------------------------------------


def merge_union(a: list[int], b: list[int]) -> list[int]:
    """Union of two sorted int arrays (linear merge, duplicates dropped)."""
    if not a:
        return list(b)
    if not b:
        return list(a)
    out: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x < y:
            out.append(x)
            i += 1
        elif y < x:
            out.append(y)
            j += 1
        else:
            out.append(x)
            i += 1
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def merge_intersection(a: list[int], b: list[int]) -> list[int]:
    """Intersection of two sorted int arrays.

    Linear merge when the sides are comparable; when one side is much
    smaller, galloping (binary-search membership per small-side element)
    keeps the cost ``O(small · log large)`` — the shape the fused
    kernels produce (tiny context sets against big partitions).
    """
    if not a or not b:
        return []
    if len(a) > len(b):
        a, b = b, a
    len_a, len_b = len(a), len(b)
    if len_a * 16 < len_b:
        out = []
        lo = 0
        for x in a:
            lo = bisect_left(b, x, lo)
            if lo == len_b:
                break
            if b[lo] == x:
                out.append(x)
                lo += 1
        return out
    out = []
    i = j = 0
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x < y:
            i += 1
        elif y < x:
            j += 1
        else:
            out.append(x)
            i += 1
            j += 1
    return out


def merge_difference(a: list[int], b: list[int]) -> list[int]:
    """``a - b`` for sorted int arrays (linear merge)."""
    if not a:
        return []
    if not b:
        return list(a)
    out: list[int] = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x < y:
            out.append(x)
            i += 1
        elif y < x:
            j += 1
        else:
            i += 1
            j += 1
    out.extend(a[i:])
    return out
