"""XML document data model.

Implements the paper's data model (Section 2.1): an XML document is an
unranked, ordered, labeled tree. ``dom`` is the set of all nodes, exposed
here as :attr:`Document.nodes` in document order. The model supports six
node kinds (document, element, attribute, text, comment, processing
instruction); the paper treats all nodes as a single type, and every paper
example works on element-only documents, but a practical library needs the
full set.

Document order (``<doc`` in the paper) is materialized as a pre-order
numbering ``Node.pre`` assigned by :meth:`Document.finalize`. Following the
W3C data model, an element's attribute nodes come after the element and
before its children in document order. Each node also stores the size of
its subtree (``Node.size``, including the node itself and its attributes),
which lets the axis functions in :mod:`repro.axes` run in linear time:

* ``y`` is a descendant-or-self of ``x``  iff
  ``x.pre <= y.pre < x.pre + x.size`` (and ``y`` is not an attribute,
  for strict descendants),
* ``following(x)`` is exactly the pre-order suffix starting at
  ``x.pre + x.size``.

Documents are *frozen* after :meth:`Document.finalize`: evaluation caches
(string values, id maps, numbering) assume the tree no longer changes, and
mutation afterwards raises :class:`repro.errors.DocumentFrozenError`.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.errors import DocumentFrozenError, DocumentNotFinalizedError


class NodeKind(enum.Enum):
    """The six node kinds of the XPath 1.0 data model (minus namespaces).

    Namespace nodes are omitted, matching the paper ("we do not discuss the
    'namespace' ... axes").
    """

    DOCUMENT = "document"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"


# Node kinds that participate in the child/descendant/sibling structure.
# Attribute nodes have a parent but are not children of it.
_TREE_KINDS = frozenset(
    {
        NodeKind.ELEMENT,
        NodeKind.TEXT,
        NodeKind.COMMENT,
        NodeKind.PROCESSING_INSTRUCTION,
    }
)


class Node:
    """One node of an XML document tree.

    Attributes:
        document: owning :class:`Document`.
        kind: the :class:`NodeKind`.
        name: element tag name, attribute name, or PI target; ``None`` for
            document, text, and comment nodes.
        value: attribute value, text content, comment content, or PI data;
            ``None`` for document and element nodes.
        parent: parent node (``None`` for the document node). An attribute
            node's parent is its owning element, per the W3C data model.
        children: child nodes in document order (never attribute nodes).
        attributes: attribute nodes, in the order given in the source.
        pre: pre-order document-order index (document node is 0); assigned
            by :meth:`Document.finalize`.
        size: number of nodes in this node's subtree, including itself and
            all attribute nodes in the subtree.
        child_index: index of this node within ``parent.children``
            (``None`` for attributes and the document node).
    """

    __slots__ = (
        "document",
        "kind",
        "name",
        "value",
        "parent",
        "children",
        "attributes",
        "pre",
        "size",
        "child_index",
        "_string_value",
    )

    def __init__(
        self,
        document: "Document",
        kind: NodeKind,
        name: str | None = None,
        value: str | None = None,
    ):
        self.document = document
        self.kind = kind
        self.name = name
        self.value = value
        self.parent: Node | None = None
        self.children: list[Node] = []
        self.attributes: list[Node] = []
        self.pre: int = -1
        self.size: int = 1
        self.child_index: int | None = None
        self._string_value: str | None = None

    # ------------------------------------------------------------------
    # Kind predicates
    # ------------------------------------------------------------------

    @property
    def is_document(self) -> bool:
        return self.kind is NodeKind.DOCUMENT

    @property
    def is_element(self) -> bool:
        return self.kind is NodeKind.ELEMENT

    @property
    def is_attribute(self) -> bool:
        return self.kind is NodeKind.ATTRIBUTE

    @property
    def is_text(self) -> bool:
        return self.kind is NodeKind.TEXT

    @property
    def is_comment(self) -> bool:
        return self.kind is NodeKind.COMMENT

    @property
    def is_processing_instruction(self) -> bool:
        return self.kind is NodeKind.PROCESSING_INSTRUCTION

    # ------------------------------------------------------------------
    # Tree navigation helpers
    # ------------------------------------------------------------------

    def ancestors(self) -> Iterator["Node"]:
        """Yield proper ancestors, nearest first (ends at the document node)."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def iter_subtree(self, include_attributes: bool = False) -> Iterator["Node"]:
        """Yield this node and its subtree in document order."""
        yield self
        if include_attributes:
            yield from self.attributes
        for child in self.children:
            yield from child.iter_subtree(include_attributes=include_attributes)

    def is_ancestor_of(self, other: "Node") -> bool:
        """True iff ``self`` is a proper ancestor of ``other``.

        Uses the pre-order interval test, so the document must be finalized.
        """
        if other is self:
            return False
        return self.pre <= other.pre < self.pre + self.size

    def attribute(self, name: str) -> "Node | None":
        """Return the attribute node with the given name, or ``None``."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def attribute_value(self, name: str, default: str | None = None) -> str | None:
        """Return the value of the named attribute, or ``default``."""
        attr = self.attribute(name)
        return default if attr is None else attr.value

    # ------------------------------------------------------------------
    # String value (``strval`` in the paper)
    # ------------------------------------------------------------------

    @property
    def string_value(self) -> str:
        """The XPath string value of this node.

        For document and element nodes: the concatenation of the values of
        all text-node descendants in document order (the paper's "non-tag,
        non-comment strings between start and end tag"). For text,
        attribute, comment, and PI nodes: the node's own value. Cached
        (documents are frozen after finalize, so caching is safe).
        """
        if self._string_value is None:
            if self.kind in (NodeKind.DOCUMENT, NodeKind.ELEMENT):
                parts: list[str] = []
                self._collect_text(parts)
                self._string_value = "".join(parts)
            else:
                self._string_value = self.value or ""
        return self._string_value

    def _collect_text(self, parts: list[str]) -> None:
        for child in self.children:
            if child.kind is NodeKind.TEXT:
                parts.append(child.value or "")
            elif child.kind is NodeKind.ELEMENT:
                child._collect_text(parts)

    # ------------------------------------------------------------------
    # Identification and display
    # ------------------------------------------------------------------

    @property
    def xml_id(self) -> str | None:
        """The value of this element's id attribute, if any."""
        if not self.is_element:
            return None
        return self.attribute_value(self.document.id_attribute)

    def path(self) -> str:
        """A human-readable absolute path for debugging, e.g. ``/a[1]/b[2]``."""
        if self.is_document:
            return "/"
        if self.is_attribute:
            assert self.parent is not None
            return f"{self.parent.path()}/@{self.name}"
        assert self.parent is not None
        same_name_before = sum(
            1
            for sibling in self.parent.children[: self.child_index]
            if sibling.kind is self.kind and sibling.name == self.name
        )
        if self.is_element:
            label = self.name
        elif self.is_text:
            label = "text()"
        elif self.is_comment:
            label = "comment()"
        else:
            label = f"processing-instruction({self.name})"
        prefix = "" if self.parent.is_document else self.parent.path()
        return f"{prefix}/{label}[{same_name_before + 1}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f" id={self.xml_id}" if self.is_element and self.xml_id else ""
        return f"<Node {self.kind.value} {self.name or self.value!r}{ident} pre={self.pre}>"


class Document:
    """A frozen XML document: the paper's ``dom`` plus derived indexes.

    Construct via :func:`repro.xml.parser.parse_document` or
    :class:`repro.xml.builder.DocumentBuilder`; both call
    :meth:`finalize`, after which the tree is immutable.

    Attributes:
        root: the document node (parent of the root element). This is the
            node the paper's absolute paths start from: Example 4 shows
            ``/descendant::*`` selecting all nine elements of Figure 2,
            which requires a document node *above* the root element.
        root_element: the single element child of the document node.
        nodes: all nodes in document order (``dom``); ``nodes[i].pre == i``.
        id_attribute: the attribute name used for ``id()`` lookups
            (defaults to ``"id"``; the paper's Figure 2 keys all elements
            by an ``id`` attribute).
    """

    def __init__(self, id_attribute: str = "id"):
        self.id_attribute = id_attribute
        self.root = Node(self, NodeKind.DOCUMENT)
        self.root_element: Node | None = None
        self.nodes: list[Node] = []
        self._finalized = False
        self._id_map: dict[str, Node] | None = None
        self._id_tokens: list[tuple[Node, frozenset[str]]] | None = None

    # ------------------------------------------------------------------
    # Construction and finalization
    # ------------------------------------------------------------------

    def new_node(
        self, kind: NodeKind, name: str | None = None, value: str | None = None
    ) -> Node:
        """Create a detached node owned by this document."""
        if self._finalized:
            raise DocumentFrozenError("cannot create nodes on a finalized document")
        return Node(self, kind, name, value)

    def append_child(self, parent: Node, child: Node) -> Node:
        """Attach ``child`` as the last child of ``parent``."""
        if self._finalized:
            raise DocumentFrozenError("cannot modify a finalized document")
        if child.kind is NodeKind.ATTRIBUTE:
            raise ValueError("attributes must be attached with set_attribute_node")
        if child.kind not in _TREE_KINDS and child.kind is not NodeKind.ELEMENT:
            raise ValueError(f"cannot attach {child.kind.value} node as a child")
        child.parent = parent
        child.child_index = len(parent.children)
        parent.children.append(child)
        return child

    def set_attribute_node(self, element: Node, attribute: Node) -> Node:
        """Attach ``attribute`` to ``element``."""
        if self._finalized:
            raise DocumentFrozenError("cannot modify a finalized document")
        if not element.is_element or not attribute.is_attribute:
            raise ValueError("set_attribute_node needs an element and an attribute node")
        attribute.parent = element
        element.attributes.append(attribute)
        return attribute

    def finalize(self) -> "Document":
        """Freeze the document: assign pre-order numbers and subtree sizes.

        Idempotent. After this, the document is immutable and all axis
        machinery may be used.
        """
        if self._finalized:
            return self
        element_children = [c for c in self.root.children if c.is_element]
        if len(element_children) == 1:
            self.root_element = element_children[0]
        self.nodes = []
        self._number(self.root)
        self._finalized = True
        return self

    def _number(self, node: Node) -> None:
        node.pre = len(self.nodes)
        self.nodes.append(node)
        for attr in node.attributes:
            attr.pre = len(self.nodes)
            attr.size = 1
            self.nodes.append(attr)
        for child in node.children:
            self._number(child)
        node.size = len(self.nodes) - node.pre

    @property
    def is_finalized(self) -> bool:
        return self._finalized

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise DocumentNotFinalizedError(
                "document must be finalized before evaluation (call finalize())"
            )

    # ------------------------------------------------------------------
    # dom views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """``|dom|``: the number of nodes, including the document node."""
        self._require_finalized()
        return len(self.nodes)

    def elements(self) -> list[Node]:
        """All element nodes in document order."""
        self._require_finalized()
        return [n for n in self.nodes if n.is_element]

    def element_by_id(self, key: str) -> Node | None:
        """Look up an element by the value of its id attribute."""
        return self.id_map.get(key)

    @property
    def id_map(self) -> dict[str, Node]:
        """Map from id-attribute value to element node.

        Per the XML spec, if several elements claim the same id the first
        one in document order wins.
        """
        self._require_finalized()
        if self._id_map is None:
            mapping: dict[str, Node] = {}
            for node in self.nodes:
                if node.is_element:
                    key = node.attribute_value(self.id_attribute)
                    if key is not None and key not in mapping:
                        mapping[key] = node
            self._id_map = mapping
        return self._id_map

    def deref_ids(self, value: str) -> set[Node]:
        """The paper's ``deref_ids``: whitespace-separated keys to nodes."""
        mapping = self.id_map
        result: set[Node] = set()
        for token in value.split():
            node = mapping.get(token)
            if node is not None:
                result.add(node)
        return result

    def id_tokens(self) -> list[tuple[Node, frozenset[str]]]:
        """For every node, the whitespace tokens of its string value.

        Used by the inverse of the ``id`` pseudo-axis (Section 4): ``x``
        id-reaches ``y`` iff some token of ``strval(x)`` is the id of
        ``y``. Computed once per document and cached.
        """
        self._require_finalized()
        if self._id_tokens is None:
            self._id_tokens = [
                (node, frozenset(node.string_value.split())) for node in self.nodes
            ]
        return self._id_tokens

    def in_document_order(self, nodes) -> list[Node]:
        """Sort an iterable of nodes into document order."""
        return sorted(nodes, key=lambda n: n.pre)

    def first_in_document_order(self, nodes) -> Node | None:
        """The paper's ``first_<doc``: earliest node of a set, or ``None``."""
        best: Node | None = None
        for node in nodes:
            if best is None or node.pre < best.pre:
                best = node
        return best

    def validate(self) -> None:
        """Check the structural invariants every axis computation relies
        on; raises ``AssertionError`` with a description on violation.

        Checked: positional pre-order numbering, subtree-size tiling
        (``size == 1 + Σ children.size + |attributes|``), parent/child
        back-links, attribute ownership, and child_index consistency.
        Useful after deserialization (:mod:`repro.xml.store`) and in
        property tests; O(|D|).
        """
        self._require_finalized()
        for index, node in enumerate(self.nodes):
            assert node.pre == index, f"pre-order broken at index {index}"
            expected_size = 1 + len(node.attributes) + sum(c.size for c in node.children)
            assert node.size == expected_size, f"size broken at {node!r}"
            for child_index, child in enumerate(node.children):
                assert child.parent is node, f"parent link broken at {child!r}"
                assert child.child_index == child_index, f"child_index broken at {child!r}"
                assert not child.is_attribute, f"attribute in children of {node!r}"
            for attr in node.attributes:
                assert attr.parent is node, f"attribute link broken at {attr!r}"
                assert attr.is_attribute, f"non-attribute in attributes of {node!r}"
        assert self.nodes[0] is self.root, "document node must be first"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.root_element.name if self.root_element is not None else "?"
        n = len(self.nodes) if self._finalized else "unfinalized"
        return f"<Document root={tag!r} nodes={n}>"
