"""From-scratch XML parser producing :class:`repro.xml.document.Document`.

Builds the paper's data model directly from the token stream of
:mod:`repro.xml.lexer`, checking structural well-formedness: every start
tag is matched, there is exactly one root element, and nothing but
comments/PIs/whitespace appears outside it. Adjacent text runs (including
CDATA) are merged into a single text node, as the XPath data model
requires.
"""

from __future__ import annotations

from repro.errors import XMLSyntaxError
from repro.xml.document import Document, Node, NodeKind
from repro.xml.lexer import XMLToken, XMLTokenType, tokenize


class XMLParser:
    """Event-driven tree builder over the lexer's token stream."""

    def __init__(self, id_attribute: str = "id", keep_whitespace_text: bool = True):
        self.id_attribute = id_attribute
        #: When False, text nodes consisting purely of whitespace between
        #: elements are dropped. The paper's Figure 2 pretty-printed
        #: document is meant to contain only the nine elements plus their
        #: data content, so the running-example fixture parses with this
        #: disabled.
        self.keep_whitespace_text = keep_whitespace_text

    def parse(self, source: str) -> Document:
        document = Document(id_attribute=self.id_attribute)
        stack: list[Node] = [document.root]
        root_seen = False
        pending_text: list[str] = []

        def flush_text() -> None:
            if not pending_text:
                return
            content = "".join(pending_text)
            pending_text.clear()
            parent = stack[-1]
            if parent.is_document:
                if content.strip():
                    raise XMLSyntaxError("character data outside the root element")
                return
            if not self.keep_whitespace_text and not content.strip():
                return
            node = document.new_node(NodeKind.TEXT, value=content)
            document.append_child(parent, node)

        for token in tokenize(source):
            if token.type is XMLTokenType.TEXT:
                pending_text.append(token.value)
                continue
            flush_text()
            if token.type in (XMLTokenType.START_TAG, XMLTokenType.EMPTY_TAG):
                parent = stack[-1]
                if parent.is_document:
                    if root_seen:
                        raise XMLSyntaxError(
                            f"multiple root elements (second is <{token.value}>)",
                            token.line,
                            token.column,
                        )
                    root_seen = True
                element = document.new_node(NodeKind.ELEMENT, name=token.value)
                document.append_child(parent, element)
                for attr_name, attr_value in token.attributes:
                    attr = document.new_node(NodeKind.ATTRIBUTE, name=attr_name, value=attr_value)
                    document.set_attribute_node(element, attr)
                if token.type is XMLTokenType.START_TAG:
                    stack.append(element)
            elif token.type is XMLTokenType.END_TAG:
                open_element = stack[-1]
                if open_element.is_document:
                    raise XMLSyntaxError(
                        f"end tag </{token.value}> with no open element",
                        token.line,
                        token.column,
                    )
                if open_element.name != token.value:
                    raise XMLSyntaxError(
                        f"end tag </{token.value}> does not match <{open_element.name}>",
                        token.line,
                        token.column,
                    )
                stack.pop()
            elif token.type is XMLTokenType.COMMENT:
                node = document.new_node(NodeKind.COMMENT, value=token.value)
                document.append_child(stack[-1], node)
            elif token.type is XMLTokenType.PROCESSING_INSTRUCTION:
                data = token.attributes[0][1] if token.attributes else ""
                node = document.new_node(
                    NodeKind.PROCESSING_INSTRUCTION, name=token.value, value=data
                )
                document.append_child(stack[-1], node)
            elif token.type in (XMLTokenType.DECLARATION, XMLTokenType.DOCTYPE):
                if len(stack) > 1 or root_seen:
                    raise XMLSyntaxError(
                        "XML declaration/DOCTYPE must precede the root element",
                        token.line,
                        token.column,
                    )
            else:  # pragma: no cover - exhaustive over token types
                raise AssertionError(f"unhandled token type {token.type}")

        flush_text()
        if len(stack) > 1:
            raise XMLSyntaxError(f"unclosed element <{stack[-1].name}>")
        if not root_seen:
            raise XMLSyntaxError("document has no root element")
        return document.finalize()


def parse_document(
    source: str, id_attribute: str = "id", keep_whitespace_text: bool = True
) -> Document:
    """Parse an XML string into a finalized :class:`Document`.

    Args:
        source: the XML text.
        id_attribute: attribute name used by ``id()`` (default ``"id"``).
        keep_whitespace_text: keep whitespace-only text nodes between
            elements (default True, per the XPath data model). The paper's
            examples assume pretty-printing whitespace is not part of
            ``dom``, so the running-example fixtures pass False.
    """
    return XMLParser(id_attribute=id_attribute, keep_whitespace_text=keep_whitespace_text).parse(
        source
    )


def parse_fragment(source: str, id_attribute: str = "id") -> Document:
    """Parse a fragment by wrapping it in a synthetic ``<fragment>`` root."""
    return parse_document(f"<fragment>{source}</fragment>", id_attribute=id_attribute)
