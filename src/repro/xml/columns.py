"""Column-native lazy documents: the third document representation.

A :class:`ColumnDocument` is a finalized document whose *only* storage is
the flat snapshot columns — one kind-code byte, four signed-8-byte ints
(``parent_pre`` / ``size`` / ``post`` / ``depth``), and the two string
columns per node. No :class:`~repro.xml.document.Node` objects exist
after decode: the fused axis kernels (:mod:`repro.axes.axes`) and the
Core XPath evaluator thread sorted pre arrays end-to-end, and a boxed
``Node`` is materialized **on demand, per pre, memoized** only when a
caller actually touches one — a result node, or a non-columnar full-XPath
residual (``id()`` token maps, serialization). Everything predicates need
is answered straight from the columns:

* **name/kind tests** — already columnar via the
  :class:`~repro.xml.index.NodeIndex` partitions;
* **string values** — :meth:`ColumnDocument.string_value_of_pre` cuts the
  subtree's text out of a memoized per-document *text prefix structure*
  (sorted text-node pres + cumulative offsets into one joined string), an
  ``O(log #texts)`` bisect per call instead of a subtree walk;
* **attribute lookup** — the snapshot validator's attribute-contiguity
  invariant (attribute ``i`` of element ``e`` sits at
  ``e + seen_attrs + 1``) makes the attribute run of an element a closed
  pre interval;
* **id maps** — built lazily from the ``by_attribute[id_attribute]``
  partition, first id-named attribute per element, first element per key.

Materialization is the graceful eager fallback: any construct the column
accessors do not cover simply touches ``document.nodes[pre]`` and gets a
correct, memoized :class:`LazyNode` — the lazy path only ever *removes*
work, never changes a result. ``nodes_materialized`` /
``lazy_documents`` on :data:`repro.stats.axis_kernel_stats` count both
sides of that bargain exactly (each pre is counted once, ever, under the
per-document materialization lock).
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left

from repro.stats import axis_kernel_stats
from repro.xml.document import Document, Node, NodeKind

__all__ = ["ColumnDocument", "DocumentColumns", "LazyNode", "LazyNodeList"]

#: Snapshot kind-code bytes (the on-disk v2 codes; see repro.xml.snapshot).
KIND_CODES = {
    NodeKind.DOCUMENT: ord("D"),
    NodeKind.ELEMENT: ord("E"),
    NodeKind.ATTRIBUTE: ord("A"),
    NodeKind.TEXT: ord("T"),
    NodeKind.COMMENT: ord("C"),
    NodeKind.PROCESSING_INSTRUCTION: ord("P"),
}
CODE_KINDS = {code: kind for kind, code in KIND_CODES.items()}

_DOC = KIND_CODES[NodeKind.DOCUMENT]
_ELEM = KIND_CODES[NodeKind.ELEMENT]
_ATTR = KIND_CODES[NodeKind.ATTRIBUTE]
_TEXT = KIND_CODES[NodeKind.TEXT]


class DocumentColumns:
    """The flat columns of one finalized document (read-only).

    Exactly the payload of a v2 snapshot after validation: ``kinds`` is a
    ``bytes`` of kind codes, the four int columns are ``array('q')`` (or
    any int buffer), ``names`` / ``values`` are lists of ``str | None``.
    The int columns are shared zero-copy with the document's
    :class:`~repro.xml.index.NodeIndex`.
    """

    __slots__ = ("kinds", "parent_pre", "size", "post", "depth", "names", "values")

    def __init__(self, *, kinds, parent_pre, size, post, depth, names, values):
        self.kinds = kinds
        self.parent_pre = parent_pre
        self.size = size
        self.post = post
        self.depth = depth
        self.names = names
        self.values = values

    def __len__(self) -> int:
        return len(self.kinds)

    @classmethod
    def from_document(cls, document: Document) -> "DocumentColumns":
        """Columns of an eager document (test/benchmark constructor)."""
        from repro.xml.index import node_index

        index = node_index(document)
        nodes = document.nodes
        return cls(
            kinds=bytes(KIND_CODES[node.kind] for node in nodes),
            parent_pre=array("q", index.parent_pre),
            size=array("q", index.size),
            post=array("q", index.post),
            depth=array("q", index.depth),
            names=[node.name for node in nodes],
            values=[node.value for node in nodes],
        )


# Captured slot descriptors of Node: LazyNode shadows these names with
# properties, but the underlying per-instance slot storage still exists
# (allocated by Node.__slots__) and is reachable only through the
# descriptors. An unset slot raises AttributeError on __get__ — that *is*
# the memo sentinel, no extra flag needed.
_PARENT = Node.parent
_CHILDREN = Node.children
_ATTRIBUTES = Node.attributes
_CHILD_INDEX = Node.child_index
_STRING_VALUE = Node._string_value


class LazyNode(Node):
    """A :class:`~repro.xml.document.Node` whose links are cut from the
    columns on first access.

    ``document`` / ``kind`` / ``name`` / ``value`` / ``pre`` / ``size``
    are filled at materialization; ``parent`` / ``children`` /
    ``attributes`` / ``child_index`` / ``string_value`` are computed
    lazily and memoized in the inherited slots, so a result node costs
    O(1) objects until a caller actually walks from it.
    """

    __slots__ = ()

    @property
    def parent(self):
        try:
            return _PARENT.__get__(self)
        except AttributeError:
            pass
        parent_pre = self.document.columns.parent_pre[self.pre]
        parent = None if parent_pre < 0 else self.document.node_at(parent_pre)
        _PARENT.__set__(self, parent)
        return parent

    @property
    def children(self):
        try:
            return _CHILDREN.__get__(self)
        except AttributeError:
            pass
        document = self.document
        children = [document.node_at(p) for p in document.child_pres(self.pre)]
        _CHILDREN.__set__(self, children)
        return children

    @property
    def attributes(self):
        try:
            return _ATTRIBUTES.__get__(self)
        except AttributeError:
            pass
        document = self.document
        attributes = [document.node_at(p) for p in document.attribute_pres(self.pre)]
        _ATTRIBUTES.__set__(self, attributes)
        return attributes

    @property
    def child_index(self):
        try:
            return _CHILD_INDEX.__get__(self)
        except AttributeError:
            pass
        index = self.document.child_index_of(self.pre)
        _CHILD_INDEX.__set__(self, index)
        return index

    @property
    def string_value(self):
        try:
            return _STRING_VALUE.__get__(self)
        except AttributeError:
            pass
        if self.kind is NodeKind.DOCUMENT or self.kind is NodeKind.ELEMENT:
            text = self.document.string_value_of_pre(self.pre)
        else:
            text = self.value or ""
        _STRING_VALUE.__set__(self, text)
        return text

    def attribute(self, name: str) -> "Node | None":
        pre = self.document.attribute_pre_of(self.pre, name)
        return None if pre is None else self.document.node_at(pre)

    def attribute_value(self, name: str, default: str | None = None) -> str | None:
        pre = self.document.attribute_pre_of(self.pre, name)
        if pre is None:
            return default
        return self.document.columns.values[pre]


class LazyNodeList:
    """``document.nodes`` of a column document: a sequence view that
    materializes on indexing/iteration and allocates nothing up front.

    Supports exactly what the evaluators use on the eager list —
    ``len``, int and slice indexing (slices return plain lists),
    iteration, and ``reversed``.
    """

    __slots__ = ("_document",)

    def __init__(self, document: "ColumnDocument"):
        self._document = document

    def __len__(self) -> int:
        return len(self._document.columns)

    def __getitem__(self, index):
        if isinstance(index, slice):
            node_at = self._document.node_at
            return [node_at(p) for p in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        return self._document.node_at(index)

    def __iter__(self):
        node_at = self._document.node_at
        for pre in range(len(self)):
            yield node_at(pre)

    def __reversed__(self):
        node_at = self._document.node_at
        for pre in reversed(range(len(self))):
            yield node_at(pre)

    def __contains__(self, item) -> bool:
        return (
            isinstance(item, Node)
            and item.document is self._document
            and 0 <= item.pre < len(self)
            and self._document.node_at(item.pre) is item
        )


class ColumnDocument(Document):
    """A finalized document living entirely in flat columns.

    Constructed by ``decode_snapshot(blob, lazy=True)``; already frozen
    (snapshots only exist for finalized documents), with ``nodes`` a
    :class:`LazyNodeList` and ``root`` / ``root_element`` materialized on
    first touch. The decoder attaches the adopted
    :class:`~repro.xml.index.NodeIndex` as ``_index`` (a strong
    reference: the index's own document link is weak, so this closes the
    lifecycle loop without a leak — document keeps index alive, index
    does not pin document).
    """

    def __init__(self, columns: DocumentColumns, id_attribute: str = "id"):
        # Deliberately *not* Document.__init__: that would build a boxed
        # document node and an eager nodes list — the exact work this
        # representation exists to skip.
        self.id_attribute = id_attribute
        self.columns = columns
        self.nodes = LazyNodeList(self)
        self._finalized = True
        self._id_map = None
        self._id_tokens = None
        self._index = None
        self._cache: list[Node | None] = [None] * len(columns)
        self._materialize_lock = threading.Lock()
        self._text_structure_cache = None
        self._root_element_pre = self._find_root_element_pre()
        axis_kernel_stats.lazy_document()

    def _find_root_element_pre(self) -> int | None:
        """Pre of the single element child of the document node, if any
        (the finalize() rule) — O(#top-level children) span hops."""
        columns = self.columns
        kinds, size = columns.kinds, columns.size
        total = len(columns)
        element_pre = None
        count = 0
        child = 1  # the document node carries no attributes
        while child < total:
            if kinds[child] == _ELEM:
                count += 1
                element_pre = child
            child += size[child]
        return element_pre if count == 1 else None

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    @property
    def root(self) -> Node:
        return self.node_at(0)

    @property
    def root_element(self) -> Node | None:
        pre = self._root_element_pre
        return None if pre is None else self.node_at(pre)

    def node_at(self, pre: int) -> Node:
        """The boxed node for ``pre``, materialized at most once ever."""
        if pre < 0:
            raise IndexError(pre)
        node = self._cache[pre]
        if node is not None:
            return node
        return self._materialize(pre)

    def _materialize(self, pre: int) -> Node:
        with self._materialize_lock:
            node = self._cache[pre]
            if node is not None:  # lost the race — the winner's node is it
                return node
            columns = self.columns
            node = LazyNode.__new__(LazyNode)
            node.document = self
            node.kind = CODE_KINDS[columns.kinds[pre]]
            node.name = columns.names[pre]
            node.value = columns.values[pre]
            node.pre = pre
            node.size = columns.size[pre]
            if pre == 0:
                _PARENT.__set__(node, None)
            if pre == 0 or node.kind is NodeKind.ATTRIBUTE:
                _CHILD_INDEX.__set__(node, None)
            self._cache[pre] = node
            axis_kernel_stats.node_materialized()
            return node

    def materialized_count(self) -> int:
        """How many pres have boxed nodes (counter-reconciliation hook)."""
        return sum(1 for node in self._cache if node is not None)

    # ------------------------------------------------------------------
    # Column accessors (what predicates need, without nodes)
    # ------------------------------------------------------------------

    def attribute_pres(self, pre: int) -> range:
        """The contiguous attribute run of element ``pre`` (maybe empty)."""
        index = self._index
        if index is not None and index.attribute_counts_ready:
            # The vector tier already paid for the per-pre attribute
            # counts — the run is a closed form then (non-elements
            # count 0, so the kind check is subsumed).
            return range(pre + 1, pre + 1 + index.attribute_counts()[pre])
        columns = self.columns
        kinds = columns.kinds
        if kinds[pre] != _ELEM:
            return range(0)
        start = pre + 1
        end = pre + columns.size[pre]
        stop = start
        while stop < end and kinds[stop] == _ATTR:
            stop += 1
        return range(start, stop)

    def attribute_pre_of(self, pre: int, name: str) -> int | None:
        """Pre of the first ``name`` attribute of element ``pre``."""
        names = self.columns.names
        for attr_pre in self.attribute_pres(pre):
            if names[attr_pre] == name:
                return attr_pre
        return None

    def child_pres(self, pre: int) -> list[int]:
        """Child pres of ``pre`` in order: skip the attribute run, then
        hop sibling subtrees (``c += size[c]``) to the interval end."""
        index = self._index
        if index is not None and index.child_table_ready:
            # One contiguous span of the memoized child table (built by
            # the vector tier; non-parents have an empty span).
            offsets, children = index.child_table()
            return list(children[offsets[pre] : offsets[pre + 1]])
        columns = self.columns
        kinds, size = columns.kinds, columns.size
        code = kinds[pre]
        if code != _ELEM and code != _DOC:
            return []
        end = pre + size[pre]
        child = pre + 1
        while child < end and kinds[child] == _ATTR:
            child += 1
        out = []
        while child < end:
            out.append(child)
            child += size[child]
        return out

    def child_index_of(self, pre: int) -> int | None:
        """Index of ``pre`` within its parent's children (None for the
        document node and attributes) — walks earlier sibling spans."""
        columns = self.columns
        parent = columns.parent_pre[pre]
        if parent < 0 or columns.kinds[pre] == _ATTR:
            return None
        kinds, size = columns.kinds, columns.size
        child = parent + 1
        while kinds[child] == _ATTR:
            child += 1
        index = 0
        while child != pre:
            index += 1
            child += size[child]
        return index

    def _text_structure(self):
        """(sorted text pres, cumulative offsets, joined text) — computed
        once; a lost construction race just recomputes the same value."""
        structure = self._text_structure_cache
        if structure is None:
            columns = self.columns
            kinds, values = columns.kinds, columns.values
            pres = [i for i in range(len(columns)) if kinds[i] == _TEXT]
            offsets = array("q", bytes(8 * (len(pres) + 1)))
            parts = []
            for rank, text_pre in enumerate(pres):
                text = values[text_pre] or ""
                parts.append(text)
                offsets[rank + 1] = offsets[rank] + len(text)
            structure = (pres, offsets, "".join(parts))
            self._text_structure_cache = structure
        return structure

    def string_value_of_pre(self, pre: int) -> str:
        """``strval`` of the node at ``pre`` straight from the columns.

        For document/element pres this is the concatenation of all text
        nodes in the subtree interval ``[pre, pre + size)`` in document
        order — exactly ``Node._collect_text``'s answer, because every
        text node's ancestors inside the interval are elements (text
        attaches only under D/E, and D only at pre 0). One bisect into
        the text prefix structure, one string slice.
        """
        columns = self.columns
        code = columns.kinds[pre]
        if code != _ELEM and code != _DOC:
            return columns.values[pre] or ""
        pres, offsets, joined = self._text_structure()
        lo = bisect_left(pres, pre)
        hi = bisect_left(pres, pre + columns.size[pre], lo)
        return joined[offsets[lo] : offsets[hi]]

    # ------------------------------------------------------------------
    # Document API, columnar
    # ------------------------------------------------------------------

    def elements(self) -> list[Node]:
        index = self._index
        if index is not None:
            return [self.node_at(p) for p in index.elements]
        kinds = self.columns.kinds
        return [self.node_at(p) for p in range(len(kinds)) if kinds[p] == _ELEM]

    @property
    def id_map(self) -> dict[str, Node]:
        if self._id_map is None:
            columns = self.columns
            parent_pre, values = columns.parent_pre, columns.values
            mapping: dict[str, Node] = {}
            last_element = -1
            for attr_pre in self._id_attribute_pres():
                element = parent_pre[attr_pre]
                if element == last_element:
                    # Only the *first* id-named attribute of an element
                    # counts (Node.attribute returns the first match).
                    continue
                last_element = element
                key = values[attr_pre]
                if key is not None and key not in mapping:
                    mapping[key] = self.node_at(element)
            self._id_map = mapping
        return self._id_map

    def _id_attribute_pres(self):
        index = self._index
        if index is not None:
            return index.by_attribute.get(self.id_attribute, ())
        columns = self.columns
        kinds, names = columns.kinds, columns.names
        return [
            p
            for p in range(len(columns))
            if kinds[p] == _ATTR and names[p] == self.id_attribute
        ]
