"""Document statistics: the shape numbers that drive evaluation cost.

The paper's complexity bounds are stated in |D| alone, but the constants
hide document shape: depth drives ancestor/descendant work, fanout drives
sibling/position work, text volume drives string-value comparisons. This
module computes those shape statistics in one O(|D|) pass — used by the
``fragment_advisor`` example to contextualize measurements and by
workload tests to assert generator shapes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.xml.columns import ColumnDocument
from repro.xml.document import Document, Node, NodeKind


@dataclass
class DocumentStatistics:
    """Shape summary of one document."""

    total_nodes: int = 0
    elements: int = 0
    attributes: int = 0
    text_nodes: int = 0
    comments: int = 0
    processing_instructions: int = 0
    max_depth: int = 0
    max_fanout: int = 0
    total_text_bytes: int = 0
    identified_elements: int = 0
    tag_counts: Counter = field(default_factory=Counter)

    _parents: int = 0
    _child_sum: int = 0

    @property
    def mean_fanout(self) -> float:
        """Average element-child count over elements with children."""
        if not self._parents:
            return 0.0
        return self._child_sum / self._parents

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        common = ", ".join(f"{tag}×{count}" for tag, count in self.tag_counts.most_common(5))
        return (
            f"|dom| = {self.total_nodes} "
            f"({self.elements} elements, {self.attributes} attributes, "
            f"{self.text_nodes} text, {self.comments} comments, "
            f"{self.processing_instructions} PIs); "
            f"depth ≤ {self.max_depth}, fanout ≤ {self.max_fanout} "
            f"(mean {self.mean_fanout:.1f}); "
            f"{self.total_text_bytes} text chars; "
            f"{self.identified_elements} elements carry ids; "
            f"top tags: {common}"
        )


def document_statistics(document: Document) -> DocumentStatistics:
    """One-pass shape statistics for a finalized document.

    Column documents take the columnar pass (identical numbers, zero
    nodes materialized — :func:`repro.service.specialize.document_profile`
    runs this on every lazily decoded document, so a tree walk here would
    defeat the lazy path before the first query).
    """
    if isinstance(document, ColumnDocument):
        return _column_statistics(document)
    stats = DocumentStatistics()
    stats.total_nodes = len(document)

    def visit(node: Node, depth: int) -> None:
        if node.kind is NodeKind.ELEMENT:
            stats.elements += 1
            stats.tag_counts[node.name] += 1
            stats.max_depth = max(stats.max_depth, depth)
            if node.attribute_value(document.id_attribute) is not None:
                stats.identified_elements += 1
            element_children = sum(1 for c in node.children if c.is_element)
            if element_children:
                stats._parents += 1
                stats._child_sum += element_children
                stats.max_fanout = max(stats.max_fanout, element_children)
        elif node.kind is NodeKind.ATTRIBUTE:
            stats.attributes += 1
        elif node.kind is NodeKind.TEXT:
            stats.text_nodes += 1
            stats.total_text_bytes += len(node.value or "")
        elif node.kind is NodeKind.COMMENT:
            stats.comments += 1
        elif node.kind is NodeKind.PROCESSING_INSTRUCTION:
            stats.processing_instructions += 1
        for attr in node.attributes:
            visit(attr, depth + 1)
        for child in node.children:
            visit(child, depth + 1)

    visit(document.root, 0)
    return stats


def _column_statistics(document: ColumnDocument) -> DocumentStatistics:
    """The tree walk above, replayed over the flat columns — field-for-
    field equal (asserted by the lazy property suite): the ``depth``
    column is the walk's depth argument, the attribute-contiguity
    invariant makes "first id-named attribute per element" a run of
    consecutive partition entries, and element-child fanout needs only
    the ``parent_pre`` column."""
    columns = document.columns
    kinds = columns.kinds
    names = columns.names
    values = columns.values
    depth = columns.depth
    parent_pre = columns.parent_pre
    element, attribute = ord("E"), ord("A")
    text, comment, pi = ord("T"), ord("C"), ord("P")
    stats = DocumentStatistics()
    stats.total_nodes = len(columns)
    id_attribute = document.id_attribute
    fanout: dict[int, int] = {}
    last_id_parent = -1
    for i in range(stats.total_nodes):
        code = kinds[i]
        if code == element:
            stats.elements += 1
            stats.tag_counts[names[i]] += 1
            if depth[i] > stats.max_depth:
                stats.max_depth = depth[i]
            parent = parent_pre[i]
            if parent >= 0 and kinds[parent] == element:
                fanout[parent] = fanout.get(parent, 0) + 1
        elif code == attribute:
            stats.attributes += 1
            if names[i] == id_attribute:
                parent = parent_pre[i]
                if parent != last_id_parent:
                    last_id_parent = parent
                    if values[i] is not None:
                        stats.identified_elements += 1
        elif code == text:
            stats.text_nodes += 1
            stats.total_text_bytes += len(values[i] or "")
        elif code == comment:
            stats.comments += 1
        elif code == pi:
            stats.processing_instructions += 1
    if fanout:
        stats._parents = len(fanout)
        stats._child_sum = sum(fanout.values())
        stats.max_fanout = max(fanout.values())
    return stats
