"""Tokenizer for the from-scratch XML parser.

Splits an XML document string into a stream of structural tokens: start
tags (with attributes), end tags, character data, CDATA sections, comments,
processing instructions, and the XML declaration. Entity and character
references inside character data and attribute values are resolved here.

The lexer enforces lexical well-formedness (tag syntax, attribute quoting,
legal names, ``--`` not appearing inside comments, ...); structural
well-formedness (balanced tags, a single root element) is the parser's job.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.errors import XMLSyntaxError

# XML 1.0 Name, restricted to the ASCII-plus-letters subset we support.
_NAME_START = re.compile(r"[A-Za-z_:]")
_NAME_CHAR = re.compile(r"[A-Za-z0-9_:.\-]")

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


class XMLTokenType(enum.Enum):
    START_TAG = "start-tag"
    END_TAG = "end-tag"
    EMPTY_TAG = "empty-tag"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "pi"
    DECLARATION = "declaration"
    DOCTYPE = "doctype"


@dataclass
class XMLToken:
    """One lexical unit of an XML document."""

    type: XMLTokenType
    #: Tag name, PI target; text/comment content for character-ish tokens.
    value: str
    #: (name, value) pairs for start/empty tags, in source order.
    attributes: list[tuple[str, str]] = field(default_factory=list)
    line: int = 0
    column: int = 0


class XMLLexer:
    """Single-pass cursor-based tokenizer over an XML source string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.length = len(source)

    # ------------------------------------------------------------------
    # Position/diagnostics helpers
    # ------------------------------------------------------------------

    def _location(self, pos: int | None = None) -> tuple[int, int]:
        pos = self.pos if pos is None else pos
        line = self.source.count("\n", 0, pos) + 1
        last_newline = self.source.rfind("\n", 0, pos)
        column = pos - last_newline
        return line, column

    def _error(self, message: str, pos: int | None = None) -> XMLSyntaxError:
        line, column = self._location(pos)
        return XMLSyntaxError(message, line, column)

    # ------------------------------------------------------------------
    # Tokenization
    # ------------------------------------------------------------------

    def tokens(self) -> list[XMLToken]:
        """Tokenize the whole document."""
        result: list[XMLToken] = []
        while self.pos < self.length:
            if self.source[self.pos] == "<":
                result.append(self._lex_markup())
            else:
                token = self._lex_text()
                if token is not None:
                    result.append(token)
        return result

    def _lex_text(self) -> XMLToken | None:
        start = self.pos
        end = self.source.find("<", self.pos)
        if end == -1:
            end = self.length
        raw = self.source[start:end]
        self.pos = end
        if "]]>" in raw:
            raise self._error("']]>' is not allowed in character data", start)
        line, column = self._location(start)
        return XMLToken(XMLTokenType.TEXT, self._expand_references(raw, start), line=line, column=column)

    def _lex_markup(self) -> XMLToken:
        start = self.pos
        line, column = self._location(start)
        if self.source.startswith("<!--", self.pos):
            return self._lex_comment(line, column)
        if self.source.startswith("<![CDATA[", self.pos):
            return self._lex_cdata(line, column)
        if self.source.startswith("<!DOCTYPE", self.pos):
            return self._lex_doctype(line, column)
        if self.source.startswith("<?", self.pos):
            return self._lex_pi(line, column)
        if self.source.startswith("</", self.pos):
            return self._lex_end_tag(line, column)
        return self._lex_start_tag(line, column)

    def _lex_comment(self, line: int, column: int) -> XMLToken:
        end = self.source.find("-->", self.pos + 4)
        if end == -1:
            raise self._error("unterminated comment")
        content = self.source[self.pos + 4 : end]
        if "--" in content:
            raise self._error("'--' is not allowed inside a comment")
        self.pos = end + 3
        return XMLToken(XMLTokenType.COMMENT, content, line=line, column=column)

    def _lex_cdata(self, line: int, column: int) -> XMLToken:
        end = self.source.find("]]>", self.pos + 9)
        if end == -1:
            raise self._error("unterminated CDATA section")
        content = self.source[self.pos + 9 : end]
        self.pos = end + 3
        # CDATA content is literal text; no reference expansion.
        return XMLToken(XMLTokenType.TEXT, content, line=line, column=column)

    def _lex_doctype(self, line: int, column: int) -> XMLToken:
        # We accept and skip a DOCTYPE declaration (without an internal
        # subset containing '>' beyond bracket pairs). DTDs do not affect
        # evaluation: id() uses the configured id attribute name instead.
        depth = 0
        pos = self.pos + 9
        while pos < self.length:
            ch = self.source[pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth == 0:
                content = self.source[self.pos + 9 : pos].strip()
                self.pos = pos + 1
                return XMLToken(XMLTokenType.DOCTYPE, content, line=line, column=column)
            pos += 1
        raise self._error("unterminated DOCTYPE declaration")

    def _lex_pi(self, line: int, column: int) -> XMLToken:
        end = self.source.find("?>", self.pos + 2)
        if end == -1:
            raise self._error("unterminated processing instruction")
        content = self.source[self.pos + 2 : end]
        self.pos = end + 2
        target, _, data = content.partition(" ")
        if not target:
            raise self._error("processing instruction with empty target")
        if target.lower() == "xml":
            return XMLToken(XMLTokenType.DECLARATION, data.strip(), line=line, column=column)
        return XMLToken(
            XMLTokenType.PROCESSING_INSTRUCTION,
            target,
            attributes=[("data", data.strip())],
            line=line,
            column=column,
        )

    def _lex_end_tag(self, line: int, column: int) -> XMLToken:
        self.pos += 2
        name = self._read_name()
        self._skip_whitespace()
        if self.pos >= self.length or self.source[self.pos] != ">":
            raise self._error(f"malformed end tag </{name}")
        self.pos += 1
        return XMLToken(XMLTokenType.END_TAG, name, line=line, column=column)

    def _lex_start_tag(self, line: int, column: int) -> XMLToken:
        self.pos += 1
        name = self._read_name()
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            self._skip_whitespace()
            if self.pos >= self.length:
                raise self._error(f"unterminated start tag <{name}")
            ch = self.source[self.pos]
            if ch == ">":
                self.pos += 1
                return XMLToken(
                    XMLTokenType.START_TAG, name, attributes=attributes, line=line, column=column
                )
            if ch == "/":
                if not self.source.startswith("/>", self.pos):
                    raise self._error(f"malformed empty-element tag <{name}")
                self.pos += 2
                return XMLToken(
                    XMLTokenType.EMPTY_TAG, name, attributes=attributes, line=line, column=column
                )
            attr_name, attr_value = self._read_attribute()
            if attr_name in seen:
                raise self._error(f"duplicate attribute {attr_name!r} on <{name}>")
            seen.add(attr_name)
            attributes.append((attr_name, attr_value))

    def _read_attribute(self) -> tuple[str, str]:
        name = self._read_name()
        self._skip_whitespace()
        if self.pos >= self.length or self.source[self.pos] != "=":
            raise self._error(f"attribute {name!r} is missing '='")
        self.pos += 1
        self._skip_whitespace()
        if self.pos >= self.length or self.source[self.pos] not in "'\"":
            raise self._error(f"attribute {name!r} value must be quoted")
        quote = self.source[self.pos]
        self.pos += 1
        end = self.source.find(quote, self.pos)
        if end == -1:
            raise self._error(f"unterminated value for attribute {name!r}")
        raw = self.source[self.pos : end]
        if "<" in raw:
            raise self._error(f"'<' is not allowed in attribute value of {name!r}")
        start = self.pos
        self.pos = end + 1
        return name, self._expand_references(raw, start)

    def _read_name(self) -> str:
        if self.pos >= self.length or not _NAME_START.match(self.source[self.pos]):
            raise self._error("expected an XML name")
        start = self.pos
        self.pos += 1
        while self.pos < self.length and _NAME_CHAR.match(self.source[self.pos]):
            self.pos += 1
        return self.source[start : self.pos]

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.source[self.pos] in " \t\r\n":
            self.pos += 1

    # ------------------------------------------------------------------
    # References
    # ------------------------------------------------------------------

    def _expand_references(self, raw: str, origin: int) -> str:
        """Resolve ``&name;``, ``&#d;`` and ``&#xh;`` references in ``raw``."""
        if "&" not in raw:
            return raw
        parts: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                parts.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end == -1:
                raise self._error("unterminated entity reference", origin + i)
            body = raw[i + 1 : end]
            if body.startswith("#x") or body.startswith("#X"):
                try:
                    parts.append(chr(int(body[2:], 16)))
                except ValueError:
                    raise self._error(f"bad character reference &{body};", origin + i) from None
            elif body.startswith("#"):
                try:
                    parts.append(chr(int(body[1:])))
                except ValueError:
                    raise self._error(f"bad character reference &{body};", origin + i) from None
            elif body in _PREDEFINED_ENTITIES:
                parts.append(_PREDEFINED_ENTITIES[body])
            else:
                raise self._error(f"unknown entity &{body};", origin + i)
            i = end + 1
        return "".join(parts)


def tokenize(source: str) -> list[XMLToken]:
    """Tokenize an XML document string."""
    return XMLLexer(source).tokens()
