"""From-scratch XML substrate: data model, parser, builder, serializer.

This package implements the data model of Section 2.1 of the paper: an
unranked, ordered, labeled tree ``dom`` with document order, string values,
and the ``id``/``deref_ids`` machinery. Nothing here depends on external
XML libraries; the parser is a self-contained well-formedness checker.

One logical document has **three physical representations**, each the
cheapest form for its consumer:

* **Boxed tree** (:mod:`repro.xml.document`) — linked ``Node`` objects
  with parent/children/attribute references. The universal form: the
  parser and builder produce it, the per-context evaluators walk it, the
  serializer reads it. Everything works here; nothing is fastest here.
* **Packed index** (:mod:`repro.xml.index`) — derived flat columns
  (``size``/``post``/``depth``/``parent_pre`` as memoryviews over
  ``array('q')`` storage) plus name/kind partitions as sorted pre
  arrays, built at most once per document and weak-cached process-wide.
  The fused axis kernels and the Core XPath sweeps compute entirely in
  this plane; the binary snapshot format (:mod:`repro.xml.snapshot`)
  persists exactly these columns.
* **Column-only** (:mod:`repro.xml.columns`) — a
  :class:`~repro.xml.columns.ColumnDocument` holds *just* the snapshot
  columns: ``decode_snapshot(blob, lazy=True)`` builds no ``Node``
  objects at all, and boxed nodes are materialized per pre, on demand,
  memoized (counted exactly as ``nodes_materialized`` on
  :data:`repro.stats.axis_kernel_stats`). String values, attribute
  lookup, id maps, and shape statistics are answered straight from the
  columns.

Which path runs when: parsing XML always yields the boxed tree, and any
evaluation over it attaches the packed index on first use. Snapshot
loads choose per call site — process-backend shard workers and
``repro-xpath batch --snapshot-store`` decode column-only by default
(``--eager`` restores the tree build), :meth:`DocumentStore.load` stays
eager unless asked (``lazy=True``). Results are byte-identical in every
combination: a construct the column accessors don't cover just
materializes the nodes it touches — the lazy path only ever removes
work.
"""

from repro.xml.columns import ColumnDocument, DocumentColumns, LazyNode
from repro.xml.document import Document, Node, NodeKind
from repro.xml.index import (
    NodeIndex,
    adopt_node_index,
    merge_difference,
    merge_intersection,
    merge_union,
    node_index,
)
from repro.xml.parser import parse_document, parse_fragment
from repro.xml.builder import DocumentBuilder, element, text
from repro.xml.serializer import serialize, serialize_node
from repro.xml.snapshot import (
    decode_snapshot,
    encode_snapshot,
    snapshot_column_sizes,
)
from repro.xml.store import DocumentStore, DocumentStoreError

__all__ = [
    "ColumnDocument",
    "Document",
    "DocumentColumns",
    "DocumentStore",
    "DocumentStoreError",
    "LazyNode",
    "Node",
    "NodeIndex",
    "NodeKind",
    "adopt_node_index",
    "decode_snapshot",
    "encode_snapshot",
    "merge_difference",
    "merge_intersection",
    "merge_union",
    "node_index",
    "parse_document",
    "parse_fragment",
    "snapshot_column_sizes",
    "DocumentBuilder",
    "element",
    "text",
    "serialize",
    "serialize_node",
]
