"""From-scratch XML substrate: data model, parser, builder, serializer.

This package implements the data model of Section 2.1 of the paper: an
unranked, ordered, labeled tree ``dom`` with document order, string values,
and the ``id``/``deref_ids`` machinery. Nothing here depends on external
XML libraries; the parser is a self-contained well-formedness checker.
"""

from repro.xml.document import Document, Node, NodeKind
from repro.xml.index import (
    NodeIndex,
    adopt_node_index,
    merge_difference,
    merge_intersection,
    merge_union,
    node_index,
)
from repro.xml.parser import parse_document, parse_fragment
from repro.xml.builder import DocumentBuilder, element, text
from repro.xml.serializer import serialize, serialize_node
from repro.xml.snapshot import decode_snapshot, encode_snapshot
from repro.xml.store import DocumentStore, DocumentStoreError

__all__ = [
    "Document",
    "DocumentStore",
    "DocumentStoreError",
    "Node",
    "NodeIndex",
    "NodeKind",
    "adopt_node_index",
    "decode_snapshot",
    "encode_snapshot",
    "merge_difference",
    "merge_intersection",
    "merge_union",
    "node_index",
    "parse_document",
    "parse_fragment",
    "DocumentBuilder",
    "element",
    "text",
    "serialize",
    "serialize_node",
]
